#!/usr/bin/env python
"""The serving runtime end to end: one server, three socket clients.

PR 4 made the monitor pushable in-process; this example puts a network
in the middle. A :class:`~repro.service.server.MonitorServer` wraps an
ordinary :class:`~repro.StreamMonitor`, and three concurrent clients
talk to it over TCP with line-delimited JSON:

- a **driver** that streams batches into the engine (``process``);
- a **dashboard** holding a top-k leaderboard with a ``coalesce``
  subscription — if it falls behind, its backlog collapses into one
  lossless resync delta per query instead of growing without bound;
- an **alerter** holding a threshold query with a ``block``
  subscription — it must see every delta, so its queue applies
  backpressure to its own delivery thread (never to the engine).

Each subscriber replays its deltas into a local state dict and, at the
end, verifies the replayed state equals the pull ``result()`` —
**bitwise**, floats having crossed JSON both ways. That is the same
parity contract the in-process subscription layer pins, now holding
across a socket.

Run:  python examples/service_client.py
"""

import random
import threading

from repro import (
    CountBasedWindow,
    MonitorClient,
    MonitorServer,
    StreamMonitor,
)
from repro.core.results import entries_best_first


def replay(stream, baseline, done):
    """Consume a RemoteChangeStream until the run is over (done set
    and the stream has gone quiet); return (state, causes)."""
    state = {entry.rid: entry for entry in baseline}
    causes = []
    while True:
        change = stream.get(timeout=0.5)
        if change is None:
            if done.is_set() or stream.closed:
                break
            continue
        causes.append(change.cause)
        for entry in change.removed:
            state.pop(entry.rid, None)
        for entry in change.added:
            state[entry.rid] = entry
    return state, causes


def main() -> None:
    rng = random.Random(2024)
    monitor = StreamMonitor(
        dims=2, window=CountBasedWindow(500), algorithm="tma",
        cells_per_axis=4,
    )
    server = MonitorServer(monitor)
    host, port = server.start()
    print(f"monitor served on {host}:{port} "
          f"(algorithm={monitor.algorithm.name})")

    driver = MonitorClient(host, port)
    dashboard = MonitorClient(host, port)
    alerter = MonitorClient(host, port)
    print(f"3 clients connected (protocol v"
          f"{driver.server_info['protocol']})")

    # Warm the window before the queries register.
    driver.process([(rng.random(), rng.random()) for _ in range(500)],
                   now=0.0)

    leaders = dashboard.add_query(weights=[1.0, 1.0], k=5,
                                  label="leaders")
    alarm = alerter.add_query(weights=[1.0, 1.0], threshold=1.85,
                              label="alarm")
    leaders_stream = leaders.subscribe(policy="coalesce", maxlen=16)
    alarm_stream = alarm.subscribe(policy="block", maxlen=8)

    results = {}
    done = threading.Event()

    def consume(name, handle, stream):
        state, causes = replay(stream, handle.result(), done)
        results[name] = (handle, state, causes)

    threads = [
        threading.Thread(target=consume,
                         args=("dashboard", leaders, leaders_stream)),
        threading.Thread(target=consume,
                         args=("alerter", alarm, alarm_stream)),
    ]
    for thread in threads:
        thread.start()

    # The driver streams 20 cycles; mid-run the dashboard tightens its
    # leaderboard in flight — the update delta rides the same wire.
    for cycle in range(1, 21):
        driver.process(
            [(rng.random(), rng.random()) for _ in range(100)],
            now=float(cycle),
        )
        if cycle == 10:
            leaders.update(k=3)
            print("cycle 10: leaders.update(k=3) applied in flight")

    server.hub.flush(timeout=30)
    done.set()  # consumers drain the last in-transit deltas and stop
    for thread in threads:
        thread.join(timeout=30)
    stats = server.stats()  # snapshot while the deliveries still live
    leaders_stream.close()
    alarm_stream.close()

    for name, (handle, state, causes) in sorted(results.items()):
        replayed = entries_best_first(state.values())
        pulled = handle.result()
        match = "bitwise-identical" if replayed == pulled else "MISMATCH"
        print(f"{name}: {len(causes)} deltas "
              f"({', '.join(sorted(set(causes)))}); replayed state "
              f"{match} to pull result "
              f"(top rids {[entry.rid for entry in pulled]})")
        assert replayed == pulled

    print(f"server stats: {stats['hub']['delivered']} deltas delivered "
          f"async, {stats['hub']['dropped']} dropped, "
          f"{stats['hub']['coalesced']} coalesced")

    for client in (driver, dashboard, alerter):
        client.close()
    server.stop()
    monitor.close()
    print("clean shutdown: server, clients, monitor all closed")


if __name__ == "__main__":
    main()
