#!/usr/bin/env python
"""Section 7 query types: constrained top-k and threshold monitoring.

Scenario: a sensor field reports (temperature, humidity) readings
normalised to [0, 1). Operations keeps three standing queries:

1. an ordinary top-k: the most severe readings overall;
2. a *constrained* top-k (Figure 12): the same preference, but only
   inside the mid-range humidity band operations cares about;
3. a *threshold* query: every reading whose combined severity exceeds
   a fixed alarm level — however many those are.

Run:  python examples/constrained_and_threshold.py
"""

import random

from repro import (
    CountBasedWindow,
    LinearFunction,
    RecordFactory,
    StreamMonitor,
    ThresholdQuery,
    TopKQuery,
)
from repro.extensions.constrained import constrained_query
from repro.extensions.threshold import ThresholdMonitor


def sensor_rows(rng, count, heatwave=False):
    rows = []
    for _ in range(count):
        temperature = rng.betavariate(2, 5)  # usually cool
        if heatwave and rng.random() < 0.3:
            temperature = rng.uniform(0.8, 0.99)
        humidity = rng.random()
        rows.append((temperature, humidity))
    return rows


def main() -> None:
    rng = random.Random(33)
    severity = LinearFunction([2.0, 1.0])  # temperature-weighted

    # One engine serves the two top-k flavours; the threshold monitor
    # is a separate engine with its own window and record factory.
    monitor = StreamMonitor(
        dims=2, window=CountBasedWindow(500), algorithm="tma"
    )
    q_hot = monitor.add_query(TopKQuery(severity, k=3, label="hottest"))
    q_band = monitor.add_query(
        constrained_query(
            severity,
            k=3,
            ranges=[None, (0.4, 0.6)],  # humidity band only
            label="hottest-in-band",
        )
    )

    alarms = ThresholdMonitor(2, CountBasedWindow(500), cells_per_axis=10)
    alarm_factory = RecordFactory()
    q_alarm = alarms.add_query(
        ThresholdQuery(severity, threshold=2.5, label="severity>2.5")
    )

    for cycle in range(1, 9):
        heatwave = 4 <= cycle <= 6
        rows = sensor_rows(rng, 120, heatwave=heatwave)
        monitor.process(monitor.make_records(rows, time_=float(cycle)))
        alarm_report = alarms.process(
            [alarm_factory.make(row, float(cycle)) for row in rows]
        )

        flag = "HEATWAVE" if heatwave else "        "
        hottest = monitor.result(q_hot)[0]
        in_band = monitor.result(q_band)
        band_text = (
            f"{in_band[0].score:.2f} @ {in_band[0].record.attrs[1]:.2f}rh"
            if in_band
            else "none"
        )
        change = alarm_report.changes.get(q_alarm)
        fired = len(change.added) if change else 0
        print(
            f"cycle {cycle} {flag} | hottest={hottest.score:.2f} | "
            f"in-band top={band_text} | active alarms="
            f"{len(alarms.result(q_alarm)):3d} (+{fired})"
        )

    influence_cells = sum(
        1
        for cell in monitor.algorithm.grid.cells()
        if q_band in cell.influence
    )
    print(
        "\nconstrained query book-keeping stays inside its region: "
        f"{influence_cells} influence cells (grid has "
        f"{monitor.algorithm.grid.total_cells} total)"
    )


if __name__ == "__main__":
    main()
