#!/usr/bin/env python
"""Section 7 query types: constrained top-k and threshold monitoring.

Scenario: a sensor field reports (temperature, humidity) readings
normalised to [0, 1). Operations keeps three standing queries:

1. an ordinary top-k: the most severe readings overall;
2. a *constrained* top-k (Figure 12): the same preference, but only
   inside the mid-range humidity band operations cares about;
3. a *threshold* query: every reading whose combined severity exceeds
   a fixed alarm level — however many those are.

All three register through the same ``add_query`` on ONE unified
monitor — the facade serves every query kind over one window, one
grid, and one notification path (the threshold query's alarms arrive
by push subscription).

Run:  python examples/constrained_and_threshold.py
"""

import random

from repro import (
    CountBasedWindow,
    LinearFunction,
    StreamMonitor,
    ThresholdQuery,
    TopKQuery,
)
from repro.extensions.constrained import constrained_query


def sensor_rows(rng, count, heatwave=False):
    rows = []
    for _ in range(count):
        temperature = rng.betavariate(2, 5)  # usually cool
        if heatwave and rng.random() < 0.3:
            temperature = rng.uniform(0.8, 0.99)
        humidity = rng.random()
        rows.append((temperature, humidity))
    return rows


def main() -> None:
    rng = random.Random(33)
    severity = LinearFunction([2.0, 1.0])  # temperature-weighted

    # One engine serves all three query kinds.
    monitor = StreamMonitor(
        dims=2, window=CountBasedWindow(500), algorithm="tma"
    )
    q_hot = monitor.add_query(TopKQuery(severity, k=3, label="hottest"))
    q_band = monitor.add_query(
        constrained_query(
            severity,
            k=3,
            ranges=[None, (0.4, 0.6)],  # humidity band only
            label="hottest-in-band",
        )
    )
    q_alarm = monitor.add_query(
        ThresholdQuery(severity, threshold=2.5, label="severity>2.5")
    )

    # Alarms are pushed, not polled: the threshold query's deltas
    # carry exactly the newly-fired and newly-cleared alarms.
    fired_this_cycle = []
    q_alarm.subscribe(lambda change: fired_this_cycle.append(change))

    for cycle in range(1, 9):
        heatwave = 4 <= cycle <= 6
        rows = sensor_rows(rng, 120, heatwave=heatwave)
        fired_this_cycle.clear()
        monitor.process(monitor.make_records(rows, time_=float(cycle)))

        flag = "HEATWAVE" if heatwave else "        "
        hottest = q_hot.result()[0]
        in_band = q_band.result()
        band_text = (
            f"{in_band[0].score:.2f} @ {in_band[0].record.attrs[1]:.2f}rh"
            if in_band
            else "none"
        )
        fired = sum(len(change.added) for change in fired_this_cycle)
        print(
            f"cycle {cycle} {flag} | hottest={hottest.score:.2f} | "
            f"in-band top={band_text} | active alarms="
            f"{len(q_alarm.result()):3d} (+{fired})"
        )

    grid = monitor.algorithm.grid
    band_cells = sum(
        1 for cell in grid.cells() if q_band in cell.influence
    )
    alarm_cells = sum(
        1 for cell in grid.cells() if q_alarm in cell.influence
    )
    print(
        "\nbook-keeping stays local: constrained query in "
        f"{band_cells} influence cells, threshold query in "
        f"{alarm_cells} static cells (grid has {grid.total_cells} total)"
    )


if __name__ == "__main__":
    main()
