#!/usr/bin/env python
"""Publish/subscribe alerting: the push side of the unified facade.

Top-k publish/subscribe systems deliver result *deltas* to standing
subscriptions instead of letting clients poll. This example runs one
monitor with a mixed fleet of queries — leaderboards and a threshold
alarm — and wires three kinds of consumers to it:

- a **per-handle callback**: a pager that fires the moment a specific
  leaderboard changes;
- a **monitor-wide fan-in** (``subscribe_all``): an audit log that
  sees every delta of every query, tagged with *why* it happened
  (``cycle`` maintenance, ``register``, ``update``, ``resume``,
  ``cancel``);
- a **buffered change stream** (``handle.changes()``): a consumer that
  drains at its own pace — here, once every three cycles.

Mid-run, one query is updated in flight (k tightened) and another is
paused and resumed; every one of those transitions is delivered as an
ordinary delta, so subscribers reconstruct the exact result without
ever calling the pull API.

Run:  python examples/pubsub_alerts.py
"""

import random
from collections import Counter

from repro import (
    CountBasedWindow,
    LinearFunction,
    StreamMonitor,
    ThresholdQuery,
    TopKQuery,
)


def main() -> None:
    rng = random.Random(77)
    monitor = StreamMonitor(
        dims=2, window=CountBasedWindow(300), algorithm="sma"
    )

    # The audit log subscribes FIRST, so it also sees the queries'
    # initial results arrive as cause="register" deltas.
    audit = Counter()
    monitor.subscribe_all(lambda change: audit.update([change.cause]))

    leaders = monitor.add_query(
        TopKQuery(LinearFunction([1.0, 1.0]), k=5, label="leaders")
    )
    spikes = monitor.add_query(
        TopKQuery(LinearFunction([0.2, 1.8]), k=3, label="spikes")
    )
    alarm = monitor.add_query(
        ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.7,
                       label="alarm")
    )

    # Consumer 1: a pager on the alarm query — push only.
    def pager(change):
        for entry in change.added:
            print(
                f"    PAGE: record {entry.rid} breached the alarm "
                f"threshold (score {entry.score:.2f})"
            )

    alarm.subscribe(pager)

    # Consumer 2: a lazy dashboard draining a buffered stream.
    dashboard = leaders.changes()

    for cycle in range(1, 10):
        if cycle == 4:
            print("cycle 4: tightening 'spikes' to k=1 in flight")
            spikes.update(k=1)
        if cycle == 5:
            print("cycle 5: pausing 'leaders' (dashboard maintenance)")
            leaders.pause()
        if cycle == 7:
            print("cycle 7: resuming 'leaders' (exact re-sync delta)")
            leaders.resume()

        batch = monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(60)],
            time_=float(cycle),
        )
        print(f"cycle {cycle}:")
        monitor.process(batch)

        if cycle % 3 == 0:
            deltas = dashboard.drain()
            print(
                f"    dashboard drained {len(deltas)} buffered "
                f"leader deltas; current board: "
                f"{[entry.rid for entry in leaders.result()]}"
            )

    spikes.cancel()  # subscribers get a final cause="cancel" delta
    print(
        "\naudit log (deltas by cause): "
        + ", ".join(
            f"{cause}={count}" for cause, count in sorted(audit.items())
        )
    )
    print(
        f"handle states: leaders={leaders.state}, spikes={spikes.state}, "
        f"alarm={alarm.state}"
    )
    monitor.close()
    print(f"after close: leaders={leaders.state} (monitor closed)")


if __name__ == "__main__":
    main()
