#!/usr/bin/env python
"""What-if analysis: predicting a query's future from the skyband.

The paper's Section 3.1 insight is not only an implementation trick —
it gives the monitor *foresight*: with the current window contents,
the entire future evolution of a top-k result (absent new arrivals)
is already determined by the k-skyband in score–time space.

This example uses :mod:`repro.skyband.prediction` to answer questions
an operator actually asks:

- "If the feed stalls now, how will my leaderboard evolve?"
- "Will this record ever be reported before it expires?"
- "How long until the current leader falls out?"

(Relation to the live API: ``handle.pause()`` freezes a query's
result; this module predicts what the *maintained* result would do if
the stream — not the query — stood still. Both are forms of looking
at the window without new arrivals.)

Run:  python examples/whatif_prediction.py
"""

import random

from repro import LinearFunction, RecordFactory, TopKQuery
from repro.skyband.prediction import (
    future_skyband,
    lifetime_of,
    predict_future_results,
)


def main() -> None:
    rng = random.Random(99)
    factory = RecordFactory()

    # A window of 40 readings; rid doubles as the expiry order.
    window = [
        factory.make((rng.random(), rng.random())) for _ in range(40)
    ]
    query = TopKQuery(LinearFunction([1.0, 1.5]), k=3, label="leaders")

    band = future_skyband(window, query)
    print(
        f"window holds {len(window)} records; only {len(band)} can ever "
        f"appear in the top-3 (the 3-skyband):"
    )
    for entry in band[:8]:
        print(
            f"  record {entry.rid:3d} score={entry.score:.3f}"
        )
    if len(band) > 8:
        print(f"  ... and {len(band) - 8} more")

    print("\npredicted result timeline if the feed stalls now:")
    timeline = predict_future_results(window, query)
    for change in timeline[:8]:
        cause = (
            "current state"
            if change.expiring_rid == -1
            else f"after record {change.expiring_rid} expires"
        )
        ids = [entry.rid for entry in change.top]
        print(f"  {cause:32s} -> top-3 = {ids}")

    leader = timeline[0].top[0].record.rid
    survives_until = next(
        (
            change.expiring_rid
            for change in timeline[1:]
            if all(entry.record.rid != leader for entry in change.top)
        ),
        None,
    )
    print(
        f"\ncurrent leader is record {leader}; it leaves the result when "
        f"record {survives_until} expires"
        if survives_until is not None
        else f"\ncurrent leader {leader} stays until its own expiry"
    )

    # Will a mid-pack record ever be reported?
    probe = window[len(window) // 2].rid
    ever, trigger = lifetime_of(window, query, probe)
    if ever:
        print(
            f"record {probe} WILL be reported (first after record "
            f"{trigger} expires)"
        )
    else:
        print(
            f"record {probe} will NEVER be reported — it is dominated "
            f"by 3 newer, better records for its entire remaining life"
        )


if __name__ == "__main__":
    main()
