#!/usr/bin/env python
"""Network security monitoring — the paper's Section 1 scenario.

An ISP streams NetFlow-style records into the monitor and keeps two
continuous queries alive:

- *top-k flows by throughput*: if many results share one destination
  IP, that host is likely under a DDoS attack;
- *top-k flows by minimum packet count*: if many results share one
  source IP, that host is likely an Internet worm probing for victims
  with single-SYN flows.

The synthetic feed injects one DDoS and one worm episode; the
detectors below are *push* consumers — each subscribes to its query's
handle and re-evaluates only when the result actually changed, instead
of polling every cycle.

Run:  python examples/network_monitor.py
"""

from collections import Counter

from repro import (
    CountBasedWindow,
    LinearFunction,
    StreamMonitor,
    TopKQuery,
)
from repro.streams.netflow import NetFlowStream

WINDOW = 2_000
TOP_K = 50
ALERT_SHARE = 0.4  # alert when 40% of the top-k share an endpoint


def main() -> None:
    stream = NetFlowStream(flows_per_cycle=400, hosts=600, seed=11)
    ddos_victim = stream.inject_ddos(start_cycle=6, duration=3)
    worm_source = stream.inject_worm(start_cycle=12, duration=3)
    print(f"(ground truth: DDoS victim {ddos_victim} at cycles 6-8, "
          f"worm source {worm_source} at cycles 12-14)\n")

    monitor = StreamMonitor(
        dims=2,
        window=CountBasedWindow(WINDOW),
        algorithm="sma",
    )
    # Attributes are (normalised throughput, normalised packet count).
    q_throughput = monitor.add_query(
        TopKQuery(LinearFunction([1.0, 0.0]), k=TOP_K, label="throughput")
    )
    q_min_packets = monitor.add_query(
        TopKQuery(LinearFunction([0.0, -1.0]), k=TOP_K, label="min-packets")
    )

    flows_by_rid = {}
    clock = {"cycle": 0}

    # Detector 1: DDoS — top throughput flows share a destination.
    def ddos_detector(change):
        dst_counts = Counter(
            flows_by_rid[entry.rid].dst for entry in change.top
        )
        dst, hits = dst_counts.most_common(1)[0]
        if hits >= ALERT_SHARE * TOP_K:
            print(
                f"cycle {clock['cycle']:2d}  *** DDoS ALERT: "
                f"{hits}/{TOP_K} top throughput flows target {dst}"
            )

    # Detector 2: worm — minimal-packet flows share a source.
    def worm_detector(change):
        src_counts = Counter(
            flows_by_rid[entry.rid].src for entry in change.top
        )
        src, hits = src_counts.most_common(1)[0]
        if hits >= ALERT_SHARE * TOP_K:
            print(
                f"cycle {clock['cycle']:2d}  *** WORM ALERT: "
                f"{hits}/{TOP_K} minimal-packet flows originate "
                f"from {src}"
            )

    q_throughput.subscribe(ddos_detector)
    q_min_packets.subscribe(worm_detector)

    for cycle in range(1, 18):
        clock["cycle"] = cycle
        batch = stream.next_batch()
        for item in batch:
            flows_by_rid[item.record.rid] = item.flow
        # Detectors fire from inside process() — push, not poll.
        monitor.process([item.record for item in batch])

    print(
        f"\nprocessed {len(flows_by_rid)} flows; total maintenance "
        f"{monitor.total_cpu_seconds * 1e3:.1f} ms over "
        f"{len(monitor.cycle_seconds)} cycles "
        f"({monitor.counters.recomputations} recomputations)"
    )


if __name__ == "__main__":
    main()
