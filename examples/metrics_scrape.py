#!/usr/bin/env python
"""The observability loop end to end: trace, serve, scrape, verify.

A traced :class:`~repro.StreamMonitor` sits behind a
:class:`~repro.service.server.MonitorServer` that opens a
Prometheus-scrapeable HTTP endpoint next to its protocol socket
(``metrics_port=0`` picks an ephemeral port). A socket client
registers a query, subscribes, and drives ten cycles; then the script
plays monitoring system:

- scrape ``/metrics`` and check the text exposition parses, carries
  every ``OpCounters`` field as a ``repro_op_*_total`` counter, and
  that the scraped arrival count equals the engine's live counter —
  the round-trip contract `make obs-smoke` gates on;
- check the delivery-latency histogram and queue gauges from the
  serving tier appear in the same scrape;
- fetch ``/trace?n=3`` and print the most recent cycle's per-phase
  wall-time breakdown;
- ask for the same snapshot over the socket protocol
  (``client.metrics(traces=1)``) and check it agrees with the scrape.

Run:  python examples/metrics_scrape.py
"""

import json
import random
import urllib.request

from repro import (
    CountBasedWindow,
    MonitorClient,
    MonitorServer,
    StreamMonitor,
)
from repro.core.stats import OpCounters
from repro.obs.http import PROMETHEUS_CONTENT_TYPE
from repro.obs.metrics import op_counter_names

CYCLES = 10
BATCH = 40


def fetch(host, port, path):
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=10
    ) as response:
        return response.status, response.headers, response.read()


def parse_exposition(text):
    """Prometheus text format -> {metric name: raw value string}.

    Labelled series (histogram buckets) keep their label block in the
    key, so both ``repro_op_arrivals_total`` and
    ``repro_delivery_latency_seconds_bucket{le="+Inf"}`` are
    addressable.
    """
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = value
    return samples


def main():
    monitor = StreamMonitor(
        2,
        CountBasedWindow(200),
        algorithm="tma",
        cells_per_axis=8,
        trace=True,
    )
    server = MonitorServer(monitor, metrics_port=0)
    host, port = server.start()
    mhost, mport = server.metrics_address
    print(f"protocol on {host}:{port}, /metrics on {mhost}:{mport}")

    client = MonitorClient(host, port)
    try:
        handle = client.add_query(weights=[0.7, 0.3], k=5)
        stream = handle.subscribe(policy="coalesce", maxlen=32)
        rng = random.Random(42)
        for cycle in range(CYCLES):
            rows = [(rng.random(), rng.random()) for _ in range(BATCH)]
            client.process(rows, now=float(cycle))
        delivered = 0
        while stream.get(timeout=1.0) is not None:
            delivered += 1
            if delivered >= CYCLES:
                break

        # -- scrape /metrics and verify the OpCounters round-trip ----
        status, headers, body = fetch(mhost, mport, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        samples = parse_exposition(body.decode("utf-8"))

        expected = op_counter_names(OpCounters().as_dict())
        missing = [name for name in expected if name not in samples]
        assert not missing, f"missing from scrape: {missing}"
        scraped_arrivals = int(samples["repro_op_arrivals_total"])
        assert scraped_arrivals == monitor.counters.arrivals
        assert scraped_arrivals == CYCLES * BATCH
        print(
            f"scraped {len(expected)} op counters; "
            f"repro_op_arrivals_total={scraped_arrivals} matches the "
            f"engine"
        )

        # -- serving-tier instruments ride the same scrape -----------
        latency_inf = samples[
            'repro_delivery_latency_seconds_bucket{le="+Inf"}'
        ]
        assert int(float(latency_inf)) >= delivered
        assert "repro_delivery_queue_depth" in samples
        assert "repro_delivery_subscribers" in samples
        print(
            f"delivery-latency histogram present "
            f"({latency_inf} observations), queue gauges present"
        )

        # -- /trace: per-cycle phase spans ---------------------------
        status, _, body = fetch(mhost, mport, "/trace?n=3")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] and len(payload["traces"]) == 3
        last = payload["traces"][-1]
        print(f"last cycle (#{last['cycle']}) phase wall-times:")
        for phase, span in sorted(last["phases"].items()):
            print(f"  {phase:<12s} {span['wall_seconds'] * 1e3:8.3f} ms")

        # -- the protocol op returns the same snapshot ---------------
        over_wire = client.metrics(traces=1)
        wire_counters = over_wire["metrics"]["counters"]
        assert wire_counters["repro_op_arrivals_total"] == scraped_arrivals
        assert len(over_wire["traces"]) == 1
        print("socket `metrics` op agrees with the HTTP scrape")
    finally:
        client.close()
        server.stop()
        monitor.close()
    print("OK: every OpCounters field round-tripped through /metrics")


if __name__ == "__main__":
    main()
