#!/usr/bin/env python
"""Update-stream monitoring: explicit, out-of-order deletions.

Section 7's second stream model: tuples do not expire FIFO — the
stream carries explicit deletions (think: open orders in a marketplace
that are filled or cancelled at arbitrary times). The paper's point:
TMA carries over unchanged (hash-based point lists, recompute when a
result member is deleted), while SMA's skyband is impossible because
the expiry order is unknown — this example demonstrates both facts.

The model is a facade switch now: ``StreamMonitor(...,
stream_model="update")`` — no separate monitor class, and the full
handle/subscription surface works over explicit deletions too.

Run:  python examples/update_stream.py
"""

from repro import LinearFunction, StreamMonitor, TopKQuery
from repro.core.errors import StreamError
from repro.streams.generators import Independent
from repro.streams.update_stream import UpdateStreamDriver


def main() -> None:
    # Records are (price-competitiveness, seller-rating) pairs; the
    # query tracks the best open orders.
    driver = UpdateStreamDriver(
        Independent(2),
        rate=150,
        min_lifetime=2,
        max_lifetime=30,
        seed=55,
    )

    # SMA is structurally impossible here — the facade says so:
    try:
        StreamMonitor(2, algorithm="sma", stream_model="update")
    except StreamError as error:
        print(f"SMA correctly rejected: {error}\n")

    monitor = StreamMonitor(2, algorithm="tma", stream_model="update")
    handle = monitor.add_query(
        TopKQuery(LinearFunction([1.0, 1.0]), k=5, label="best-orders")
    )
    stream = handle.changes()  # buffered push deltas

    for cycle, batch in enumerate(driver.batches(15), start=1):
        monitor.process(batch.insertions, deletions=batch.deletions)
        deltas = stream.drain()
        top_ids = [entry.rid for entry in handle.result()]
        marker = "*" if deltas else " "
        print(
            f"cycle {cycle:2d} {marker} live={monitor.live_count:5d} "
            f"+{len(batch.insertions):3d}/-{len(batch.deletions):3d}  "
            f"top-5 ids={top_ids}"
        )

    counters = monitor.counters
    print(
        f"\n{counters.recomputations} from-scratch recomputations were "
        f"needed — every one caused by an explicit deletion of a "
        f"current result (there is no skyband to pre-compute "
        f"replacements in this model)"
    )


if __name__ == "__main__":
    main()
