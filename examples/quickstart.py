#!/usr/bin/env python
"""Quickstart: continuous top-k monitoring in a dozen lines.

Creates a monitor over a count-based sliding window, registers two
continuous top-k queries with different preference functions, streams
random 2-d tuples through it, and prints the change reports — the
exact server loop of the paper (Section 4), at toy scale so the output
is readable.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    CountBasedWindow,
    LinearFunction,
    StreamMonitor,
    TopKQuery,
)


def main() -> None:
    rng = random.Random(42)

    # A monitor holding the 100 most recent tuples, maintained by SMA
    # (the paper's best algorithm). Grid granularity is auto-tuned.
    monitor = StreamMonitor(
        dims=2,
        window=CountBasedWindow(100),
        algorithm="sma",
    )

    # Two long-running queries: one favouring x2, one favouring x1.
    q_high = monitor.add_query(
        TopKQuery(LinearFunction([1.0, 2.0]), k=3, label="prefers-x2")
    )
    q_wide = monitor.add_query(
        TopKQuery(LinearFunction([2.0, 0.5]), k=3, label="prefers-x1")
    )

    print("cycle | query        | top-3 (score:id)")
    print("------+--------------+----------------------------------")
    for cycle in range(10):
        batch = monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(20)],
            time_=float(cycle),
        )
        report = monitor.process(batch)

        for qid, label in ((q_high, "prefers-x2"), (q_wide, "prefers-x1")):
            if qid in report.changes:  # only changed results are reported
                top = " ".join(
                    f"{entry.score:.2f}:{entry.rid}"
                    for entry in report.changes[qid].top
                )
                print(f"{cycle:5d} | {label:<12} | {top}")

    print("\nfinal results:")
    for qid in (q_high, q_wide):
        for entry in monitor.result(qid):
            record = entry.record
            print(
                f"  q{qid}: record {record.rid} "
                f"attrs=({record.attrs[0]:.3f}, {record.attrs[1]:.3f}) "
                f"score={entry.score:.3f}"
            )

    counters = monitor.counters
    print(
        f"\nmaintenance work: {counters.skyband_insertions} skyband "
        f"insertions, {counters.recomputations} from-scratch "
        f"recomputations over {len(monitor.cycle_seconds)} cycles"
    )


if __name__ == "__main__":
    main()
