#!/usr/bin/env python
"""Quickstart: continuous top-k monitoring in a dozen lines.

Creates a monitor over a count-based sliding window, registers two
continuous top-k queries with different preference functions, streams
random 2-d tuples through it, and prints the change reports — the
exact server loop of the paper (Section 4), at toy scale so the output
is readable.

``add_query`` returns a :class:`repro.QueryHandle`: deltas are pushed
to per-handle subscriptions, the current result is ``handle.result()``,
and handles are int-like so the original ``report.changes[qid]`` code
keeps working.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    CountBasedWindow,
    LinearFunction,
    StreamMonitor,
    TopKQuery,
)


def main() -> None:
    rng = random.Random(42)

    # A monitor holding the 100 most recent tuples, maintained by SMA
    # (the paper's best algorithm). Grid granularity is auto-tuned.
    monitor = StreamMonitor(
        dims=2,
        window=CountBasedWindow(100),
        algorithm="sma",
    )

    # Two long-running queries: one favouring x2, one favouring x1.
    q_high = monitor.add_query(
        TopKQuery(LinearFunction([1.0, 2.0]), k=3, label="prefers-x2")
    )
    q_wide = monitor.add_query(
        TopKQuery(LinearFunction([2.0, 0.5]), k=3, label="prefers-x1")
    )

    # Push delivery: only changed results are reported, and the
    # subscriber fires right after each cycle's maintenance.
    cycle_box = {"now": 0}

    def printer(label):
        def show(change):
            top = " ".join(
                f"{entry.score:.2f}:{entry.rid}" for entry in change.top
            )
            print(f"{cycle_box['now']:5d} | {label:<12} | {top}")

        return show

    q_high.subscribe(printer("prefers-x2"))
    q_wide.subscribe(printer("prefers-x1"))

    print("cycle | query        | top-3 (score:id)")
    print("------+--------------+----------------------------------")
    for cycle in range(10):
        cycle_box["now"] = cycle
        batch = monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(20)],
            time_=float(cycle),
        )
        monitor.process(batch)

    print("\nfinal results:")
    for handle in (q_high, q_wide):
        for entry in handle.result():
            record = entry.record
            print(
                f"  q{handle.qid}: record {record.rid} "
                f"attrs=({record.attrs[0]:.3f}, {record.attrs[1]:.3f}) "
                f"score={entry.score:.3f}"
            )

    counters = monitor.counters
    print(
        f"\nmaintenance work: {counters.skyband_insertions} skyband "
        f"insertions, {counters.recomputations} from-scratch "
        f"recomputations over {len(monitor.cycle_seconds)} cycles"
    )


if __name__ == "__main__":
    main()
