#!/usr/bin/env python
"""Market surveillance: top-k most actively traded movers.

The paper's introduction lists stock market trading among the target
applications. This example monitors a synthetic tick stream over a
*time-based* window (the last 5 time units) with a preference function
that mixes trade volume and price movement, and it also demonstrates
query churn: mid-stream, an analyst registers a second, pure-momentum
query and later removes it.

Run:  python examples/stock_ticker.py
"""

from repro import (
    LinearFunction,
    StreamMonitor,
    TimeBasedWindow,
    TopKQuery,
)
from repro.streams.stock import StockStream


def show(label, monitor, qid, ticks_by_rid):
    entries = monitor.result(qid)
    print(f"  {label}:")
    for entry in entries:
        tick = ticks_by_rid[entry.rid]
        print(
            f"    {tick.symbol}  price={tick.price:8.2f} "
            f"volume={tick.volume:7d}  move={tick.change * 100:+.2f}%  "
            f"(score {entry.score:.3f})"
        )


def main() -> None:
    stream = StockStream(
        symbols=150, ticks_per_cycle=300, seed=21, volatility=0.01
    )
    monitor = StreamMonitor(
        dims=2,
        window=TimeBasedWindow(5.0),  # ticks stay valid for 5 cycles
        algorithm="sma",
    )
    # Attributes are (normalised volume, normalised |return|).
    q_active = monitor.add_query(
        TopKQuery(
            LinearFunction([1.0, 1.5]), k=5, label="active-movers"
        )
    )

    ticks_by_rid = {}
    momentum_qid = None
    for cycle in range(1, 13):
        if cycle == 5:
            stream.shock("SYM007", 0.40)  # takeover rumour
            print("cycle 5: (injecting +40% shock into SYM007)")
        if cycle == 6:
            momentum_qid = monitor.add_query(
                TopKQuery(
                    LinearFunction([0.0, 1.0]), k=3, label="pure-momentum"
                )
            )
            print("cycle 6: analyst registers a pure-momentum query")
        if cycle == 10 and momentum_qid is not None:
            monitor.remove_query(momentum_qid)
            momentum_qid = None
            print("cycle 10: pure-momentum query terminated")

        batch = stream.next_batch()
        for item in batch:
            ticks_by_rid[item.record.rid] = item.tick
        report = monitor.process([item.record for item in batch])

        if q_active in report.changes or cycle in (5, 6):
            print(f"cycle {cycle:2d}:")
            show("top-5 active movers", monitor, q_active, ticks_by_rid)
            if momentum_qid is not None:
                show("top-3 momentum", monitor, momentum_qid, ticks_by_rid)

    print(
        f"\nmaintenance: {monitor.total_cpu_seconds * 1e3:.1f} ms over "
        f"{len(monitor.cycle_seconds)} cycles; window currently holds "
        f"{monitor.valid_count} ticks"
    )


if __name__ == "__main__":
    main()
