#!/usr/bin/env python
"""Market surveillance: top-k most actively traded movers.

The paper's introduction lists stock market trading among the target
applications. This example monitors a synthetic tick stream over a
*time-based* window (the last 5 time units) with a preference function
that mixes trade volume and price movement, and it demonstrates the
query-handle lifecycle: mid-stream an analyst registers a second,
pure-momentum query, *pauses* it while chasing something else (its
maintenance is skipped entirely), resumes it with an exact re-sync,
tightens it in flight with ``handle.update(k=...)``, and finally
cancels it.

Run:  python examples/stock_ticker.py
"""

from repro import (
    LinearFunction,
    StreamMonitor,
    TimeBasedWindow,
    TopKQuery,
)
from repro.streams.stock import StockStream


def show(label, handle, ticks_by_rid):
    print(f"  {label}:")
    for entry in handle.result():
        tick = ticks_by_rid[entry.rid]
        print(
            f"    {tick.symbol}  price={tick.price:8.2f} "
            f"volume={tick.volume:7d}  move={tick.change * 100:+.2f}%  "
            f"(score {entry.score:.3f})"
        )


def main() -> None:
    stream = StockStream(
        symbols=150, ticks_per_cycle=300, seed=21, volatility=0.01
    )
    monitor = StreamMonitor(
        dims=2,
        window=TimeBasedWindow(5.0),  # ticks stay valid for 5 cycles
        algorithm="sma",
    )
    # Attributes are (normalised volume, normalised |return|).
    q_active = monitor.add_query(
        TopKQuery(
            LinearFunction([1.0, 1.5]), k=5, label="active-movers"
        )
    )

    ticks_by_rid = {}
    momentum = None
    for cycle in range(1, 13):
        if cycle == 5:
            stream.shock("SYM007", 0.40)  # takeover rumour
            print("cycle 5: (injecting +40% shock into SYM007)")
        if cycle == 6:
            momentum = monitor.add_query(
                TopKQuery(
                    LinearFunction([0.0, 1.0]), k=3, label="pure-momentum"
                )
            )
            print("cycle 6: analyst registers a pure-momentum query")
        if cycle == 8 and momentum is not None:
            momentum.pause()  # maintenance skipped while paused
            print("cycle 8: momentum query paused (analyst in a meeting)")
        if cycle == 9 and momentum is not None:
            momentum.resume()  # exact re-sync against current window
            momentum.update(k=2)  # tightened in flight, no re-register
            print("cycle 9: momentum query resumed and narrowed to k=2")
        if cycle == 10 and momentum is not None:
            momentum.cancel()
            print("cycle 10: pure-momentum query terminated")

        batch = stream.next_batch()
        for item in batch:
            ticks_by_rid[item.record.rid] = item.tick
        report = monitor.process([item.record for item in batch])

        if q_active in report.changes or cycle in (5, 6, 9):
            print(f"cycle {cycle:2d}:")
            show("top-5 active movers", q_active, ticks_by_rid)
            if momentum is not None and momentum.active:
                show(
                    f"top-{momentum.query.k} momentum",
                    momentum,
                    ticks_by_rid,
                )

    print(
        f"\nmaintenance: {monitor.total_cpu_seconds * 1e3:.1f} ms over "
        f"{len(monitor.cycle_seconds)} cycles (+ "
        f"{monitor.total_mutation_seconds * 1e3:.2f} ms of handle "
        f"mutations); window currently holds {monitor.valid_count} ticks"
    )


if __name__ == "__main__":
    main()
