"""Tests for TSL running on the skip-list container."""

import random

import pytest

from repro.algorithms.tsl import ThresholdSortedListAlgorithm
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.structures.skiplist import IndexableSkipList

from tests.conftest import brute_top_k


def test_invalid_impl_rejected():
    with pytest.raises(ValueError):
        ThresholdSortedListAlgorithm(2, list_impl="btree")


def test_container_choice_applied():
    algo = ThresholdSortedListAlgorithm(2, list_impl="skiplist")
    assert algo.list_impl == "skiplist"
    assert all(
        isinstance(lst, IndexableSkipList) for lst in algo._sorted_lists
    )


@pytest.mark.parametrize("seed", range(3))
def test_skiplist_tsl_matches_oracle(seed):
    rng = random.Random(900 + seed)
    factory = RecordFactory()
    algo = ThresholdSortedListAlgorithm(2, list_impl="skiplist")
    query = TopKQuery(
        LinearFunction([rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]), k=4
    )
    query.qid = 0
    algo.register(query)
    window = []
    for _ in range(30):
        arrivals = [
            factory.make((rng.random(), rng.random())) for _ in range(5)
        ]
        window.extend(arrivals)
        expired = []
        while len(window) > 35:
            expired.append(window.pop(0))
        algo.process_cycle(arrivals, expired)
        got = [e.rid for e in algo.current_result(0)]
        expected = [e.rid for e in brute_top_k(window, query)]
        assert got == expected


def test_skiplist_tsl_refills_via_ta(factory=None):
    factory = RecordFactory()
    algo = ThresholdSortedListAlgorithm(
        2, list_impl="skiplist", kmax_for=lambda k: k
    )
    query = TopKQuery(LinearFunction([1.0, 1.0]), k=1)
    query.qid = 0
    best = factory.make((0.9, 0.9))
    backup = factory.make((0.5, 0.5))
    algo.process_cycle([best, backup], [])
    algo.register(query)
    algo.process_cycle([], [best])
    assert algo.counters.view_refills == 1
    assert [e.rid for e in algo.current_result(0)] == [backup.rid]
