"""Tests for the TSL baseline: TA module + Yi et al. view maintenance."""

import random

import pytest

from repro.algorithms.tsl import ThresholdSortedListAlgorithm, default_kmax
from repro.core.errors import QueryError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory

from tests.conftest import brute_top_k


@pytest.fixture
def factory():
    return RecordFactory()


def make_tsl(dims=2, **kwargs):
    return ThresholdSortedListAlgorithm(dims=dims, **kwargs)


class TestDefaultKmax:
    def test_paper_tuned_values(self):
        assert default_kmax(1) == 4
        assert default_kmax(5) == 10
        assert default_kmax(10) == 20
        assert default_kmax(20) == 30
        assert default_kmax(50) == 70
        assert default_kmax(100) == 120

    def test_interpolation_above_k(self):
        for k in (2, 7, 33, 400):
            assert default_kmax(k) > k


class TestThresholdAlgorithm:
    def test_ta_exact_on_random_data(self, factory):
        rng = random.Random(1)
        algo = make_tsl()
        records = [
            factory.make((rng.random(), rng.random())) for _ in range(80)
        ]
        algo.process_cycle(records, [])
        query = TopKQuery(LinearFunction([0.7, 0.3]), k=5)
        query.qid = 0
        entries = algo.register(query)
        expected = brute_top_k(records, query)
        assert [e.rid for e in entries] == [e.rid for e in expected]

    def test_ta_early_termination_skips_records(self, factory):
        rng = random.Random(2)
        algo = make_tsl()
        records = [
            factory.make((rng.random(), rng.random())) for _ in range(400)
        ]
        algo.process_cycle(records, [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        query.qid = 0
        algo.register(query)
        # TA must stop well before random-accessing all 400 records.
        assert algo.counters.random_accesses < 400

    def test_ta_with_decreasing_dimension(self, factory):
        algo = make_tsl()
        records = [
            factory.make((0.9, 0.9)),
            factory.make((0.8, 0.1)),  # best for x1 - x2
            factory.make((0.2, 0.2)),
        ]
        algo.process_cycle(records, [])
        query = TopKQuery(LinearFunction([1.0, -1.0]), k=1)
        query.qid = 0
        entries = algo.register(query)
        assert [e.rid for e in entries] == [1]

    def test_ta_fewer_records_than_kmax(self, factory):
        algo = make_tsl()
        records = [factory.make((0.5, 0.5))]
        algo.process_cycle(records, [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        query.qid = 0
        entries = algo.register(query)
        assert len(entries) == 1

    def test_ta_tie_heavy_data_is_canonical(self, factory):
        algo = make_tsl()
        records = [factory.make((0.5, 0.5)) for _ in range(6)]
        algo.process_cycle(records, [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        query.qid = 0
        entries = algo.register(query)
        assert [e.rid for e in entries] == [5, 4]


class TestViewMaintenance:
    def test_view_size_bounds(self, factory):
        rng = random.Random(3)
        algo = make_tsl()
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=5)
        query.qid = 0
        records = [
            factory.make((rng.random(), rng.random())) for _ in range(100)
        ]
        algo.process_cycle(records, [])
        algo.register(query)
        kmax = algo._states[0].kmax
        window = list(records)
        for _ in range(25):
            arrivals = [
                factory.make((rng.random(), rng.random())) for _ in range(5)
            ]
            window.extend(arrivals)
            expired = [window.pop(0) for _ in range(5)]
            algo.process_cycle(arrivals, expired)
            size = len(algo._states[0].view)
            assert query.k <= size <= kmax

    def test_refill_triggered_on_underflow(self, factory):
        algo = make_tsl(kmax_for=lambda k: k)  # kmax == k: fragile views
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        query.qid = 0
        a = factory.make((0.9, 0.9))
        b = factory.make((0.5, 0.5))
        algo.process_cycle([a, b], [])
        algo.register(query)
        assert algo.counters.view_refills == 0
        algo.process_cycle([], [a])
        assert algo.counters.view_refills == 1
        assert [e.rid for e in algo.current_result(0)] == [b.rid]

    def test_kmax_smaller_than_k_rejected(self, factory):
        algo = make_tsl(kmax_for=lambda k: k - 1)
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        query.qid = 0
        with pytest.raises(QueryError):
            algo.register(query)

    def test_view_grows_below_kmax(self, factory):
        algo = make_tsl()
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        query.qid = 0
        algo.register(query)  # empty view
        records = [factory.make((0.1 * i, 0.1)) for i in range(1, 4)]
        algo.process_cycle(records, [])
        assert len(algo._states[0].view) == 3

    def test_sorted_lists_track_window(self, factory):
        algo = make_tsl()
        records = [factory.make((0.2, 0.8)), factory.make((0.6, 0.4))]
        algo.process_cycle(records, [])
        assert algo.sorted_list_entries() == 4  # 2 dims x 2 records
        algo.process_cycle([], [records[0]])
        assert algo.sorted_list_entries() == 2

    def test_unregister(self):
        algo = make_tsl()
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 0
        algo.register(query)
        algo.unregister(0)
        with pytest.raises(QueryError):
            algo.current_result(0)


class TestRandomizedAgainstOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_sliding_stream_matches_brute(self, seed):
        rng = random.Random(200 + seed)
        factory = RecordFactory()
        algo = make_tsl()
        query = TopKQuery(
            LinearFunction([rng.uniform(0.1, 1), rng.uniform(0.1, 1)]),
            k=3,
        )
        query.qid = 0
        algo.register(query)
        window = []
        for _ in range(30):
            arrivals = [
                factory.make((rng.random(), rng.random())) for _ in range(5)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 35:
                expired.append(window.pop(0))
            algo.process_cycle(arrivals, expired)
            got = [e.rid for e in algo.current_result(0)]
            expected = [e.rid for e in brute_top_k(window, query)]
            assert got == expected
