"""Tests for SMA: skyband maintenance, frozen gate, recompute-on-underflow."""

import random

import pytest

from repro.algorithms.sma import SkybandMonitoringAlgorithm
from repro.core.errors import QueryError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory

from tests.conftest import brute_top_k


@pytest.fixture
def factory():
    return RecordFactory()


def make_sma(dims=2, cells=7):
    return SkybandMonitoringAlgorithm(dims=dims, cells_per_axis=cells)


class TestFigure8ScenarioUnderSMA:
    """The paper's Figure 8(b) point: where TMA recomputes, SMA kept
    p4 in the skyband and answers the expiry of p3 for free."""

    def setup_method(self):
        self.algo = make_sma()
        self.f = LinearFunction([1.0, 2.0])
        factory = RecordFactory()
        self.p1 = factory.make((0.62, 0.93))  # score 2.48 = the gate
        self.p2 = factory.make((0.11, 0.95))
        self.p3 = factory.make((0.70, 0.92))  # 2.54: new top-1
        self.p4 = factory.make((0.55, 0.97))  # 2.49: above the gate
        self.p5 = factory.make((0.30, 0.40))
        self.algo.process_cycle([self.p1, self.p2], [])
        self.query = TopKQuery(self.f, k=1)
        self.query.qid = 0
        self.algo.register(self.query)

    def test_no_recompute_when_skyband_holds_replacement(self):
        self.algo.process_cycle([self.p3, self.p4], [self.p1, self.p2])
        before = self.algo.counters.recomputations
        # p4 was admitted (its score beats the frozen gate score(p1));
        # when p3 expires the skyband still holds it.
        changes = self.algo.process_cycle([self.p5], [self.p3])
        assert self.algo.counters.recomputations == before
        assert [e.rid for e in self.algo.current_result(0)] == [self.p4.rid]
        assert [e.rid for e in changes[0].top] == [self.p4.rid]


class TestGateSemantics:
    def test_gate_is_frozen_between_recomputations(self, factory):
        """Arrivals between the frozen gate and the current kth score
        are still admitted to the skyband (Figure 11, line 7 note)."""
        algo = make_sma()
        base = factory.make((0.5, 0.5))  # gate anchor: score 1.0
        algo.process_cycle([base], [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        query.qid = 0
        algo.register(query)
        state = algo._states[0]
        assert state.gate == (pytest.approx(1.0), base.rid)

        better = factory.make((0.9, 0.9))  # raises current kth to 1.8
        algo.process_cycle([better], [])
        assert state.gate == (pytest.approx(1.0), base.rid)  # unchanged

        middle = factory.make((0.7, 0.7))  # 1.4: below kth, above gate
        algo.process_cycle([middle], [])
        assert middle.rid in state.skyband

    def test_gate_resets_on_recompute(self, factory):
        algo = make_sma()
        a = factory.make((0.9, 0.9))
        b = factory.make((0.5, 0.5))
        algo.process_cycle([a, b], [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        query.qid = 0
        algo.register(query)
        # Expire a: skyband had only {a} (b below gate) -> underflow ->
        # recompute finds b and refreezes the gate at b's score.
        algo.process_cycle([], [a])
        state = algo._states[0]
        assert [e.rid for e in algo.current_result(0)] == [b.rid]
        assert state.gate == (pytest.approx(1.0), b.rid)
        assert algo.counters.recomputations == 1


class TestMaintenance:
    def test_skyband_accumulates_beyond_k(self, factory):
        algo = make_sma()
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        query.qid = 0
        seed = [factory.make((0.5, 0.5)), factory.make((0.55, 0.5))]
        algo.process_cycle(seed, [])
        algo.register(query)
        # Arrivals above the frozen gate but below the incumbents enter
        # with DC=0 and dominate almost nothing: the skyband grows.
        arrivals = [
            factory.make((0.52, 0.52)),
            factory.make((0.515, 0.515)),
        ]
        algo.process_cycle(arrivals, [])
        assert algo.result_state_sizes()[0] >= 3

    def test_eviction_never_loses_top_k(self, factory):
        algo = make_sma()
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        query.qid = 0
        algo.register(query)
        live = []
        for i in range(12):
            record = factory.make((0.1 + 0.07 * i, 0.2))
            live.append(record)
            algo.process_cycle([record], [])
            expected = brute_top_k(live, query)
            got = algo.current_result(0)
            assert [e.rid for e in got] == [e.rid for e in expected]

    def test_expiry_of_skyband_member_is_cheap(self, factory):
        algo = make_sma()
        records = [factory.make((0.3 + 0.1 * i, 0.3)) for i in range(4)]
        algo.process_cycle(records, [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        query.qid = 0
        algo.register(query)
        # Admit two more so the skyband exceeds k.
        extra = [factory.make((0.8, 0.8)), factory.make((0.85, 0.85))]
        algo.process_cycle(extra, [])
        before = algo.counters.recomputations
        algo.process_cycle([], [records[0]])  # oldest; not in top-2
        assert algo.counters.recomputations == before

    def test_unregister(self, factory):
        algo = make_sma()
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 0
        algo.register(query)
        algo.unregister(0)
        with pytest.raises(QueryError):
            algo.current_result(0)
        assert all(0 not in cell.influence for cell in algo.grid.cells())


class TestRandomizedAgainstOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_sliding_stream_matches_brute(self, seed):
        rng = random.Random(100 + seed)
        factory = RecordFactory()
        algo = make_sma(cells=5)
        queries = []
        for qid in range(3):
            query = TopKQuery(
                LinearFunction(
                    [rng.uniform(0.1, 1), rng.uniform(0.1, 1)]
                ),
                k=rng.choice([1, 3, 5]),
            )
            query.qid = qid
            algo.register(query)
            queries.append(query)
        window = []
        for _ in range(30):
            arrivals = [
                factory.make((rng.random(), rng.random())) for _ in range(6)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 45:
                expired.append(window.pop(0))
            algo.process_cycle(arrivals, expired)
            for query in queries:
                got = [e.rid for e in algo.current_result(query.qid)]
                expected = [e.rid for e in brute_top_k(window, query)]
                assert got == expected, f"query {query.qid}"
