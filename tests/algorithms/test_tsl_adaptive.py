"""Tests for TSL's adaptive-kmax mode (Yi et al.'s dynamic policy)."""

import random

import pytest

from repro.algorithms.tsl import ThresholdSortedListAlgorithm, _TslQueryState
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory

from tests.conftest import brute_top_k


def make_state(k=10, kmax=10):
    query = TopKQuery(LinearFunction([1.0, 1.0]), k)
    query.qid = 0
    return _TslQueryState(query, kmax)


class TestAdaptRule:
    def algo(self):
        return ThresholdSortedListAlgorithm(2, adaptive_kmax=True)

    def test_quick_refill_grows_kmax(self):
        state = make_state(k=10, kmax=10)
        state.updates_since_refill = 3  # refilled almost immediately
        self.algo()._adapt_kmax(state)
        assert state.kmax > 10

    def test_growth_is_bounded(self):
        state = make_state(k=10, kmax=80)
        state.updates_since_refill = 0
        self.algo()._adapt_kmax(state)
        assert state.kmax == 80  # 8k cap

    def test_long_lived_view_shrinks_kmax(self):
        state = make_state(k=10, kmax=60)
        state.updates_since_refill = 601  # soaked lots of traffic
        self.algo()._adapt_kmax(state)
        assert state.kmax < 60

    def test_shrink_never_below_k_plus_one(self):
        state = make_state(k=10, kmax=11)
        state.updates_since_refill = 2000
        self.algo()._adapt_kmax(state)
        assert state.kmax >= 11

    def test_moderate_usage_keeps_kmax(self):
        state = make_state(k=10, kmax=30)
        state.updates_since_refill = 90  # between the two triggers
        self.algo()._adapt_kmax(state)
        assert state.kmax == 30


class TestAdaptiveEndToEnd:
    def test_results_stay_oracle_exact(self):
        rng = random.Random(77)
        factory = RecordFactory()
        algo = ThresholdSortedListAlgorithm(
            2, kmax_for=lambda k: k, adaptive_kmax=True
        )
        query = TopKQuery(LinearFunction([0.8, 0.5]), k=3)
        query.qid = 0
        algo.register(query)
        window = []
        for _ in range(40):
            arrivals = [
                factory.make((rng.random(), rng.random()))
                for _ in range(5)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 30:
                expired.append(window.pop(0))
            algo.process_cycle(arrivals, expired)
            got = [e.rid for e in algo.current_result(0)]
            expected = [e.rid for e in brute_top_k(window, query)]
            assert got == expected

    def test_kmax_grows_under_refill_pressure(self):
        rng = random.Random(78)
        factory = RecordFactory()
        algo = ThresholdSortedListAlgorithm(
            2, kmax_for=lambda k: k, adaptive_kmax=True
        )
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        query.qid = 0
        algo.register(query)
        window = []
        # Aggressive churn: 50% of the window replaced per cycle.
        for _ in range(30):
            arrivals = [
                factory.make((rng.random(), rng.random()))
                for _ in range(10)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 20:
                expired.append(window.pop(0))
            algo.process_cycle(arrivals, expired)
        assert algo._states[0].kmax > query.k
        assert algo.counters.view_refills > 0

    def test_static_mode_never_adapts(self):
        rng = random.Random(79)
        factory = RecordFactory()
        algo = ThresholdSortedListAlgorithm(
            2, kmax_for=lambda k: k, adaptive_kmax=False
        )
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        query.qid = 0
        algo.register(query)
        window = []
        for _ in range(20):
            arrivals = [
                factory.make((rng.random(), rng.random()))
                for _ in range(10)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 20:
                expired.append(window.pop(0))
            algo.process_cycle(arrivals, expired)
        assert algo._states[0].kmax == query.k
