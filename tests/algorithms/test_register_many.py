"""Grouped registration bursts (the PR 3 ROADMAP follow-up).

A burst of N similar queries registered in one cycle must get its
initial top-k computations through shared grid sweeps when
``grouped=True`` — previously each was computed solo even though the
cycle paths already grouped. Results must be identical either way.
"""

import random

import pytest

from repro.algorithms import make_algorithm
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction, QuadraticFunction
from repro.core.tuples import RecordFactory


def fill_grid(algorithm, seed=11, count=60):
    rng = random.Random(seed)
    factory = RecordFactory()
    records = [
        factory.make((rng.random(), rng.random())) for _ in range(count)
    ]
    algorithm.process_cycle(records, [])
    return records


def similar_queries(count, seed=5):
    rng = random.Random(seed)
    queries = []
    for qid in range(count):
        weights = [
            max(0.05, 0.6 + rng.uniform(-0.05, 0.05)),
            max(0.05, 0.4 + rng.uniform(-0.05, 0.05)),
        ]
        query = TopKQuery(LinearFunction(weights), k=rng.choice([1, 3, 5]))
        query.qid = qid
        queries.append(query)
    return queries


def influence_map(algorithm):
    return {
        cell.coords: frozenset(cell.influence)
        for cell in algorithm.grid.cells()
        if cell.influence
    }


@pytest.mark.parametrize("name", ["tma-grouped", "sma-grouped"])
def test_burst_matches_solo_registration(name):
    grouped = make_algorithm(name, 2, cells_per_axis=5)
    solo = make_algorithm(name.split("-")[0], 2, cells_per_axis=5)
    fill_grid(grouped)
    fill_grid(solo)

    queries = similar_queries(8)
    burst_results = grouped.register_many(similar_queries(8))
    solo_results = {
        query.qid: solo.register(query) for query in queries
    }
    assert grouped.counters.grouped_registrations > 0
    for qid in solo_results:
        assert [entry.key for entry in burst_results[qid]] == [
            entry.key for entry in solo_results[qid]
        ], f"query {qid} initial result diverged"
        assert [entry.key for entry in grouped.current_result(qid)] == [
            entry.key for entry in solo.current_result(qid)
        ]
    assert influence_map(grouped) == influence_map(solo)


@pytest.mark.parametrize("name", ["tma", "sma"])
def test_ungrouped_burst_stays_solo(name):
    algorithm = make_algorithm(name, 2, cells_per_axis=5)
    fill_grid(algorithm)
    algorithm.register_many(similar_queries(4))
    assert algorithm.counters.grouped_registrations == 0
    assert algorithm.counters.topk_computations == 4


def test_mixed_family_burst_groups_only_linear_members():
    algorithm = make_algorithm("tma-grouped", 2, cells_per_axis=5)
    fill_grid(algorithm)
    queries = similar_queries(5)
    outlier = TopKQuery(QuadraticFunction([0.5, 0.5]), k=3)
    outlier.qid = 99
    results = algorithm.register_many(queries + [outlier])
    assert algorithm.counters.grouped_registrations == 5
    assert set(results) == {0, 1, 2, 3, 4, 99}
    # The outlier got a correct solo computation.
    reference = make_algorithm("tma", 2, cells_per_axis=5)
    fill_grid(reference)
    twin = TopKQuery(QuadraticFunction([0.5, 0.5]), k=3)
    twin.qid = 99
    assert [entry.key for entry in results[99]] == [
        entry.key for entry in reference.register(twin)
    ]


def test_singleton_burst_takes_solo_path():
    algorithm = make_algorithm("tma-grouped", 2, cells_per_axis=5)
    fill_grid(algorithm)
    algorithm.register_many(similar_queries(1))
    assert algorithm.counters.grouped_registrations == 0


def test_burst_then_cycles_stay_consistent():
    """After a grouped burst, normal maintenance must behave exactly
    as if the queries had been registered one by one."""
    grouped = make_algorithm("tma-grouped", 2, cells_per_axis=5)
    solo = make_algorithm("tma", 2, cells_per_axis=5)
    fill_grid(grouped, seed=3)
    fill_grid(solo, seed=3)
    grouped.register_many(similar_queries(6, seed=9))
    for query in similar_queries(6, seed=9):
        solo.register(query)

    rng = random.Random(21)
    factory = RecordFactory(start=60)
    window = []
    for _ in range(8):
        arrivals = [
            factory.make((rng.random(), rng.random())) for _ in range(6)
        ]
        window.extend(arrivals)
        expired = []
        while len(window) > 40:
            expired.append(window.pop(0))
        grouped.process_cycle(list(arrivals), list(expired))
        solo.process_cycle(list(arrivals), list(expired))
        for qid in range(6):
            assert [e.key for e in grouped.current_result(qid)] == [
                e.key for e in solo.current_result(qid)
            ]
