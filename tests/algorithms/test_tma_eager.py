"""Tests for TMA's eager influence-list cleanup variant (ablation)."""

import random

import pytest

from repro.algorithms import make_algorithm
from repro.algorithms.tma import TopKMonitoringAlgorithm
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory

from tests.conftest import brute_top_k


def test_factory_accepts_flag():
    algo = make_algorithm("tma", 2, cells_per_axis=4, eager_cleanup=True)
    assert isinstance(algo, TopKMonitoringAlgorithm)
    assert algo.eager_cleanup


def test_eager_trims_after_gate_rise():
    factory = RecordFactory()
    algo = TopKMonitoringAlgorithm(2, cells_per_axis=6, eager_cleanup=True)
    low = factory.make((0.5, 0.5))
    algo.process_cycle([low], [])
    query = TopKQuery(LinearFunction([1.0, 1.0]), k=1)
    query.qid = 0
    algo.register(query)
    cells_before = sum(
        1 for cell in algo.grid.cells() if 0 in cell.influence
    )
    # A far better arrival raises the gate: the influence region
    # shrinks, and eager mode trims the lists immediately.
    high = factory.make((0.95, 0.95))
    algo.process_cycle([high], [])
    cells_after = sum(
        1 for cell in algo.grid.cells() if 0 in cell.influence
    )
    assert cells_after < cells_before
    threshold = algo.current_result(0)[0].score
    for cell in algo.grid.cells():
        if 0 in cell.influence:
            assert (
                algo.grid.maxscore(cell.coords, query.function)
                >= threshold
            )


def test_lazy_keeps_stale_entries():
    """The paper's default: the same scenario leaves the lists alone."""
    factory = RecordFactory()
    algo = TopKMonitoringAlgorithm(2, cells_per_axis=6, eager_cleanup=False)
    algo.process_cycle([factory.make((0.5, 0.5))], [])
    query = TopKQuery(LinearFunction([1.0, 1.0]), k=1)
    query.qid = 0
    algo.register(query)
    cells_before = sum(
        1 for cell in algo.grid.cells() if 0 in cell.influence
    )
    algo.process_cycle([factory.make((0.95, 0.95))], [])
    cells_after = sum(
        1 for cell in algo.grid.cells() if 0 in cell.influence
    )
    assert cells_after == cells_before


@pytest.mark.parametrize("seed", range(4))
def test_eager_results_match_oracle(seed):
    rng = random.Random(400 + seed)
    factory = RecordFactory()
    algo = TopKMonitoringAlgorithm(2, cells_per_axis=5, eager_cleanup=True)
    queries = []
    for qid in range(3):
        query = TopKQuery(
            LinearFunction([rng.uniform(0.1, 1), rng.uniform(0.1, 1)]),
            k=rng.choice([1, 3, 6]),
        )
        query.qid = qid
        algo.register(query)
        queries.append(query)
    window = []
    for _ in range(30):
        arrivals = [
            factory.make((rng.random(), rng.random())) for _ in range(6)
        ]
        window.extend(arrivals)
        expired = []
        while len(window) > 40:
            expired.append(window.pop(0))
        algo.process_cycle(arrivals, expired)
        for query in queries:
            got = [e.rid for e in algo.current_result(query.qid)]
            expected = [e.rid for e in brute_top_k(window, query)]
            assert got == expected


def test_eager_constrained_query_oracle():
    from repro.extensions.constrained import constrained_query

    rng = random.Random(9)
    factory = RecordFactory()
    algo = TopKMonitoringAlgorithm(2, cells_per_axis=6, eager_cleanup=True)
    query = constrained_query(
        LinearFunction([1.0, 2.0]), k=3, ranges=[(0.2, 0.8), None]
    )
    query.qid = 0
    algo.register(query)
    window = []
    for _ in range(25):
        arrivals = [
            factory.make((rng.random(), rng.random())) for _ in range(5)
        ]
        window.extend(arrivals)
        expired = []
        while len(window) > 35:
            expired.append(window.pop(0))
        algo.process_cycle(arrivals, expired)
        got = [e.rid for e in algo.current_result(0)]
        expected = [e.rid for e in brute_top_k(window, query)]
        assert got == expected
