"""Tests for TMA, including the paper's Figure 8 walk-through."""

import random

import pytest

from repro.algorithms.tma import TopKMonitoringAlgorithm
from repro.core.errors import DimensionalityError, QueryError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory

from tests.conftest import brute_top_k


@pytest.fixture
def factory():
    return RecordFactory()


def make_tma(dims=2, cells=7):
    return TopKMonitoringAlgorithm(dims=dims, cells_per_axis=cells)


class TestPaperFigure8:
    """Figures 5(a) + 8: top-1, f = x1 + 2*x2, on a 7x7 grid.

    Timeline: p1, p2 valid; q registered with result p1. Then
    (a) P_ins = {p3, p4}, P_del = {p1, p2}: p3 beats the current
        top score, so when p1 expires the result is already p3 —
        *no recomputation* (the reason TMA handles arrivals first);
    (b) P_ins = {p5}, P_del = {p3}: p5 changes nothing, the expiry of
        p3 invalidates the result, and the recomputation returns p4.
    """

    def setup_method(self):
        self.algo = make_tma()
        self.f = LinearFunction([1.0, 2.0])
        factory = RecordFactory()
        self.p1 = factory.make((0.62, 0.93))  # initial top-1
        self.p2 = factory.make((0.11, 0.95))
        self.p3 = factory.make((0.70, 0.92))  # better than p1
        self.p4 = factory.make((0.55, 0.80))  # worse than p1
        self.p5 = factory.make((0.30, 0.40))  # irrelevant
        self.algo.process_cycle([self.p1, self.p2], [])
        self.query = TopKQuery(self.f, k=1)
        self.query.qid = 0
        self.algo.register(self.query)

    def test_initial_result_is_p1(self):
        assert [e.rid for e in self.algo.current_result(0)] == [self.p1.rid]

    def test_arrival_replaces_expiring_result_without_recomputation(self):
        before = self.algo.counters.recomputations
        changes = self.algo.process_cycle(
            [self.p3, self.p4], [self.p1, self.p2]
        )
        assert self.algo.counters.recomputations == before
        assert [e.rid for e in self.algo.current_result(0)] == [self.p3.rid]
        assert 0 in changes
        assert [e.rid for e in changes[0].added] == [self.p3.rid]
        assert [e.rid for e in changes[0].removed] == [self.p1.rid]

    def test_expiry_of_result_triggers_recomputation(self):
        self.algo.process_cycle([self.p3, self.p4], [self.p1, self.p2])
        before = self.algo.counters.recomputations
        changes = self.algo.process_cycle([self.p5], [self.p3])
        assert self.algo.counters.recomputations == before + 1
        assert [e.rid for e in self.algo.current_result(0)] == [self.p4.rid]
        assert [e.rid for e in changes[0].top] == [self.p4.rid]

    def test_stale_influence_lists_cleaned_after_recomputation(self):
        """Figure 8(b): cells of the old (larger) region lose q."""
        self.algo.process_cycle([self.p3, self.p4], [self.p1, self.p2])
        self.algo.process_cycle([self.p5], [self.p3])
        threshold = self.f.score(self.p4.attrs)
        grid = self.algo.grid
        for x in range(7):
            for y in range(7):
                cell = grid.peek_cell((x, y))
                has_query = cell is not None and 0 in cell.influence
                if grid.maxscore((x, y), self.f) > threshold:
                    assert has_query, (x, y)
                elif grid.maxscore((x, y), self.f) < threshold:
                    assert not has_query, (x, y)


class TestLifecycle:
    def test_register_dimension_mismatch(self):
        algo = make_tma(dims=3)
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 0
        with pytest.raises(DimensionalityError):
            algo.register(query)

    def test_unregister_unknown(self):
        with pytest.raises(QueryError):
            make_tma().unregister(9)

    def test_current_result_unknown(self):
        with pytest.raises(QueryError):
            make_tma().current_result(9)

    def test_unregister_scrubs_influence(self, factory):
        algo = make_tma()
        algo.process_cycle([factory.make((0.5, 0.5))], [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 0
        algo.register(query)
        algo.unregister(0)
        assert all(
            0 not in cell.influence for cell in algo.grid.cells()
        )

    def test_queries_listing(self, factory):
        algo = make_tma()
        query = TopKQuery(LinearFunction([1.0, 1.0]), 2)
        query.qid = 0
        algo.register(query)
        assert list(algo.queries()) == [query]
        assert algo.result_state_sizes() == {0: 0}  # empty grid


class TestMaintenance:
    def test_underfull_top_list_fills_from_arrivals(self, factory):
        algo = make_tma()
        query = TopKQuery(LinearFunction([1.0, 1.0]), 3)
        query.qid = 0
        algo.register(query)
        records = [factory.make((0.2 * i, 0.1)) for i in range(1, 3)]
        algo.process_cycle(records, [])
        assert len(algo.current_result(0)) == 2

    def test_worse_arrival_ignored(self, factory):
        algo = make_tma()
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 0
        good = factory.make((0.9, 0.9))
        algo.process_cycle([good], [])
        algo.register(query)
        worse = factory.make((0.1, 0.1))
        changes = algo.process_cycle([worse], [])
        assert changes == {}
        assert [e.rid for e in algo.current_result(0)] == [good.rid]

    def test_expiry_of_nonresult_is_silent(self, factory):
        algo = make_tma()
        good = factory.make((0.9, 0.9))
        poor = factory.make((0.85, 0.85))
        algo.process_cycle([good, poor], [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 0
        algo.register(query)
        before = algo.counters.recomputations
        changes = algo.process_cycle([], [poor])
        assert algo.counters.recomputations == before
        assert changes == {}

    def test_score_tie_prefers_newer(self, factory):
        algo = make_tma()
        older = factory.make((0.5, 0.5))
        algo.process_cycle([older], [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 0
        algo.register(query)
        newer = factory.make((0.5, 0.5))
        algo.process_cycle([newer], [])
        assert [e.rid for e in algo.current_result(0)] == [newer.rid]

    def test_multi_query_independent_results(self, factory):
        algo = make_tma()
        q_max = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        q_max.qid = 0
        q_min = TopKQuery(LinearFunction([-1.0, -1.0]), 1)
        q_min.qid = 1
        algo.register(q_max)
        algo.register(q_min)
        high = factory.make((0.9, 0.9))
        low = factory.make((0.1, 0.1))
        algo.process_cycle([high, low], [])
        assert [e.rid for e in algo.current_result(0)] == [high.rid]
        assert [e.rid for e in algo.current_result(1)] == [low.rid]


class TestRandomizedAgainstOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_sliding_stream_matches_brute(self, seed):
        rng = random.Random(seed)
        factory = RecordFactory()
        algo = make_tma(cells=5)
        query = TopKQuery(
            LinearFunction([rng.uniform(0.1, 1), rng.uniform(0.1, 1)]),
            k=4,
        )
        query.qid = 0
        algo.register(query)
        window = []
        for _ in range(30):
            arrivals = [
                factory.make((rng.random(), rng.random())) for _ in range(5)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 40:
                expired.append(window.pop(0))
            algo.process_cycle(arrivals, expired)
            got = [e.rid for e in algo.current_result(0)]
            expected = [e.rid for e in brute_top_k(window, query)]
            assert got == expected
