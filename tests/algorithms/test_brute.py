"""Tests for the brute-force oracle algorithm."""

import pytest

from repro.algorithms.brute import BruteForceAlgorithm
from repro.core.errors import QueryError
from repro.core.queries import ConstrainedTopKQuery, TopKQuery
from repro.core.regions import Rectangle
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory


@pytest.fixture
def factory():
    return RecordFactory()


class TestBruteForce:
    def test_register_with_existing_data(self, factory):
        algo = BruteForceAlgorithm(2)
        algo.process_cycle([factory.make((0.9, 0.9))], [])
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 0
        entries = algo.register(query)
        assert [e.rid for e in entries] == [0]

    def test_cycle_updates_results(self, factory):
        algo = BruteForceAlgorithm(2)
        query = TopKQuery(LinearFunction([1.0, 1.0]), 2)
        query.qid = 0
        algo.register(query)
        a, b, c = (
            factory.make((0.1, 0.1)),
            factory.make((0.5, 0.5)),
            factory.make((0.9, 0.9)),
        )
        changes = algo.process_cycle([a, b, c], [])
        assert changes[0].top_ids() == [c.rid, b.rid]
        changes = algo.process_cycle([], [c])
        assert changes[0].top_ids() == [b.rid, a.rid]

    def test_constrained_query_respected(self, factory):
        algo = BruteForceAlgorithm(2)
        query = ConstrainedTopKQuery(
            LinearFunction([1.0, 1.0]),
            1,
            constraint=Rectangle((0.0, 0.0), (0.5, 0.5)),
        )
        query.qid = 0
        algo.register(query)
        inside = factory.make((0.4, 0.4))
        outside = factory.make((0.9, 0.9))
        algo.process_cycle([inside, outside], [])
        assert [e.rid for e in algo.current_result(0)] == [inside.rid]

    def test_unknown_query_errors(self):
        algo = BruteForceAlgorithm(2)
        with pytest.raises(QueryError):
            algo.current_result(3)
        with pytest.raises(QueryError):
            algo.unregister(3)

    def test_valid_records_snapshot(self, factory):
        algo = BruteForceAlgorithm(2)
        record = factory.make((0.5, 0.5))
        algo.process_cycle([record], [])
        assert algo.valid_records() == [record]
