"""Tests for shared from-scratch computation + influence-list plumbing."""

import random

from repro.algorithms.topk_computation import (
    cleanup_influence,
    compute_and_install,
    query_region,
    remove_query_everywhere,
)
from repro.core.queries import ConstrainedTopKQuery, TopKQuery
from repro.core.regions import Rectangle
from repro.core.scoring import LinearFunction
from repro.grid.grid import Grid

from tests.conftest import make_records


def build_grid(rows, cells=6):
    grid = Grid(2, cells)
    records = make_records(rows)
    for record in records:
        grid.insert(record)
    return grid, records


class TestQueryRegion:
    def test_plain_query_has_no_region(self):
        assert query_region(TopKQuery(LinearFunction([1.0, 1.0]), 1)) is None

    def test_constrained_query_region(self):
        region = Rectangle((0.1, 0.1), (0.9, 0.9))
        query = ConstrainedTopKQuery(
            LinearFunction([1.0, 1.0]), 1, constraint=region
        )
        assert query_region(query) is region


class TestInstall:
    def test_processed_cells_receive_query(self):
        grid, _ = build_grid([(0.9, 0.9), (0.1, 0.1)])
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 7
        outcome = compute_and_install(grid, query)
        for coords in outcome.processed:
            assert 7 in grid.get_cell(coords).influence

    def test_influence_set_is_threshold_staircase(self):
        rng = random.Random(2)
        rows = [(rng.random(), rng.random()) for _ in range(60)]
        grid, _ = build_grid(rows)
        f = LinearFunction([1.0, 2.0])
        query = TopKQuery(f, 3)
        query.qid = 0
        outcome = compute_and_install(grid, query)
        threshold = outcome.entries[-1].score
        for x in range(6):
            for y in range(6):
                cell = grid.peek_cell((x, y))
                has_query = cell is not None and 0 in cell.influence
                if grid.maxscore((x, y), f) > threshold:
                    assert has_query, (x, y)

    def test_empty_cells_are_materialised_for_influence(self):
        # A query must be discoverable by arrivals into cells that were
        # empty at registration time.
        grid = Grid(2, 3)
        query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
        query.qid = 1
        compute_and_install(grid, query)
        # No data at all: every cell processed and referenced.
        assert grid.allocated_cells == 9
        assert all(1 in cell.influence for cell in grid.cells())


class TestCleanup:
    def test_flood_removes_stale_entries(self):
        grid, _ = build_grid([(0.9, 0.9)])
        f = LinearFunction([1.0, 1.0])
        query = TopKQuery(f, 1)
        query.qid = 3
        outcome = compute_and_install(grid, query)
        # Manually mark a larger (stale) region: every cell.
        for x in range(6):
            for y in range(6):
                grid.get_cell((x, y)).influence.add(3)
        removed = cleanup_influence(grid, 3, f, outcome.remaining)
        assert removed > 0
        threshold = outcome.entries[0].score
        for x in range(6):
            for y in range(6):
                has_query = 3 in grid.get_cell((x, y)).influence
                if grid.maxscore((x, y), f) < threshold:
                    assert not has_query, (x, y)
                if grid.maxscore((x, y), f) >= threshold:
                    assert has_query, (x, y)

    def test_seeds_without_query_stop_immediately(self):
        grid = Grid(2, 4)
        removed = cleanup_influence(
            grid, 9, LinearFunction([1.0, 1.0]), [(0, 0), (3, 3)]
        )
        assert removed == 0


class TestRemoveEverywhere:
    def test_unregistered_query_fully_scrubbed(self):
        grid, _ = build_grid([(0.5, 0.5), (0.9, 0.2)])
        query = TopKQuery(LinearFunction([1.0, 1.0]), 2)
        query.qid = 4
        compute_and_install(grid, query)
        assert any(4 in cell.influence for cell in grid.cells())
        remove_query_everywhere(grid, query)
        assert all(4 not in cell.influence for cell in grid.cells())

    def test_constrained_query_scrubbed_from_region(self):
        grid, _ = build_grid([(0.4, 0.4)])
        region = Rectangle((0.0, 0.0), (0.5, 0.5))
        query = ConstrainedTopKQuery(
            LinearFunction([1.0, 1.0]), 1, constraint=region
        )
        query.qid = 5
        compute_and_install(grid, query)
        assert any(5 in cell.influence for cell in grid.cells())
        remove_query_everywhere(grid, query)
        assert all(5 not in cell.influence for cell in grid.cells())
