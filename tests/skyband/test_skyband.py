"""Tests for the score–time k-skyband with dominance counters.

Replays the paper's Figure 10 worked example and checks the structure
against a brute-force dominance oracle on random inputs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import ResultEntry
from repro.core.tuples import StreamRecord
from repro.skyband.skyband import ScoreTimeSkyband


def rec(rid: int, score: float = 0.0) -> StreamRecord:
    return StreamRecord(rid, (score,))


class TestPaperFigure10:
    """Figure 10's worked example, replayed exactly.

    The paper's state at time 0: a top-2 query's skyband contains
    p2, p3, p5, p7 with dominance counters p2:0, p3:1, p5:0, p7:1, and
    the top-2 result is {p2, p3}. Then p9 arrives, expiring after all
    other records, with score below p2 but above p3/p5/p7: the
    counters of p5, p3, p7 each increase by one, p3 and p7 hit DC=2
    and leave the 2-skyband, which becomes {p2, p9, p5} with the new
    top-2 {p2, p9}. After p2 expires the result is {p5, p9}.

    Arrival order equals expiration order (footnote 4), so rids encode
    the time axis. The constraints pin the arrival order to
    p3 → p7 → p2 → p5 (→ p9) and the score order to
    p2 > p9 > p3 > p7 > p5.
    """

    SCORES = {"p2": 0.9, "p3": 0.6, "p7": 0.5, "p5": 0.4, "p9": 0.8}
    RIDS = {"p3": 1, "p7": 2, "p2": 3, "p5": 4, "p9": 5}

    def build(self):
        skyband = ScoreTimeSkyband(k=2)
        for name in ("p3", "p7", "p2", "p5"):  # arrival order
            skyband.insert(
                self.SCORES[name], rec(self.RIDS[name], self.SCORES[name])
            )
        return skyband

    def members(self, skyband):
        inverse = {rid: name for name, rid in self.RIDS.items()}
        return {inverse[entry.record.rid] for entry in skyband.entries()}

    def test_initial_two_skyband_and_counters(self):
        skyband = self.build()
        assert self.members(skyband) == {"p2", "p3", "p5", "p7"}
        dcs = {
            entry.record.rid: entry.dc for entry in skyband.entries()
        }
        assert dcs[self.RIDS["p2"]] == 0
        assert dcs[self.RIDS["p3"]] == 1
        assert dcs[self.RIDS["p5"]] == 0
        assert dcs[self.RIDS["p7"]] == 1

    def test_initial_top2(self):
        skyband = self.build()
        assert [entry.rid for entry in skyband.top()] == [
            self.RIDS["p2"],
            self.RIDS["p3"],
        ]

    def test_p9_arrival_evicts_p3_and_p7(self):
        skyband = self.build()
        evicted = skyband.insert(
            self.SCORES["p9"], rec(self.RIDS["p9"], self.SCORES["p9"])
        )
        assert {record.rid for record in evicted} == {
            self.RIDS["p3"],
            self.RIDS["p7"],
        }
        assert self.members(skyband) == {"p2", "p9", "p5"}
        dcs = {entry.record.rid: entry.dc for entry in skyband.entries()}
        assert dcs[self.RIDS["p5"]] == 1  # "p5.DC = 1"

    def test_top2_after_p9(self):
        skyband = self.build()
        skyband.insert(
            self.SCORES["p9"], rec(self.RIDS["p9"], self.SCORES["p9"])
        )
        assert [entry.rid for entry in skyband.top()] == [
            self.RIDS["p2"],
            self.RIDS["p9"],
        ]

    def test_top2_after_p2_expires(self):
        skyband = self.build()
        skyband.insert(
            self.SCORES["p9"], rec(self.RIDS["p9"], self.SCORES["p9"])
        )
        assert skyband.remove_by_rid(self.RIDS["p2"])
        assert {entry.rid for entry in skyband.top()} == {
            self.RIDS["p5"],
            self.RIDS["p9"],
        }


class TestBasics:
    def test_insert_orders_by_key(self):
        skyband = ScoreTimeSkyband(k=3)
        skyband.insert(0.5, rec(1))
        skyband.insert(0.9, rec(2))
        skyband.insert(0.1, rec(3))
        assert [entry.rid for entry in skyband.top()] == [2, 1, 3]

    def test_contains(self):
        skyband = ScoreTimeSkyband(k=2)
        skyband.insert(0.5, rec(1))
        assert 1 in skyband
        assert 2 not in skyband

    def test_score_tie_dominance(self):
        # Same score, later arrival dominates: k=1 evicts the older.
        skyband = ScoreTimeSkyband(k=1)
        skyband.insert(0.5, rec(1))
        evicted = skyband.insert(0.5, rec(2))
        assert [record.rid for record in evicted] == [1]
        assert [entry.rid for entry in skyband.top()] == [2]

    def test_kth_key_underfull(self):
        skyband = ScoreTimeSkyband(k=3)
        skyband.insert(0.5, rec(1))
        assert skyband.kth_key() == (float("-inf"), -1)

    def test_kth_key_full(self):
        skyband = ScoreTimeSkyband(k=2)
        skyband.insert(0.5, rec(1))
        skyband.insert(0.9, rec(2))
        assert skyband.kth_key() == (0.5, 1)

    def test_remove_missing_is_noop(self):
        skyband = ScoreTimeSkyband(k=2)
        assert skyband.remove_by_rid(42) is False

    def test_eviction_at_dc_k(self):
        skyband = ScoreTimeSkyband(k=2)
        skyband.insert(0.1, rec(1))
        skyband.insert(0.5, rec(2))  # dominates 1 -> dc(1)=1
        evicted = skyband.insert(0.6, rec(3))  # dc(1)=2 -> evicted
        assert [record.rid for record in evicted] == [1]
        skyband.validate()

    def test_rebuild_computes_dcs(self):
        skyband = ScoreTimeSkyband(k=3)
        # Best-first entries; arrival order: 5 newest ... 1 oldest.
        entries = [
            ResultEntry(0.9, rec(2)),
            ResultEntry(0.8, rec(5)),
            ResultEntry(0.7, rec(1)),
            ResultEntry(0.6, rec(4)),
        ]
        skyband.rebuild(entries)
        dcs = {entry.record.rid: entry.dc for entry in skyband.entries()}
        # rid 2: nothing above it -> 0
        # rid 5: above it only rid 2 (arrived before 5? 2 < 5 -> no) -> 0
        # rid 1: above it rid 2 (2 > 1: later) and rid 5 (later) -> 2
        # rid 4: above it rids 2,5,1; later arrivals: 5 -> 1
        assert dcs == {2: 0, 5: 0, 1: 2, 4: 1}
        skyband.validate()


class TestOracle:
    @staticmethod
    def oracle_members(inserted, k):
        """Brute-force k-skyband over (score, rid) dominance."""
        members = []
        for score, rid in inserted:
            dominators = sum(
                1
                for other_score, other_rid in inserted
                if (other_score, other_rid) > (score, rid) and other_rid > rid
            )
            if dominators < k:
                members.append(rid)
        return set(members)

    @settings(max_examples=60, deadline=None)
    @given(
        scores=st.lists(
            st.integers(0, 9), min_size=1, max_size=40
        ),
        k=st.integers(1, 4),
    )
    def test_matches_dominance_oracle(self, scores, k):
        skyband = ScoreTimeSkyband(k=k)
        inserted = []
        for rid, score_int in enumerate(scores):
            score = score_int / 10.0
            skyband.insert(score, rec(rid, score))
            inserted.append((score, rid))
        skyband.validate()
        got = {entry.record.rid for entry in skyband.entries()}
        assert got == self.oracle_members(inserted, k)

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(st.integers(0, 11), min_size=1, max_size=60),
        k=st.integers(1, 3),
    )
    def test_with_fifo_expirations_is_exact(self, ops, k):
        """Interleaved FIFO expirations: skyband == exact k-skyband.

        Without an admission gate every arrival is inserted, and a
        record's dominators all arrive after it — hence, under FIFO
        expiry, outlive it. So a member's DC always equals its number
        of *live* dominators and the structure tracks the k-skyband of
        the live set exactly.
        """
        skyband = ScoreTimeSkyband(k=k)
        live = []  # (score, rid) in arrival order
        next_rid = 0
        for op in ops:
            if op == 11 and live:
                _, rid = live.pop(0)
                skyband.remove_by_rid(rid)
            else:
                score = op / 12.0
                skyband.insert(score, rec(next_rid, score))
                live.append((score, next_rid))
                next_rid += 1
            skyband.validate()
        got = {entry.record.rid for entry in skyband.entries()}
        expected = {
            rid
            for score, rid in live
            if sum(
                1
                for other_score, other_rid in live
                # score-time dominance: at least as good AND expires later
                if other_rid > rid and other_score >= score
            )
            < k
        }
        assert got == expected
