"""Tests for the general d-dimensional skyline / k-skyband oracle.

Includes a replay of the paper's Figure 1(b) geometry and the
Section 3.1 claims connecting skybands to top-k results.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import LinearFunction
from repro.skyband.skyline import (
    dominance_count,
    dominates,
    k_skyband,
    skyline,
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((0.5, 0.5), (0.4, 0.4), (1, 1))
        assert not dominates((0.4, 0.4), (0.5, 0.5), (1, 1))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((0.5, 0.5), (0.5, 0.5), (1, 1))

    def test_partial_improvement_with_tie(self):
        assert dominates((0.5, 0.5), (0.5, 0.4), (1, 1))

    def test_incomparable(self):
        assert not dominates((0.9, 0.1), (0.1, 0.9), (1, 1))
        assert not dominates((0.1, 0.9), (0.9, 0.1), (1, 1))

    def test_directions_flip(self):
        # Smaller second coordinate preferable.
        assert dominates((0.5, 0.2), (0.4, 0.6), (1, -1))
        assert not dominates((0.5, 0.6), (0.4, 0.2), (1, -1))


class TestFigure1b:
    """Figure 1(b): skyline {p1,p2,p3}, 2-skyband {p1..p7}.

    Coordinates chosen to reproduce the figure's structure: p1..p3 on
    the frontier, p4..p7 dominated once, p8..p10 dominated twice+.
    """

    POINTS = {
        "p1": (0.15, 0.90),
        "p2": (0.55, 0.70),
        "p3": (0.90, 0.25),
        "p4": (0.35, 0.68),  # dominated by p2 only
        "p5": (0.50, 0.60),  # dominated by p2 only
        "p6": (0.10, 0.85),  # dominated by p1 only
        "p7": (0.80, 0.20),  # dominated by p3 only
        "p8": (0.30, 0.55),  # dominated by p2, p5
        "p9": (0.45, 0.50),  # dominated by p2, p5
        "p10": (0.05, 0.30),  # dominated by many
    }

    def rows(self):
        names = sorted(self.POINTS, key=lambda n: int(n[1:]))
        return names, [self.POINTS[n] for n in names]

    def test_skyline(self):
        names, rows = self.rows()
        members = {names[i] for i in skyline(rows, (1, 1))}
        assert members == {"p1", "p2", "p3"}

    def test_two_skyband(self):
        names, rows = self.rows()
        members = {names[i] for i in k_skyband(rows, 2, (1, 1))}
        assert members == {"p1", "p2", "p3", "p4", "p5", "p6", "p7"}

    def test_top1_result_always_on_skyline(self):
        """Section 3.1: any monotone top-1 lands on the skyline."""
        names, rows = self.rows()
        skyline_members = {names[i] for i in skyline(rows, (1, 1))}
        rng = random.Random(3)
        for _ in range(50):
            f = LinearFunction([rng.uniform(0.05, 1.0) for _ in range(2)])
            best = max(range(len(rows)), key=lambda i: (f.score(rows[i]), i))
            assert names[best] in skyline_members

    def test_non_skyband_never_in_top2(self):
        """Tuples outside the 2-skyband lose every top-2 query."""
        names, rows = self.rows()
        band = {names[i] for i in k_skyband(rows, 2, (1, 1))}
        outside = set(names) - band
        rng = random.Random(4)
        for _ in range(50):
            f = LinearFunction([rng.uniform(0.05, 1.0) for _ in range(2)])
            ranked = sorted(
                range(len(rows)),
                key=lambda i: (f.score(rows[i]), i),
                reverse=True,
            )
            top2 = {names[i] for i in ranked[:2]}
            assert not (top2 & outside)


class TestKSkyband:
    def test_skyline_is_1_skyband(self):
        rng = random.Random(9)
        rows = [(rng.random(), rng.random()) for _ in range(60)]
        assert skyline(rows, (1, 1)) == k_skyband(rows, 1, (1, 1))

    def test_k_large_includes_everything(self):
        rows = [(0.1, 0.1), (0.2, 0.2), (0.3, 0.3)]
        assert k_skyband(rows, 10, (1, 1)) == [0, 1, 2]

    def test_dominance_count(self):
        rows = [(0.9, 0.9), (0.5, 0.5), (0.1, 0.1)]
        assert dominance_count(rows[2], rows, (1, 1)) == 2
        assert dominance_count(rows[0], rows, (1, 1)) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=1,
            max_size=30,
        ),
        k=st.integers(1, 3),
    )
    def test_skyband_nesting(self, rows, k):
        """(k)-skyband ⊆ (k+1)-skyband, both under the same directions."""
        small = set(k_skyband(rows, k, (1, 1)))
        large = set(k_skyband(rows, k + 1, (1, 1)))
        assert small <= large
