"""Tests for future-result prediction (Section 3.1, Figure 2)."""

import random

import pytest

from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.skyband.prediction import (
    future_skyband,
    lifetime_of,
    predict_future_results,
)

from tests.conftest import brute_top_k


def replay_oracle(records, query):
    """Ground truth: drain the window FIFO, record each result change."""
    live = list(records)
    timeline = [(-1, tuple(brute_top_k(live, query)))]
    while live:
        expiring = live.pop(0)
        top = tuple(brute_top_k(live, query))
        if top != timeline[-1][1]:
            timeline.append((expiring.rid, top))
    return timeline


class TestPaperFigure2:
    """Figure 2's worked example, replayed exactly.

    The paper's narration: "The top-2 set at time 0 is {p1, p2}. When
    p1 expires at time 2, it is replaced by p3. At time 4, p3 expires
    and the result becomes {p2, p5}. Finally, at time 5, p7 replaces
    p2." The records appearing in some result are the solid ones of
    Figure 2(b): p1, p2, p3, p5, p7; the hollow p4, p6, p8 never
    surface.

    rid encodes expiry order. The constraints above pin it (up to the
    hollow records' slack) to p1, p3, p6, p4, p2, p8, p5, p7 with
    scores p1 > p2 > p3 > p5 > p7 > p4 > p6 > p8.
    """

    #: name -> (rid/expiry position, score)
    LAYOUT = {
        "p1": (1, 0.95),
        "p3": (2, 0.80),
        "p6": (3, 0.30),
        "p4": (4, 0.40),
        "p2": (5, 0.90),
        "p8": (6, 0.20),
        "p5": (7, 0.70),
        "p7": (8, 0.60),
    }

    def build(self):
        records = [
            RecordFactory(start=rid).make((score,))
            for rid, score in sorted(self.LAYOUT.values())
        ]
        query = TopKQuery(LinearFunction([1.0]), k=2)
        return records, query

    def rid(self, name):
        return self.LAYOUT[name][0]

    def test_timeline(self):
        records, query = self.build()
        timeline = predict_future_results(records, query)
        tops = [
            (change.expiring_rid, [e.rid for e in change.top])
            for change in timeline
        ]
        r = self.rid
        assert tops == [
            (-1, [r("p1"), r("p2")]),  # {p1, p2}
            (r("p1"), [r("p2"), r("p3")]),  # p1 expires -> {p2, p3}
            (r("p3"), [r("p2"), r("p5")]),  # p3 expires -> {p2, p5}
            (r("p2"), [r("p5"), r("p7")]),  # p2 expires -> {p5, p7}
            (r("p5"), [r("p7")]),  # window drains below k
            (r("p7"), []),
        ]

    def test_skyband_is_figure_2b(self):
        """The solid records of Figure 2(b): exactly {p1,p2,p3,p5,p7}."""
        records, query = self.build()
        band = {entry.record.rid for entry in future_skyband(records, query)}
        assert band == {
            self.rid(name) for name in ("p1", "p2", "p3", "p5", "p7")
        }

    def test_hollow_records_never_reported(self):
        records, query = self.build()
        for name in ("p4", "p6", "p8"):
            ever, _ = lifetime_of(records, query, self.rid(name))
            assert ever is False, name

    def test_lifetime_of(self):
        records, query = self.build()
        r = self.rid
        assert lifetime_of(records, query, r("p1")) == (True, -1)
        assert lifetime_of(records, query, r("p3")) == (True, r("p1"))
        assert lifetime_of(records, query, r("p5")) == (True, r("p3"))
        assert lifetime_of(records, query, r("p7")) == (True, r("p2"))


class TestAgainstReplayOracle:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 3])
    def test_random_windows(self, seed, k):
        rng = random.Random(seed)
        factory = RecordFactory()
        records = [
            factory.make((rng.random(), rng.random())) for _ in range(30)
        ]
        query = TopKQuery(
            LinearFunction([rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]),
            k,
        )
        predicted = [
            (change.expiring_rid, change.top)
            for change in predict_future_results(records, query)
        ]
        assert predicted == replay_oracle(records, query)

    def test_tie_heavy_window(self):
        factory = RecordFactory()
        records = [factory.make((0.5,)) for _ in range(6)]
        query = TopKQuery(LinearFunction([1.0]), k=2)
        predicted = [
            (change.expiring_rid, change.top)
            for change in predict_future_results(records, query)
        ]
        assert predicted == replay_oracle(records, query)

    def test_empty_window(self):
        query = TopKQuery(LinearFunction([1.0]), k=2)
        timeline = predict_future_results([], query)
        assert len(timeline) == 1
        assert timeline[0].top == ()


class TestFutureSkyband:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bnl_oracle(self, seed):
        from repro.skyband.skyline import k_skyband

        rng = random.Random(50 + seed)
        factory = RecordFactory()
        records = [
            factory.make((rng.random(), rng.random())) for _ in range(40)
        ]
        query = TopKQuery(LinearFunction([0.7, 0.4]), k=3)
        fast = {e.record.rid for e in future_skyband(records, query)}
        points = [
            (query.score(r.attrs), float(r.rid)) for r in records
        ]
        slow = {records[i].rid for i in k_skyband(points, 3, (1, 1))}
        assert fast == slow

    def test_band_is_best_first(self):
        factory = RecordFactory()
        records = [factory.make((v,)) for v in (0.2, 0.9, 0.5)]
        query = TopKQuery(LinearFunction([1.0]), k=2)
        band = future_skyband(records, query)
        keys = [entry.key for entry in band]
        assert keys == sorted(keys, reverse=True)
