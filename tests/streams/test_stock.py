"""Tests for the synthetic stock-tick stream."""

from repro.streams.stock import StockStream


class TestStockStream:
    def test_batch_shape(self):
        stream = StockStream(symbols=20, ticks_per_cycle=30, seed=1)
        batch = stream.next_batch()
        assert len(batch) == 30
        for item in batch:
            assert len(item.record.attrs) == 2
            assert all(0.0 <= v < 1.0 for v in item.record.attrs)
            assert item.tick.price > 0
            assert item.tick.volume >= 1

    def test_prices_follow_ticks(self):
        stream = StockStream(symbols=5, ticks_per_cycle=100, seed=2)
        batch = stream.next_batch()
        last_price = {}
        for item in batch:
            last_price[item.tick.symbol] = item.tick.price
        for symbol, price in last_price.items():
            assert stream._prices[symbol] == price

    def test_shock_shows_up_as_large_move(self):
        stream = StockStream(
            symbols=3, ticks_per_cycle=200, seed=3, volatility=0.0001
        )
        stream.shock("SYM000", 0.25)
        batch = stream.next_batch()
        moves = [
            abs(item.tick.change)
            for item in batch
            if item.tick.symbol == "SYM000"
        ]
        # The first SYM000 tick after the shock registers a large move.
        assert moves and max(moves) > 0.05

    def test_reproducible(self):
        a = StockStream(seed=4).next_batch()
        b = StockStream(seed=4).next_batch()
        assert [i.tick for i in a] == [i.tick for i in b]
