"""Tests for the explicit-deletion update-stream driver."""

import pytest

from repro.core.errors import StreamError
from repro.streams.generators import Independent
from repro.streams.update_stream import UpdateStreamDriver


class TestValidation:
    def test_invalid_rate(self):
        with pytest.raises(StreamError):
            UpdateStreamDriver(Independent(2), rate=0)

    def test_invalid_lifetimes(self):
        with pytest.raises(StreamError):
            UpdateStreamDriver(
                Independent(2), rate=1, min_lifetime=5, max_lifetime=2
            )
        with pytest.raises(StreamError):
            UpdateStreamDriver(
                Independent(2), rate=1, min_lifetime=0, max_lifetime=2
            )


class TestGeneration:
    def test_every_insert_deleted_exactly_once(self):
        driver = UpdateStreamDriver(
            Independent(2), rate=4, min_lifetime=1, max_lifetime=6, seed=2
        )
        inserted = set()
        deleted = []
        for batch in driver.batches(30):
            inserted.update(r.rid for r in batch.insertions)
            deleted.extend(r.rid for r in batch.deletions)
        remaining = {r.rid for r in driver.drain()}
        assert len(deleted) == len(set(deleted))  # no double deletes
        assert set(deleted) | remaining == inserted

    def test_lifetimes_within_bounds(self):
        driver = UpdateStreamDriver(
            Independent(2), rate=3, min_lifetime=2, max_lifetime=5, seed=3
        )
        born = {}
        for cycle, batch in enumerate(driver.batches(25), start=1):
            for record in batch.insertions:
                born[record.rid] = cycle
            for record in batch.deletions:
                age = cycle - born[record.rid]
                assert 2 <= age <= 5

    def test_deletions_never_precede_insertions(self):
        driver = UpdateStreamDriver(
            Independent(2), rate=3, min_lifetime=1, max_lifetime=4, seed=4
        )
        seen = set()
        for batch in driver.batches(20):
            seen.update(r.rid for r in batch.insertions)
            for record in batch.deletions:
                assert record.rid in seen

    def test_batch_times_increase(self):
        driver = UpdateStreamDriver(Independent(2), rate=1, seed=5)
        times = [batch.time for batch in driver.batches(5)]
        assert times == sorted(times)
        assert len(set(times)) == 5
