"""Tests for the synthetic NetFlow stream and its attack episodes."""

from collections import Counter

from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.streams.netflow import NetFlowStream

from tests.conftest import brute_top_k


class TestGeneration:
    def test_batch_size_and_normalisation(self):
        stream = NetFlowStream(flows_per_cycle=50, seed=1)
        batch = stream.next_batch()
        assert len(batch) == 50
        for item in batch:
            assert len(item.record.attrs) == 2
            assert all(0.0 <= v < 1.0 for v in item.record.attrs)
            assert item.flow.throughput >= 0.0

    def test_record_ids_monotone(self):
        stream = NetFlowStream(flows_per_cycle=10, seed=1)
        first = stream.next_batch()
        second = stream.next_batch()
        assert max(i.record.rid for i in first) < min(
            i.record.rid for i in second
        )

    def test_reproducible(self):
        a = NetFlowStream(flows_per_cycle=20, seed=3).next_batch()
        b = NetFlowStream(flows_per_cycle=20, seed=3).next_batch()
        assert [i.flow for i in a] == [i.flow for i in b]


class TestEpisodes:
    def test_ddos_dominates_top_throughput(self):
        """The intro's detection: top flows by throughput share a dst."""
        stream = NetFlowStream(flows_per_cycle=100, seed=7)
        victim = stream.inject_ddos(start_cycle=2, duration=1)
        stream.next_batch()  # cycle 1: baseline
        batch = stream.next_batch()  # cycle 2: attack active
        query = TopKQuery(LinearFunction([1.0, 0.0]), k=20)
        by_rid = {item.record.rid: item.flow for item in batch}
        top = brute_top_k([item.record for item in batch], query)
        dst_counts = Counter(by_rid[e.rid].dst for e in top)
        dominant_dst, hits = dst_counts.most_common(1)[0]
        assert dominant_dst == victim
        assert hits >= 10  # more than half the top-20 hit the victim

    def test_worm_dominates_min_packets(self):
        """Top flows by minimum packet count share the worm source."""
        stream = NetFlowStream(flows_per_cycle=100, seed=8)
        worm = stream.inject_worm(start_cycle=1, duration=1)
        batch = stream.next_batch()
        query = TopKQuery(LinearFunction([0.0, -1.0]), k=20)
        by_rid = {item.record.rid: item.flow for item in batch}
        top = brute_top_k([item.record for item in batch], query)
        src_counts = Counter(by_rid[e.rid].src for e in top)
        dominant_src, hits = src_counts.most_common(1)[0]
        assert dominant_src == worm
        assert hits >= 10
        # Worm probes are single-packet SYNs.
        assert all(
            by_rid[e.rid].packets == 1
            for e in top
            if by_rid[e.rid].src == worm
        )

    def test_no_episode_no_dominant_target(self):
        stream = NetFlowStream(flows_per_cycle=100, hosts=400, seed=9)
        batch = stream.next_batch()
        query = TopKQuery(LinearFunction([1.0, 0.0]), k=20)
        by_rid = {item.record.rid: item.flow for item in batch}
        top = brute_top_k([item.record for item in batch], query)
        dst_counts = Counter(by_rid[e.rid].dst for e in top)
        assert dst_counts.most_common(1)[0][1] <= 5
