"""Tests for the sliding-window stream driver."""

import pytest

from repro.core.errors import StreamError
from repro.streams.generators import Independent
from repro.streams.stream import StreamDriver


class TestStreamDriver:
    def test_invalid_rate(self):
        with pytest.raises(StreamError):
            StreamDriver(Independent(2), rate=0)

    def test_warmup_batch(self):
        driver = StreamDriver(Independent(2), rate=10, seed=1)
        warm = driver.warmup(25)
        assert len(warm) == 25
        assert [r.rid for r in warm] == list(range(25))
        assert all(r.time == 0.0 for r in warm)

    def test_batches_tick_the_clock(self):
        driver = StreamDriver(Independent(2), rate=4, seed=1)
        batches = list(driver.batches(3))
        assert [len(b) for b in batches] == [4, 4, 4]
        assert [b[0].time for b in batches] == [1.0, 2.0, 3.0]
        assert driver.clock == 3.0

    def test_ids_monotone_across_batches(self):
        driver = StreamDriver(Independent(2), rate=3, seed=1)
        driver.warmup(5)
        ids = [r.rid for batch in driver.batches(4) for r in batch]
        assert ids == list(range(5, 17))

    def test_custom_batch_size(self):
        driver = StreamDriver(Independent(2), rate=3, seed=1)
        assert len(driver.next_batch(count=7)) == 7

    def test_materialize_equals_fresh_stream(self):
        a = StreamDriver(Independent(2), rate=5, seed=9)
        b = StreamDriver(Independent(2), rate=5, seed=9)
        batches_a = a.materialize(4)
        batches_b = [b.next_batch() for _ in range(4)]
        assert [
            [(r.rid, r.attrs) for r in batch] for batch in batches_a
        ] == [[(r.rid, r.attrs) for r in batch] for batch in batches_b]

    def test_time_step(self):
        driver = StreamDriver(Independent(2), rate=1, seed=1, time_step=0.5)
        driver.next_batch()
        driver.next_batch()
        assert driver.clock == 1.0
