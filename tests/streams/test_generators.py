"""Tests for the IND / ANT / CLU data distributions."""

import random

import pytest

from repro.core.errors import StreamError
from repro.streams.generators import (
    AntiCorrelated,
    Clustered,
    Independent,
    correlation_matrix,
    make_distribution,
)


class TestIndependent:
    def test_range_and_dims(self, rng):
        dist = Independent(4)
        for point in dist.sample_many(rng, 200):
            assert len(point) == 4
            assert all(0.0 <= v < 1.0 for v in point)

    def test_roughly_uniform_mean(self, rng):
        dist = Independent(2)
        points = dist.sample_many(rng, 3000)
        for dim in range(2):
            mean = sum(p[dim] for p in points) / len(points)
            assert 0.45 < mean < 0.55

    def test_near_zero_correlation(self, rng):
        points = Independent(3).sample_many(rng, 3000)
        corr = correlation_matrix(points)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert abs(corr[i][j]) < 0.1


class TestAntiCorrelated:
    def test_range_and_dims(self, rng):
        dist = AntiCorrelated(4)
        for point in dist.sample_many(rng, 200):
            assert len(point) == 4
            assert all(0.0 <= v < 1.0 for v in point)

    def test_negative_pairwise_correlation(self, rng):
        points = AntiCorrelated(2).sample_many(rng, 3000)
        corr = correlation_matrix(points)
        assert corr[0][1] < -0.3  # strongly anti-correlated

    def test_sum_concentrates_near_half_d(self, rng):
        dims = 4
        points = AntiCorrelated(dims).sample_many(rng, 1000)
        sums = [sum(p) for p in points]
        mean_sum = sum(sums) / len(sums)
        assert abs(mean_sum - dims / 2) < 0.25

    def test_one_dimension_fallback(self, rng):
        dist = AntiCorrelated(1)
        for point in dist.sample_many(rng, 50):
            assert 0.0 <= point[0] < 1.0

    def test_invalid_spread(self):
        with pytest.raises(StreamError):
            AntiCorrelated(2, spread=0.0)


class TestClustered:
    def test_points_near_centres(self, rng):
        dist = Clustered(2, clusters=3, sigma=0.02, seed=5)
        for point in dist.sample_many(rng, 100):
            nearest = min(
                sum((a - b) ** 2 for a, b in zip(point, centre)) ** 0.5
                for centre in dist.centres
            )
            assert nearest < 0.15

    def test_invalid_clusters(self):
        with pytest.raises(StreamError):
            Clustered(2, clusters=0)


class TestFactory:
    def test_make_known(self):
        assert isinstance(make_distribution("ind", 2), Independent)
        assert isinstance(make_distribution("ANT", 3), AntiCorrelated)
        assert isinstance(make_distribution("clu", 2), Clustered)

    def test_make_unknown(self):
        with pytest.raises(StreamError):
            make_distribution("zipf", 2)

    def test_invalid_dims(self):
        with pytest.raises(StreamError):
            Independent(0)

    def test_repr(self):
        assert "dims=3" in repr(Independent(3))


class TestReproducibility:
    def test_same_seed_same_points(self):
        a = Independent(3).sample_many(random.Random(42), 50)
        b = Independent(3).sample_many(random.Random(42), 50)
        assert a == b

    def test_ant_same_seed_same_points(self):
        a = AntiCorrelated(3).sample_many(random.Random(42), 50)
        b = AntiCorrelated(3).sample_many(random.Random(42), 50)
        assert a == b
