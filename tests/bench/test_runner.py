"""Tests for the benchmark runner and reporting helpers."""

import pytest

from repro.bench.reporting import format_table, print_series, speedup
from repro.bench.runner import compare_algorithms, run_workload
from repro.bench.workloads import WorkloadSpec

SMALL = WorkloadSpec(
    dims=2, n=400, rate=20, num_queries=4, k=5, cycles=4, seed=2
)


class TestRunWorkload:
    def test_smoke(self):
        result = run_workload(SMALL, "sma")
        assert result.algorithm == "sma"
        assert len(result.cycle_seconds) == SMALL.cycles
        assert result.counters.arrivals == SMALL.rate * SMALL.cycles
        assert result.counters.expirations == SMALL.rate * SMALL.cycles
        assert result.space.total > 0
        assert len(result.final_results) == SMALL.num_queries
        assert result.mean_state_size >= SMALL.k

    def test_recomputation_rate(self):
        result = run_workload(SMALL, "tma")
        assert 0.0 <= result.recomputation_rate <= 1.0

    def test_same_spec_same_results(self):
        a = run_workload(SMALL, "tma")
        b = run_workload(SMALL, "tma")
        assert a.final_results == b.final_results


class TestCompare:
    def test_agreement_enforced(self):
        results = compare_algorithms(SMALL, ("brute", "tsl", "tma", "sma"))
        assert set(results) == {"brute", "tsl", "tma", "sma"}
        reference = results["brute"].final_results
        for name in ("tsl", "tma", "sma"):
            assert results[name].final_results == reference

    def test_check_can_be_disabled(self):
        results = compare_algorithms(
            SMALL, ("tma",), check_results=False
        )
        assert "tma" in results


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["x", "value"], [[1, "aaa"], [22, "b"]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("x")
        assert "---" not in lines[0]

    def test_print_series(self, capsys):
        print_series(
            "Figure X",
            "k",
            [1, 2],
            {"TMA": [0.5, 1.0], "SMA": [0.25, 0.5]},
        )
        out = capsys.readouterr().out
        assert "Figure X" in out
        assert "TMA [s]" in out
        assert "0.2500" in out

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 0.0) == float("inf")
