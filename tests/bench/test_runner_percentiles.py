"""Tests for the runner's latency-percentile reporting."""

import pytest

from repro.bench.runner import RunResult
from repro.bench.workloads import WorkloadSpec
from repro.analysis.memory import SpaceBreakdown
from repro.core.stats import OpCounters


def result_with(cycle_seconds):
    return RunResult(
        algorithm="test",
        spec=WorkloadSpec(),
        setup_seconds=0.0,
        cycle_seconds=cycle_seconds,
        counters=OpCounters(),
        space=SpaceBreakdown(),
        mean_state_size=0.0,
    )


class TestPercentiles:
    def test_empty(self):
        result = result_with([])
        assert result.percentile_cycle_seconds(0.95) == 0.0
        assert result.p95_cycle_seconds == 0.0
        assert result.max_cycle_seconds == 0.0

    def test_single_cycle(self):
        result = result_with([0.5])
        assert result.percentile_cycle_seconds(0.0) == 0.5
        assert result.percentile_cycle_seconds(1.0) == 0.5

    def test_ordering_independent(self):
        result = result_with([0.3, 0.1, 0.2])
        assert result.percentile_cycle_seconds(0.0) == 0.1
        assert result.percentile_cycle_seconds(1.0) == 0.3
        assert result.max_cycle_seconds == 0.3

    def test_p95_on_uniform_ramp(self):
        result = result_with([i / 100.0 for i in range(101)])
        assert result.p95_cycle_seconds == pytest.approx(0.95)

    def test_invalid_fraction(self):
        result = result_with([0.1])
        with pytest.raises(ValueError):
            result.percentile_cycle_seconds(1.5)

    def test_tail_exceeds_mean_under_bursts(self):
        # 9 fast cycles, one recomputation burst.
        result = result_with([0.01] * 9 + [1.0])
        assert result.p95_cycle_seconds > result.mean_cycle_seconds
