"""Tests for the benchmark workload builder."""

import pytest

from repro.bench.workloads import (
    TABLE_1,
    WorkloadSpec,
    default_cells_per_axis,
    paper_defaults,
    scaled_defaults,
)
from repro.core.scoring import (
    LinearFunction,
    ProductFunction,
    QuadraticFunction,
)


class TestGridSizing:
    def test_paper_operating_point(self):
        # N=1M, d=4 should land on the paper's 12-per-axis optimum.
        assert default_cells_per_axis(4, 1_000_000) == 12

    def test_scales_with_n(self):
        assert default_cells_per_axis(4, 20_000) < 12
        assert default_cells_per_axis(2, 20_000) > default_cells_per_axis(
            4, 20_000
        )

    def test_minimum_two(self):
        assert default_cells_per_axis(6, 100) >= 2


class TestWorkloadSpec:
    def test_with_creates_modified_copy(self):
        spec = WorkloadSpec()
        other = spec.with_(k=50)
        assert other.k == 50
        assert spec.k == 20
        assert other.dims == spec.dims

    def test_query_generation_deterministic(self):
        a = WorkloadSpec(seed=5).make_queries()
        b = WorkloadSpec(seed=5).make_queries()
        assert len(a) == len(b) == WorkloadSpec().num_queries
        for qa, qb in zip(a, b):
            assert qa.function.weights == qb.function.weights
            assert qa.k == qb.k

    def test_query_generation_varies_with_seed(self):
        a = WorkloadSpec(seed=1).make_queries()
        b = WorkloadSpec(seed=2).make_queries()
        assert a[0].function.weights != b[0].function.weights

    def test_function_families(self):
        assert isinstance(
            WorkloadSpec(function_family="linear").make_functions()[0],
            LinearFunction,
        )
        assert isinstance(
            WorkloadSpec(function_family="product").make_functions()[0],
            ProductFunction,
        )
        assert isinstance(
            WorkloadSpec(function_family="quadratic").make_functions()[0],
            QuadraticFunction,
        )

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            WorkloadSpec(function_family="cubic").make_functions()

    def test_explicit_grid_granularity_wins(self):
        spec = WorkloadSpec(cells_per_axis=9)
        assert spec.grid_cells_per_axis() == 9


class TestDefaults:
    def test_scaled_defaults_ratios(self):
        spec = scaled_defaults()
        assert spec.rate == spec.n // 100  # the paper's r = N/100
        assert spec.dims == 4
        assert spec.k == 20

    def test_paper_defaults_match_table1(self):
        spec = paper_defaults()
        assert spec.n == 1_000_000
        assert spec.rate == 10_000
        assert spec.num_queries == 1_000
        assert spec.cells_per_axis == 12

    def test_overrides(self):
        assert scaled_defaults(k=50).k == 50
        assert paper_defaults(dims=2).dims == 2

    def test_table1_documented(self):
        assert "Result cardinality (k)" in TABLE_1
        assert TABLE_1["Result cardinality (k)"]["range"] == [
            1,
            5,
            10,
            20,
            50,
            100,
        ]
