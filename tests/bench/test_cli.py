"""Tests for the ``python -m repro.bench`` command-line runner."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.n == 20_000
        assert args.rate is None
        assert args.algorithms == "tsl,tma,sma"

    def test_selfcheck_defaults(self):
        args = build_parser().parse_args(["selfcheck"])
        assert args.command == "selfcheck"
        assert args.seeds == 3

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_distribution(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--distribution", "zipf"])


class TestRunCommand:
    def test_small_run(self, capsys):
        code = main(
            [
                "run",
                "--n",
                "400",
                "--rate",
                "20",
                "--queries",
                "4",
                "--k",
                "3",
                "--dims",
                "2",
                "--cycles",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: N=400" in out
        assert "TSL" in out and "TMA" in out and "SMA" in out
        assert "identical top-k sets" in out

    def test_algorithm_subset(self, capsys):
        code = main(
            [
                "run",
                "--n",
                "300",
                "--rate",
                "15",
                "--queries",
                "3",
                "--cycles",
                "2",
                "--dims",
                "2",
                "--algorithms",
                "sma",
                "--no-check",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SMA" in out
        assert "TSL" not in out
        assert "identical" not in out

    def test_unknown_algorithm(self, capsys):
        code = main(["run", "--algorithms", "magic"])
        assert code == 2
        assert "unknown algorithms" in capsys.readouterr().err


class TestSelfcheck:
    def test_passes(self, capsys):
        code = main(["selfcheck", "--seeds", "1", "--cycles", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "selfcheck OK" in out


class TestShardsArgument:
    def test_integer_spelling(self):
        from repro.bench.cli import parse_shards_argument

        assert parse_shards_argument("1") == (1, None, None)
        assert parse_shards_argument("4") == (4, None, None)

    def test_tcp_spelling_requests_loopback_hosts(self):
        from repro.bench.cli import parse_shards_argument

        assert parse_shards_argument("tcp:2") == (2, 2, None)

    def test_address_list_spelling(self):
        from repro.bench.cli import parse_shards_argument

        count, loopback, addresses = parse_shards_argument(
            "10.0.0.7:7071, 10.0.0.8:7071"
        )
        assert count == 2
        assert loopback is None
        assert addresses == ("10.0.0.7:7071", "10.0.0.8:7071")

    def test_bad_spellings_rejected(self):
        from repro.bench.cli import parse_shards_argument

        for bad in ("0", "tcp:0", "-2", "host:", ":7071", "nonsense"):
            with pytest.raises(ValueError):
                parse_shards_argument(bad)

    def test_cli_rejects_bad_shards(self, capsys):
        code = main(["run", "--shards", "tcp:0"])
        assert code == 2
        assert "bad --shards" in capsys.readouterr().err

    def test_pipe_sharded_run_reports_wire_bytes(self, capsys):
        code = main(
            [
                "run",
                "--n",
                "300",
                "--rate",
                "15",
                "--queries",
                "4",
                "--cycles",
                "2",
                "--dims",
                "2",
                "--algorithms",
                "tma",
                "--shards",
                "2",
                "--no-check",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wire B/cyc" in out
