"""Unit and property tests for SortedKeyList."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.sorted_list import SortedKeyList, insort_unique


class TestBasics:
    def test_empty(self):
        sl = SortedKeyList()
        assert len(sl) == 0
        assert not sl
        assert list(sl) == []

    def test_construction_sorts(self):
        sl = SortedKeyList([3, 1, 2])
        assert list(sl) == [1, 2, 3]

    def test_add_returns_index(self):
        sl = SortedKeyList()
        assert sl.add(5) == 0
        assert sl.add(1) == 0
        assert sl.add(3) == 1
        assert list(sl) == [1, 3, 5]

    def test_key_function(self):
        sl = SortedKeyList(key=lambda pair: pair[0])
        sl.add((2, "b"))
        sl.add((1, "a"))
        sl.add((3, "c"))
        assert [item[1] for item in sl] == ["a", "b", "c"]

    def test_remove_by_equality_within_equal_keys(self):
        sl = SortedKeyList(key=lambda pair: pair[0])
        sl.add((1, "x"))
        sl.add((1, "y"))
        sl.add((1, "z"))
        sl.remove((1, "y"))
        assert [item[1] for item in sl] == ["x", "z"]

    def test_remove_missing_raises(self):
        sl = SortedKeyList([1, 2])
        with pytest.raises(ValueError):
            sl.remove(9)

    def test_discard(self):
        sl = SortedKeyList([1, 2])
        assert sl.discard(1) is True
        assert sl.discard(1) is False
        assert list(sl) == [2]

    def test_contains(self):
        sl = SortedKeyList([1, 2, 3])
        assert 2 in sl
        assert 9 not in sl

    def test_pop(self):
        sl = SortedKeyList([1, 2, 3])
        assert sl.pop() == 3
        assert sl.pop(0) == 1
        assert list(sl) == [2]

    def test_indexing_and_reversed(self):
        sl = SortedKeyList([4, 2, 8])
        assert sl[0] == 2
        assert sl[-1] == 8
        assert list(reversed(sl)) == [8, 4, 2]

    def test_count_key_helpers(self):
        sl = SortedKeyList([1, 2, 2, 3, 5])
        assert sl.count_key_greater(2) == 2
        assert sl.count_key_less(2) == 1
        assert sl.index_of_key(2) == 1

    def test_clear(self):
        sl = SortedKeyList([1, 2])
        sl.clear()
        assert len(sl) == 0

    def test_insort_unique_helper(self):
        values = [(1, "a"), (3, "c")]
        insort_unique(values, (2, "b"))
        assert values == [(1, "a"), (2, "b"), (3, "c")]


class TestProperties:
    @given(st.lists(st.integers(-50, 50), max_size=200))
    def test_always_sorted(self, values):
        sl = SortedKeyList()
        for value in values:
            sl.add(value)
        assert list(sl) == sorted(values)

    @given(
        st.lists(st.tuples(st.booleans(), st.integers(-10, 10)), max_size=200)
    )
    def test_mixed_ops_match_oracle(self, ops):
        sl = SortedKeyList()
        mirror = []
        for is_add, value in ops:
            if is_add or value not in mirror:
                sl.add(value)
                mirror.append(value)
            else:
                sl.remove(value)
                mirror.remove(value)
        assert list(sl) == sorted(mirror)
