"""Unit and property tests for the intrusive FIFO list."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.fifo import FifoList


class TestBasics:
    def test_empty(self):
        fifo = FifoList()
        assert len(fifo) == 0
        assert not fifo
        assert list(fifo) == []

    def test_popleft_empty_raises(self):
        with pytest.raises(IndexError):
            FifoList().popleft()

    def test_peek_empty_raises(self):
        fifo = FifoList()
        with pytest.raises(IndexError):
            fifo.peekleft()
        with pytest.raises(IndexError):
            fifo.peekright()

    def test_fifo_order(self):
        fifo = FifoList()
        for value in "abc":
            fifo.append(value)
        assert list(fifo) == ["a", "b", "c"]
        assert fifo.popleft() == "a"
        assert fifo.popleft() == "b"
        assert fifo.popleft() == "c"

    def test_peeks(self):
        fifo = FifoList()
        fifo.append(1)
        fifo.append(2)
        assert fifo.peekleft() == 1
        assert fifo.peekright() == 2
        assert len(fifo) == 2  # peeks do not consume

    def test_remove_middle_by_handle(self):
        fifo = FifoList()
        fifo.append("a")
        node_b = fifo.append("b")
        fifo.append("c")
        assert fifo.remove(node_b) == "b"
        assert list(fifo) == ["a", "c"]

    def test_remove_head_and_tail_by_handle(self):
        fifo = FifoList()
        node_a = fifo.append("a")
        fifo.append("b")
        node_c = fifo.append("c")
        fifo.remove(node_a)
        fifo.remove(node_c)
        assert list(fifo) == ["b"]

    def test_double_remove_raises(self):
        fifo = FifoList()
        node = fifo.append(1)
        fifo.remove(node)
        with pytest.raises(ValueError):
            fifo.remove(node)

    def test_remove_foreign_node_raises(self):
        fifo_a = FifoList()
        fifo_b = FifoList()
        node = fifo_a.append(1)
        with pytest.raises(ValueError):
            fifo_b.remove(node)

    def test_singleton_lifecycle(self):
        fifo = FifoList()
        node = fifo.append("only")
        assert fifo.remove(node) == "only"
        assert len(fifo) == 0
        fifo.append("again")
        assert fifo.popleft() == "again"


class TestProperties:
    @given(st.lists(st.integers(0, 2), max_size=300))
    def test_matches_deque_oracle(self, choices):
        from collections import deque

        fifo = FifoList()
        handles = []
        oracle = deque()
        counter = 0
        for choice in choices:
            if choice == 0 or not oracle:
                counter += 1
                handles.append(fifo.append(counter))
                oracle.append(counter)
            elif choice == 1:
                assert fifo.popleft() == oracle.popleft()
                handles.pop(0)
            else:
                node = handles.pop()
                value = fifo.remove(node)
                assert value == oracle.pop()
        assert list(fifo) == list(oracle)
