"""Unit and property tests for the binary max-heap."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.heap import BinaryMaxHeap


class TestBasics:
    def test_empty_heap(self):
        heap = BinaryMaxHeap()
        assert len(heap) == 0
        assert not heap

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BinaryMaxHeap().pop()

    def test_peek_empty_raises(self):
        heap = BinaryMaxHeap()
        with pytest.raises(IndexError):
            heap.peek_key()
        with pytest.raises(IndexError):
            heap.peek_item()

    def test_single_element(self):
        heap = BinaryMaxHeap()
        heap.push(5.0, "a")
        assert heap.peek_key() == 5.0
        assert heap.peek_item() == "a"
        assert heap.pop() == (5.0, "a")
        assert not heap

    def test_max_order(self):
        heap = BinaryMaxHeap()
        for key in [3, 1, 4, 1, 5, 9, 2, 6]:
            heap.push(key, f"item{key}")
        keys = [heap.pop()[0] for _ in range(len([3, 1, 4, 1, 5, 9, 2, 6]))]
        assert keys == sorted([3, 1, 4, 1, 5, 9, 2, 6], reverse=True)

    def test_ties_pop_fifo(self):
        heap = BinaryMaxHeap()
        heap.push(1.0, "first")
        heap.push(1.0, "second")
        heap.push(1.0, "third")
        assert [heap.pop()[1] for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    def test_items_are_not_compared(self):
        heap = BinaryMaxHeap()
        heap.push(1.0, object())
        heap.push(1.0, object())  # would raise if items were compared
        heap.pop()
        heap.pop()

    def test_drain(self):
        heap = BinaryMaxHeap()
        for key in range(5):
            heap.push(key, key * 10)
        drained = heap.drain()
        assert sorted(drained) == [0, 10, 20, 30, 40]
        assert len(heap) == 0

    def test_items_iterates_without_consuming(self):
        heap = BinaryMaxHeap()
        heap.push(2, "a")
        heap.push(1, "b")
        assert sorted(heap.items()) == ["a", "b"]
        assert len(heap) == 2

    def test_interleaved_push_pop(self):
        heap = BinaryMaxHeap()
        heap.push(1, "a")
        heap.push(3, "c")
        assert heap.pop() == (3, "c")
        heap.push(2, "b")
        assert heap.pop() == (2, "b")
        assert heap.pop() == (1, "a")


class TestProperties:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000)))
    def test_pop_order_matches_sorted(self, keys):
        heap = BinaryMaxHeap()
        for key in keys:
            heap.push(key, None)
        popped = [heap.pop()[0] for _ in range(len(keys))]
        assert popped == sorted(keys, reverse=True)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.floats(allow_nan=False, allow_infinity=False)),
            max_size=200,
        )
    )
    def test_against_reference_under_mixed_ops(self, ops):
        heap = BinaryMaxHeap()
        reference = []
        for is_push, key in ops:
            if is_push or not reference:
                heap.push(key, key)
                reference.append(key)
            else:
                got_key, _ = heap.pop()
                reference.sort()
                assert got_key == reference.pop()
        assert len(heap) == len(reference)

    def test_random_soak(self):
        rng = random.Random(7)
        heap = BinaryMaxHeap()
        mirror = []
        for _ in range(2000):
            if mirror and rng.random() < 0.4:
                key, _ = heap.pop()
                mirror.sort(reverse=True)
                assert key == mirror.pop(0)
            else:
                key = rng.randint(0, 100)
                heap.push(key, None)
                mirror.append(key)
