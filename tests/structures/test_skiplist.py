"""Unit and property tests for the indexable skip list."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.skiplist import IndexableSkipList


class TestBasics:
    def test_empty(self):
        sl = IndexableSkipList()
        assert len(sl) == 0
        assert not sl
        assert list(sl) == []

    def test_construction_sorts(self):
        sl = IndexableSkipList([3, 1, 2])
        assert list(sl) == [1, 2, 3]

    def test_add_returns_index(self):
        sl = IndexableSkipList()
        assert sl.add(5) == 0
        assert sl.add(1) == 0
        assert sl.add(3) == 1
        assert sl.add(9) == 3
        assert list(sl) == [1, 3, 5, 9]

    def test_duplicates_insert_after_equals(self):
        sl = IndexableSkipList(key=lambda pair: pair[0])
        sl.add((1, "a"))
        assert sl.add((1, "b")) == 1
        assert [item[1] for item in sl] == ["a", "b"]

    def test_getitem(self):
        sl = IndexableSkipList([4, 2, 8, 6])
        assert sl[0] == 2
        assert sl[2] == 6
        assert sl[-1] == 8
        with pytest.raises(IndexError):
            sl[4]
        with pytest.raises(IndexError):
            sl[-5]

    def test_remove_by_value(self):
        sl = IndexableSkipList([1, 2, 3])
        assert sl.remove(2) == 1
        assert list(sl) == [1, 3]
        with pytest.raises(ValueError):
            sl.remove(9)

    def test_remove_within_equal_keys(self):
        sl = IndexableSkipList(key=lambda pair: pair[0])
        sl.add((1, "x"))
        sl.add((1, "y"))
        sl.add((1, "z"))
        sl.remove((1, "y"))
        assert [item[1] for item in sl] == ["x", "z"]

    def test_discard(self):
        sl = IndexableSkipList([1])
        assert sl.discard(1) is True
        assert sl.discard(1) is False

    def test_count_key_helpers(self):
        sl = IndexableSkipList([1, 2, 2, 3, 5])
        assert sl.count_key_less(2) == 1
        assert sl.count_key_greater(2) == 2
        assert sl.count_key_less(0) == 0
        assert sl.count_key_greater(9) == 0

    def test_bulk_add(self):
        sl = IndexableSkipList([5])
        sl.bulk_add([2, 9, 1])
        assert list(sl) == [1, 2, 5, 9]

    def test_key_function(self):
        sl = IndexableSkipList(key=lambda pair: pair[0])
        for pair in [(3, "c"), (1, "a"), (2, "b")]:
            sl.add(pair)
        assert [item[1] for item in sl] == ["a", "b", "c"]
        assert sl[1] == (2, "b")


class TestProperties:
    @given(st.lists(st.integers(-40, 40), max_size=200))
    def test_iteration_always_sorted(self, values):
        sl = IndexableSkipList()
        for value in values:
            sl.add(value)
        assert list(sl) == sorted(values)

    @given(st.lists(st.integers(-40, 40), min_size=1, max_size=150))
    def test_positional_access_matches_sorted(self, values):
        sl = IndexableSkipList()
        for value in values:
            sl.add(value)
        expected = sorted(values)
        for index in range(len(expected)):
            assert sl[index] == expected[index]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.tuples(st.booleans(), st.integers(-15, 15)), max_size=200)
    )
    def test_mixed_ops_match_oracle(self, ops):
        sl = IndexableSkipList()
        mirror = []
        for is_add, value in ops:
            if is_add or value not in mirror:
                sl.add(value)
                mirror.append(value)
            else:
                sl.remove(value)
                mirror.remove(value)
            assert len(sl) == len(mirror)
        assert list(sl) == sorted(mirror)

    def test_large_soak_with_positional_checks(self):
        rng = random.Random(31)
        sl = IndexableSkipList()
        mirror = []
        for step in range(3000):
            if mirror and rng.random() < 0.4:
                victim = rng.choice(mirror)
                sl.remove(victim)
                mirror.remove(victim)
            else:
                value = rng.randint(0, 400)
                sl.add(value)
                mirror.append(value)
            if step % 250 == 0 and mirror:
                mirror.sort()
                probe = rng.randrange(len(mirror))
                assert sl[probe] == mirror[probe]
                assert sl.count_key_less(200) == sum(
                    1 for v in mirror if v < 200
                )
        assert list(sl) == sorted(mirror)
