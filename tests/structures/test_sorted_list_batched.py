"""Batched sorted-list operations: add_many/remove_many on SortedKeyList
and the columnar AttributeSortedList used by TSL's attribute lists."""

import random

import pytest

from repro.core import batch
from repro.structures.sorted_list import AttributeSortedList, SortedKeyList


def reference_merge(existing, incoming, key):
    result = list(existing)
    for item in sorted(incoming, key=key):
        result.append(item)
    result.sort(key=key)
    return result


class TestSortedKeyListBatched:
    @pytest.mark.parametrize("seed", range(5))
    def test_add_many_matches_sequential_add(self, seed):
        rng = random.Random(seed)
        key = lambda pair: pair[0]  # noqa: E731
        base = [(rng.randrange(20), index) for index in range(30)]
        incoming = [
            (rng.randrange(20), 100 + index) for index in range(15)
        ]
        batched = SortedKeyList(base, key=key)
        sequential = SortedKeyList(base, key=key)
        batched.add_many(incoming)
        for item in sorted(incoming, key=key):
            sequential.add(item)
        assert list(batched) == list(sequential)

    @pytest.mark.parametrize("seed", range(5))
    def test_remove_many_matches_sequential_remove(self, seed):
        rng = random.Random(seed + 50)
        key = lambda pair: pair  # noqa: E731
        items = [(rng.randrange(20), index) for index in range(40)]
        victims = rng.sample(items, 12)
        batched = SortedKeyList(items, key=key)
        sequential = SortedKeyList(items, key=key)
        batched.remove_many(victims)
        for item in victims:
            sequential.remove(item)
        assert list(batched) == list(sequential)

    def test_remove_many_missing_item_raises(self):
        sorted_list = SortedKeyList(list(range(10)))
        with pytest.raises(ValueError):
            sorted_list.remove_many([1, 2, 99, 3, 4, 5])

    def test_add_many_equal_keys_with_non_comparable_items(self):
        # Equal keys must never fall through to comparing the items
        # themselves, and batch members with equal keys keep their
        # insertion order (stable sort), matching sequential add().
        class Opaque:
            def __init__(self, key):
                self.key = key

        items = [Opaque(1) for _ in range(6)]
        sorted_list = SortedKeyList(key=lambda item: item.key)
        sorted_list.add_many(items)
        assert list(sorted_list) == items

    def test_small_batches_take_scalar_path(self):
        sorted_list = SortedKeyList([5, 1, 3])
        sorted_list.add_many([2, 4])
        assert list(sorted_list) == [1, 2, 3, 4, 5]
        sorted_list.remove_many([1, 5])
        assert list(sorted_list) == [2, 3, 4]


@pytest.mark.skipif(
    batch.np is None, reason="AttributeSortedList requires the NumPy backend"
)
class TestAttributeSortedList:
    class Item:
        __slots__ = ("value", "tag")

        def __init__(self, value, tag):
            self.value = value
            self.tag = tag

        def __repr__(self):
            return f"Item({self.value}, {self.tag})"

    def make(self, pairs):
        return [self.Item(value, tag) for tag, value in enumerate(pairs)]

    def test_add_and_order(self):
        items = self.make([0.5, 0.1, 0.9, 0.1])
        sorted_list = AttributeSortedList(key=lambda item: item.value)
        for item in items:
            sorted_list.add(item)
        assert [item.value for item in sorted_list] == [0.1, 0.1, 0.5, 0.9]
        assert len(sorted_list) == 4
        assert sorted_list[0].value == 0.1

    @pytest.mark.parametrize("seed", range(4))
    def test_add_many_matches_sequential(self, seed):
        rng = random.Random(seed)
        base = self.make([rng.random() for _ in range(25)])
        incoming = self.make([rng.choice([0.25, rng.random()]) for _ in range(12)])
        batched = AttributeSortedList(base, key=lambda item: item.value)
        sequential = AttributeSortedList(base, key=lambda item: item.value)
        batched.add_many(incoming)
        for item in sorted(incoming, key=lambda item: item.value):
            sequential.add(item)
        assert [item.value for item in batched] == [
            item.value for item in sequential
        ]

    @pytest.mark.parametrize("seed", range(4))
    def test_remove_many_with_duplicate_keys(self, seed):
        rng = random.Random(seed + 10)
        # Many duplicate keys: the identity scan must claim each
        # position once and remove exactly the requested elements.
        items = self.make([rng.choice([0.1, 0.2, 0.3]) for _ in range(30)])
        victims = rng.sample(items, 10)
        sorted_list = AttributeSortedList(items, key=lambda item: item.value)
        sorted_list.remove_many(victims)
        survivors = set(items) - set(victims)
        assert set(sorted_list) == survivors
        assert [item.value for item in sorted_list] == sorted(
            item.value for item in survivors
        )

    def test_remove_missing_raises(self):
        items = self.make([0.1, 0.2])
        sorted_list = AttributeSortedList(items, key=lambda item: item.value)
        with pytest.raises(ValueError):
            sorted_list.remove(self.Item(0.1, "ghost"))

    def test_bulk_add_sorts_stably(self):
        items = self.make([0.9, 0.1])
        sorted_list = AttributeSortedList(key=lambda item: item.value)
        sorted_list.bulk_add(items)
        more = self.make([0.1, 0.5])
        sorted_list.bulk_add(more)
        assert [item.value for item in sorted_list] == [0.1, 0.1, 0.5, 0.9]
        # Stable: the earlier 0.1 stays before the later one.
        assert sorted_list[0] is items[1]
        assert sorted_list[1] is more[0]

    def test_contains_and_discard(self):
        items = self.make([0.3, 0.7])
        sorted_list = AttributeSortedList(items, key=lambda item: item.value)
        assert items[0] in sorted_list
        assert sorted_list.discard(items[0]) is True
        assert items[0] not in sorted_list
        assert sorted_list.discard(items[0]) is False
