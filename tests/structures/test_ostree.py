"""Unit and property tests for the order-statistic treap."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.ostree import OrderStatisticTree


class TestBasics:
    def test_empty(self):
        tree = OrderStatisticTree()
        assert len(tree) == 0
        assert 5 not in tree
        assert tree.count_greater(0) == 0
        assert tree.count_less(0) == 0

    def test_insert_and_contains(self):
        tree = OrderStatisticTree()
        tree.insert(3)
        tree.insert(1)
        tree.insert(2)
        assert len(tree) == 3
        assert 1 in tree and 2 in tree and 3 in tree
        assert 4 not in tree

    def test_duplicates_counted_with_multiplicity(self):
        tree = OrderStatisticTree()
        for value in (5, 5, 5, 2):
            tree.insert(value)
        assert len(tree) == 4
        assert tree.count_greater(2) == 3
        assert tree.count_less(5) == 1
        assert tree.count_greater_equal(5) == 3

    def test_remove(self):
        tree = OrderStatisticTree()
        for value in (4, 2, 6, 2):
            tree.insert(value)
        tree.remove(2)
        assert len(tree) == 3
        assert 2 in tree  # one copy remains
        tree.remove(2)
        assert 2 not in tree

    def test_remove_missing_raises(self):
        tree = OrderStatisticTree()
        tree.insert(1)
        with pytest.raises(KeyError):
            tree.remove(99)

    def test_kth(self):
        tree = OrderStatisticTree()
        for value in (5, 1, 9, 5):
            tree.insert(value)
        assert [tree.kth(i) for i in range(4)] == [1, 5, 5, 9]

    def test_kth_out_of_range(self):
        tree = OrderStatisticTree()
        tree.insert(1)
        with pytest.raises(IndexError):
            tree.kth(1)
        with pytest.raises(IndexError):
            tree.kth(-1)

    def test_iteration_sorted(self):
        tree = OrderStatisticTree()
        values = [9, 1, 5, 5, 3]
        for value in values:
            tree.insert(value)
        assert list(tree) == sorted(values)

    def test_dominance_counter_usage(self):
        # SMA's pattern: process in descending score order, DC = number
        # of already-inserted arrival ids greater than the current one.
        arrival_by_score_desc = [7, 3, 9, 1]  # arbitrary arrival ids
        tree = OrderStatisticTree()
        dcs = []
        for arrival in arrival_by_score_desc:
            dcs.append(tree.count_greater(arrival))
            tree.insert(arrival)
        assert dcs == [0, 1, 0, 3]


class TestProperties:
    @given(st.lists(st.integers(-100, 100), max_size=300))
    def test_counts_match_sorted_oracle(self, values):
        tree = OrderStatisticTree()
        for value in values:
            tree.insert(value)
        for probe in (-101, -50, 0, 50, 101):
            assert tree.count_greater(probe) == sum(
                1 for v in values if v > probe
            )
            assert tree.count_less(probe) == sum(
                1 for v in values if v < probe
            )
        assert list(tree) == sorted(values)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(-20, 20)), max_size=300
        )
    )
    def test_mixed_insert_remove_matches_oracle(self, ops):
        tree = OrderStatisticTree()
        mirror = []
        for is_insert, value in ops:
            if is_insert or value not in mirror:
                tree.insert(value)
                mirror.append(value)
            else:
                tree.remove(value)
                mirror.remove(value)
            assert len(tree) == len(mirror)
        assert list(tree) == sorted(mirror)
        for index in range(len(mirror)):
            assert tree.kth(index) == sorted(mirror)[index]

    def test_large_random_soak(self):
        rng = random.Random(99)
        tree = OrderStatisticTree()
        mirror = []
        for _ in range(3000):
            value = rng.randint(0, 500)
            if mirror and rng.random() < 0.35:
                victim = rng.choice(mirror)
                tree.remove(victim)
                mirror.remove(victim)
            else:
                tree.insert(value)
                mirror.append(value)
        mirror.sort()
        assert list(tree) == mirror
        assert len(tree) == len(mirror)
