"""DET104 fixture: transport-codec float formatting.

The file name ends in ``codec.py`` so the widened wire scope (added
with the transport layer) treats it as wire code, exactly like the
``protocol.py`` suffix; only functions matching
encode/decode/to_wire/from_wire/_op_ are in scope.
"""

import json


def _records_to_wire(rows):
    return [round(value, 6) for value in rows]  # expect: DET104


def encode_cycle_request(arrivals):
    return json.dumps({"op": "cycle", "ins": arrivals}).encode()  # expect: DET104


def frame_to_wire(value):
    return f"wire={value:.3f}"  # expect: DET104


def encode_request_ok(message):
    body = json.dumps(message, separators=(",", ":"), allow_nan=False)
    return body.encode("utf-8")


def describe_channel(value):
    # Not a wire function: log/debug formatting stays out of scope.
    return f"{value:.3f}"


def decode_reply(payload):
    return round(payload["total"], 6)  # repro: ignore[DET104]
