"""PROC303 fixture: spawn-unsafe process targets."""

import multiprocessing  # noqa: F401


def worker_entry():
    return 1


def spawn_lambda(ctx):
    return ctx.Process(target=lambda: None)  # expect: PROC303


def spawn_nested(ctx):
    def run():
        return 1

    return ctx.Process(target=run)  # expect: PROC303


def spawn_bound_lambda(ctx):
    run = lambda: 1  # noqa: E731
    return ctx.Process(target=run)  # expect: PROC303


def spawn_module_level(ctx):
    return ctx.Process(target=worker_entry)


def spawn_quiet(ctx):
    return ctx.Process(target=lambda: None)  # repro: ignore[PROC303]
