"""OBS401 fixture: per-record clock reads in a hot loop."""

import time

from repro.core.batch import score_batch  # noqa: F401  (marks hot module)


def process(records, tracer):
    timings = []
    for record in records:
        started = time.perf_counter()  # expect: OBS401
        record.work()
        timings.append(time.perf_counter() - started)  # expect: OBS401
    return timings


def process_gated(records, tracer):
    timings = []
    for record in records:
        if tracer.enabled:
            started = time.perf_counter()
            record.work()
            timings.append(time.perf_counter() - started)
        else:
            record.work()
    return timings


def process_cycle_granularity(records):
    started = time.perf_counter()
    for record in records:
        record.work()
    return time.perf_counter() - started


def drain(queue, budget_seconds):
    deadline = time.monotonic() + budget_seconds
    while time.monotonic() < deadline:
        item = queue.poll(remaining=deadline - time.monotonic())
        if item is None:
            break


def sample_ns(records):
    for record in records:
        record.stamp = time.monotonic_ns()  # repro: ignore[OBS401] -- arrival stamps are the payload here, not instrumentation
    return records
