"""LOCK202 fixture: blocking calls inside critical sections."""

import threading
import time


class Sender:
    def __init__(self, sock, out_queue):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self._sock = sock
        self._out_queue = out_queue

    def flush(self, line):
        with self._lock:
            self._sock.sendall(line)  # expect: LOCK202

    def flush_outside(self, line):
        self._sock.sendall(line)

    def nap(self):
        with self._lock:
            time.sleep(0.1)  # expect: LOCK202

    def pump(self, item):
        with self._lock:
            self._out_queue.put(item)  # expect: LOCK202

    def pump_nonblocking(self, item):
        with self._lock:
            self._out_queue.put(item, block=False)

    def wait_own_condition(self):
        with self._cond:
            self._cond.wait(timeout=1.0)

    def wait_foreign_condition(self):
        with self._lock:
            self._cond.wait(timeout=1.0)  # expect: LOCK202

    def flush_allowed(self, line):
        with self._lock:
            self._sock.sendall(line)  # repro: ignore[LOCK202]
