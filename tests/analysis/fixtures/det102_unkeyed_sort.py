"""DET102 fixture: unkeyed sorts of float-tie-prone data."""


def rank(entries, candidates, results):
    worst = sorted(entries)  # expect: DET102
    best = sorted(entries, key=lambda e: (-e[0], e[1]))
    candidates.sort()  # expect: DET102
    candidates.sort(key=lambda c: (c.score, c.rid))
    by_value = sorted(results.values())  # expect: DET102
    plain = sorted([3, 1, 2])
    names = sorted(["b", "a"])
    scores = sorted(entries)  # repro: ignore[DET102]
    return worst, best, by_value, plain, names, scores


def rank_ids(table):
    # dict *keys* are record ids (ints) — exact, tie-free, not flagged.
    return sorted(table)
