"""DET104 fixture: wire-path float formatting.

The file name ends in ``protocol.py`` so the rule treats it as wire
code; only functions matching encode/decode/to_wire/from_wire/_op_
are in scope.
"""

import json


def entry_to_wire(entry):
    return {"rid": entry.rid, "score": round(entry.score, 6)}  # expect: DET104


def encode_line(message):
    return (json.dumps(message) + "\n").encode("utf-8")  # expect: DET104


def encode_label(value):
    return f"score={value:.3f}"  # expect: DET104


def encode_percent(value):
    return "score=%.6f" % value  # expect: DET104


def encode_line_ok(message):
    payload = json.dumps(message, separators=(",", ":"), allow_nan=False)
    return (payload + "\n").encode("utf-8")


def describe(value):
    # Not a wire function: human-facing formatting is fine here.
    return f"{value:.3f}"


def decode_rounded(payload):
    return round(payload["score"], 6)  # repro: ignore[DET104]
