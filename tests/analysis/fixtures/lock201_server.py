"""LOCK201 fixture: engine access reachable from server ops.

Mirrors the MonitorServer structure: an RLock, a monitor facade, an
executor wrapper (``_locked``) and a forwarding wrapper (``_engine``).
"""

import threading


class FakeServer:
    def __init__(self, monitor):
        self.monitor = monitor
        self._lock = threading.RLock()

    def _locked(self, fn, *args):
        with self._lock:
            return fn(*args)

    def _engine(self, fn, *args):
        return self._locked(fn, *args)

    def _op_result(self, message):
        # Funcref handed to the wrapper: runs under the lock.
        return self._engine(self.monitor.result, message["qid"])

    def _op_process(self, rows):
        return self.monitor.process(rows)  # expect: LOCK201

    def _op_stats(self, message):
        return len(self.monitor.cycle_seconds)  # expect: LOCK201

    def _op_helper(self, rows):
        return self._mutate(rows)

    def _mutate(self, rows):
        # Reachable from _op_helper without the lock.
        return self.monitor.process(rows)  # expect: LOCK201

    def _op_locked_inline(self, rows):
        with self._lock:
            return self.monitor.process(rows)

    def _op_forwarded(self, rows):
        return self._engine(self._apply, rows)

    def _apply(self, rows):
        # Only ever invoked via the wrapper funcref: locked context.
        return self.monitor.process(rows)

    def _op_config(self, message):
        # Immutable configuration reads need no lock.
        return self.monitor.dims

    def _op_suppressed(self, rows):
        return self.monitor.process(rows)  # repro: ignore[LOCK201]
