"""PROC302 fixture: shared-memory create/attach lifecycle."""

from multiprocessing import shared_memory


def leak_created(size):
    shm = shared_memory.SharedMemory(create=True, size=size)  # expect: PROC302
    return shm.name


def create_then_release(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        return bytes(shm.buf)
    finally:
        shm.close()
        shm.unlink()


def create_and_hand_off(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    return shm  # ownership transfers to the caller


def attach_leaky(name):
    shm = shared_memory.SharedMemory(name=name)  # expect: PROC302
    return bytes(shm.buf)


def attach_then_close(name):
    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf)
    finally:
        shm.close()


def attach_quiet(name):
    shm = shared_memory.SharedMemory(name=name)  # repro: ignore[PROC302]
    return bytes(shm.buf)
