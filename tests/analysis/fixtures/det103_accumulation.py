"""DET103 fixture: accumulation-order hazards in dual-backend code.

The module references REPRO_BATCH_BACKEND, which marks it as
dual-backend code subject to the bit-exactness contract.
"""

import math
import os

BACKEND = os.environ.get("REPRO_BATCH_BACKEND", "auto")


def total(vector, matrix, np):
    bad = np.sum(vector)  # expect: DET103
    folded = vector.sum()  # expect: DET103
    product = matrix @ vector  # expect: DET103
    fused = math.fsum(vector)  # expect: DET103
    good = 0.0
    for value in vector:
        good += value
    builtin_ok = sum(range(10))
    quiet = np.sum(vector)  # repro: ignore[DET103]
    return bad, folded, product, fused, good, builtin_ok, quiet
