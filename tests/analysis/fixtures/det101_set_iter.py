"""DET101 fixture: set iteration feeding ordered output."""


def build(values, table):
    seen = {value for value in values}
    out = []
    for item in seen:  # expect: DET101
        out.append(item)
    ordered = []
    for item in sorted(seen):
        ordered.append(item)
    listed = [x * 2 for x in {1, 2, 3}]  # expect: DET101
    resorted = sorted(x for x in seen)
    membership = {x for x in {1, 2, 3}}
    for key in table.keys():  # expect: DET101
        out.append(table[key])
    for item in seen:  # repro: ignore[DET101] -- sink is order-free
        out.append(item)
    for item in seen:
        del table[item]
    return out, ordered, listed, resorted, membership
