"""PROC301 fixture: unpicklable objects in worker-pipe payloads."""

import multiprocessing  # noqa: F401  (marks this as process-boundary code)


def module_level_transform(record):
    return record.rid


def ship(conn, records):
    conn.send(("rows", records))
    conn.send(("fn", module_level_transform))
    conn.send(("map", lambda r: r.rid))  # expect: PROC301
    transform = lambda r: r.rid  # noqa: E731
    conn.send(("map", transform))  # expect: PROC301

    def local_hook(record):
        return record.rid

    conn.send(("hook", local_hook))  # expect: PROC301
    conn.send(("hook", local_hook))  # repro: ignore[PROC301]


def ship_channel(channel, records):
    # Shard channels are pipe-like senders: same payload rules apply.
    channel.send(("rows", records))
    channel.send(("fn", module_level_transform))
    channel.send(("map", lambda r: r.rid))  # expect: PROC301

    def local_merge(rows):
        return rows

    channel.send_bytes(local_merge)  # expect: PROC301
