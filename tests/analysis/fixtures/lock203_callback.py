"""LOCK203 fixture: user-callback dispatch while a lock is held."""

import threading


class Hub:
    def __init__(self, callback):
        self._lock = threading.Lock()
        self._callback = callback
        self._subscribers = []

    def dispatch_bad(self, change):
        with self._lock:
            self._callback(change)  # expect: LOCK203

    def dispatch_good(self, change):
        with self._lock:
            targets = list(self._subscribers)
        for target in targets:
            target.dispatch(change)

    def run_hook(self, hook):
        with self._lock:
            hook()  # expect: LOCK203

    def notify_change(self, subscriber, change):
        with self._lock:
            subscriber.on_change(change)  # expect: LOCK203

    def dispatch_quiet(self, change):
        with self._lock:
            self._callback(change)  # repro: ignore[LOCK203]
