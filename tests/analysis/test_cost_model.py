"""Tests for the Section 6 analytical cost model."""

import pytest

from repro.analysis.cost_model import CostModel, WorkloadParameters


def params(**overrides):
    base = dict(n=100_000, r=1_000, d=4, k=20, q=100, cells_per_axis=12)
    base.update(overrides)
    return WorkloadParameters(**base)


class TestParameters:
    def test_delta_and_volume(self):
        p = params(cells_per_axis=10, d=2)
        assert p.delta == pytest.approx(0.1)
        assert p.cell_volume == pytest.approx(0.01)
        assert p.points_per_cell == pytest.approx(1000.0)


class TestBuildingBlocks:
    def test_influence_cells_at_least_one(self):
        model = CostModel(params(k=1, n=10_000_000))
        assert model.influence_cells() >= 1.0

    def test_influence_cells_grow_with_k(self):
        small = CostModel(params(k=5)).influence_cells()
        large = CostModel(params(k=100)).influence_cells()
        assert large >= small

    def test_prrec_bounds(self):
        model = CostModel(params())
        assert 0.0 <= model.recomputation_probability() <= 1.0

    def test_prrec_grows_with_k_and_r(self):
        base = CostModel(params()).recomputation_probability()
        more_k = CostModel(params(k=100)).recomputation_probability()
        more_r = CostModel(params(r=10_000)).recomputation_probability()
        assert more_k > base
        assert more_r > base

    def test_prrec_saturates(self):
        model = CostModel(params(r=200_000, k=100))
        assert model.recomputation_probability() == pytest.approx(1.0)


class TestCycleCosts:
    def test_costs_grow_with_q(self):
        for method in ("tma_cycle_cost", "sma_cycle_cost"):
            small = getattr(CostModel(params(q=10)), method)()
            large = getattr(CostModel(params(q=1000)), method)()
            assert large > small

    def test_costs_grow_with_r(self):
        for method in ("tma_cycle_cost", "sma_cycle_cost"):
            small = getattr(CostModel(params(r=100)), method)()
            large = getattr(CostModel(params(r=10_000)), method)()
            assert large > small

    def test_sma_beats_tma_at_high_k(self):
        """High k inflates Pr_rec: TMA pays the recomputation tax."""
        p = params(k=100)
        assert CostModel(p).sma_cycle_cost() < CostModel(p).tma_cycle_cost()

    def test_gap_grows_with_k(self):
        """Figure 19's shape: the TMA/SMA ratio widens as k rises,
        because Pr_rec (and so the recomputation tax) grows with k.

        Note the model can never predict TMA < SMA: its Pr_rec is the
        loose upper bound 1-(1-r/N)^k, under which the recomputation
        term alone already exceeds SMA's k² maintenance. The paper
        (Section 6) notes TMA wins only when the *actual* Pr_rec is
        very small — 'as shown in the experimental evaluation,
        however, this case is rare'.
        """
        ratio_small = (
            CostModel(params(k=5)).tma_cycle_cost()
            / CostModel(params(k=5)).sma_cycle_cost()
        )
        ratio_large = (
            CostModel(params(k=100)).tma_cycle_cost()
            / CostModel(params(k=100)).sma_cycle_cost()
        )
        assert ratio_large > ratio_small >= 1.0


class TestSpace:
    def test_sma_space_exceeds_tma(self):
        p = params()
        assert CostModel(p).sma_space() > CostModel(p).tma_space()

    def test_space_grows_with_k(self):
        small = CostModel(params(k=5)).sma_space()
        large = CostModel(params(k=100)).sma_space()
        assert large > small

    def test_index_space_components(self):
        p = params()
        model = CostModel(p)
        assert model.index_space() >= p.n * (p.d + 1)
