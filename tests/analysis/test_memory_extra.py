"""Cross-checks between space accounting and the Section 6 model."""

import random

from repro.algorithms import make_algorithm
from repro.analysis.cost_model import CostModel, WorkloadParameters
from repro.analysis.memory import WORD, estimate_space
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory


def build(algorithm, n=500, dims=2, queries=4, k=5, cells=4, seed=6):
    rng = random.Random(seed)
    factory = RecordFactory()
    algo = make_algorithm(
        algorithm,
        dims,
        cells_per_axis=cells if algorithm in ("tma", "sma") else None,
    )
    records = [
        factory.make(tuple(rng.random() for _ in range(dims)))
        for _ in range(n)
    ]
    algo.process_cycle(records, [])
    for qid in range(queries):
        query = TopKQuery(
            LinearFunction([rng.uniform(0.1, 1) for _ in range(dims)]), k
        )
        query.qid = qid
        algo.register(query)
    return algo


class TestModelAgreement:
    def test_record_term_matches_model_scaling(self):
        """S grows linearly in N for the grid methods (the N·(d+1) term)."""
        small = estimate_space(build("tma", n=300)).total
        large = estimate_space(build("tma", n=900)).total
        # Tripling N roughly triples the record-dominated total.
        assert 2.0 < large / small < 4.0

    def test_sma_minus_tma_is_the_dc_term(self):
        """S_SMA − S_TMA ≈ Q·k·WORD right after registration, when the
        skybands hold exactly k entries each (Section 6's 3k vs 2k)."""
        tma = estimate_space(build("tma", seed=9))
        sma = estimate_space(build("sma", seed=9))
        delta = sma.query_state - tma.query_state
        assert delta == 4 * 5 * WORD  # Q=4 queries x k=5 x one counter word

    def test_model_space_ordering_matches_accounting(self):
        params = WorkloadParameters(
            n=500, r=5, d=2, k=5, q=4, cells_per_axis=4
        )
        model = CostModel(params)
        assert model.sma_space() > model.tma_space()
        tma = estimate_space(build("tma", seed=10)).total
        sma = estimate_space(build("sma", seed=10)).total
        assert sma >= tma

    def test_grid_space_excludes_unallocated_cells(self):
        """Lazy cells cost nothing until touched — total space must not
        scale with the *nominal* grid size."""
        coarse = estimate_space(build("tma", cells=4, seed=11)).total
        fine = estimate_space(build("tma", cells=32, seed=11)).total
        # 64x more nominal cells must not cost anywhere near 64x.
        assert fine < coarse * 3
