"""The analyzer's own acceptance gate: src/repro stays clean.

These tests pin the ISSUE 7 acceptance criteria — a clean tree at
merge, at least 8 distinct rule IDs across the three families, and the
regressions fixed in this PR staying fixed (the server stats snapshot
and the documented suppressions).
"""

from pathlib import Path

from repro.analysis.check import all_rules, known_rule_ids, run_check

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_is_clean():
    report = run_check([str(SRC)])
    assert report.findings == [], report.render_human()


def test_rule_inventory_spans_four_families():
    rules = all_rules()
    assert len(known_rule_ids()) >= 9
    families = {rule.family for rule in rules}
    assert families == {"determinism", "locks", "observability", "process"}
    for rule in rules:
        assert rule.id and rule.name and rule.description


def test_known_suppressions_are_visible():
    """The deliberate suppressions stay on the books, not invisible."""
    report = run_check([str(SRC)])
    suppressed = {(Path(f.path).name, f.rule) for f in report.suppressed}
    assert ("client.py", "LOCK202") in suppressed
    assert ("grid.py", "DET103") in suppressed


def test_server_stats_snapshot_is_locked():
    """Regression: _op_stats used to read engine state off-lock."""
    server_py = SRC / "service" / "server.py"
    report = run_check([str(server_py)], select=["LOCK201"])
    assert report.findings == [], report.render_human()
    assert report.suppressed == []


def test_parallel_tier_is_process_safe():
    report = run_check(
        [str(SRC / "parallel")],
        select=["PROC301", "PROC302", "PROC303"],
    )
    assert report.findings == [], report.render_human()
