"""Tests for the paper-style space accounting."""

import pytest

from repro.algorithms import make_algorithm
from repro.analysis.memory import WORD, estimate_space
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory


def feed(algorithm, count, dims=2, seed=1):
    import random

    rng = random.Random(seed)
    factory = RecordFactory()
    records = [
        factory.make(tuple(rng.random() for _ in range(dims)))
        for _ in range(count)
    ]
    algorithm.process_cycle(records, [])
    return records


class TestGridAccounting:
    def test_record_and_pointer_bytes(self):
        algo = make_algorithm("tma", 2, cells_per_axis=4)
        feed(algo, 100)
        space = estimate_space(algo)
        assert space.records == 100 * 4 * WORD  # (d + id + time) words
        assert space.point_lists == 100 * WORD
        assert space.sorted_lists == 0

    def test_influence_bytes_counted(self):
        algo = make_algorithm("tma", 2, cells_per_axis=4)
        feed(algo, 50)
        query = TopKQuery(LinearFunction([1.0, 1.0]), 5)
        query.qid = 0
        algo.register(query)
        space = estimate_space(algo)
        expected_entries = sum(
            len(cell.influence) for cell in algo.grid.cells()
        )
        assert space.influence_lists == expected_entries * WORD
        assert expected_entries > 0

    def test_sma_charges_dominance_counters(self):
        tma = make_algorithm("tma", 2, cells_per_axis=4)
        sma = make_algorithm("sma", 2, cells_per_axis=4)
        feed(tma, 60, seed=2)
        feed(sma, 60, seed=2)
        for algo in (tma, sma):
            query = TopKQuery(LinearFunction([1.0, 1.0]), 10)
            query.qid = 0
            algo.register(query)
        # Same k entries but 3 words/entry vs 2 (Section 6).
        assert (
            estimate_space(sma).query_state
            > estimate_space(tma).query_state
        )


class TestTslAccounting:
    def test_sorted_lists_dominate(self):
        algo = make_algorithm("tsl", 3)
        feed(algo, 80, dims=3)
        space = estimate_space(algo)
        # d lists x N entries x (value + pointer)
        assert space.sorted_lists == 3 * 80 * 2 * WORD
        assert space.records == 80 * 5 * WORD

    def test_tsl_total_exceeds_grid_total(self):
        """Figure 20's shape: TSL's d sorted lists cost extra space."""
        tsl = make_algorithm("tsl", 2)
        tma = make_algorithm("tma", 2, cells_per_axis=4)
        feed(tsl, 200, seed=3)
        feed(tma, 200, seed=3)
        for algo in (tsl, tma):
            query = TopKQuery(LinearFunction([1.0, 1.0]), 10)
            query.qid = 0
            algo.register(query)
        assert estimate_space(tsl).total > estimate_space(tma).total


class TestMisc:
    def test_brute_records_only(self):
        algo = make_algorithm("brute", 2)
        feed(algo, 10)
        space = estimate_space(algo)
        assert space.records == 10 * 4 * WORD
        assert space.total == space.records

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            estimate_space(object())  # type: ignore[arg-type]

    def test_breakdown_dict(self):
        algo = make_algorithm("brute", 2)
        data = estimate_space(algo).as_dict()
        assert set(data) == {
            "records",
            "point_lists",
            "influence_lists",
            "query_state",
            "sorted_lists",
            "sketch",
            "total",
        }

    def test_total_mb(self):
        algo = make_algorithm("brute", 2)
        feed(algo, 1000)
        space = estimate_space(algo)
        assert space.total_mb == pytest.approx(
            space.total / (1024 * 1024)
        )
