"""JSON report schema and CLI contract tests."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.check import SCHEMA, run_check

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

_FINDING_KEYS = {"rule", "file", "line", "col", "message"}


def _cli(*args, cwd=REPO_ROOT):
    env_src = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.check", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


def test_report_schema_shape():
    payload = run_check([str(SRC)]).to_json()
    assert payload["schema"] == SCHEMA
    assert payload["files_scanned"] > 0
    assert len(payload["rules"]) >= 8
    for rule in payload["rules"]:
        assert set(rule) == {"id", "name", "family", "description"}
    for finding in payload["findings"] + payload["suppressed"]:
        assert set(finding) == _FINDING_KEYS
    summary = payload["summary"]
    assert summary["clean"] is (not payload["findings"])
    assert summary["findings"] == len(payload["findings"])
    assert summary["suppressed"] == len(payload["suppressed"])
    # Round-trips as plain JSON.
    assert json.loads(json.dumps(payload)) == payload


def test_cli_json_clean_tree_exits_zero():
    result = _cli("--json", "src/repro")
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["schema"] == SCHEMA
    assert payload["summary"]["clean"] is True
    rule_ids = {rule["id"] for rule in payload["rules"]}
    assert len(rule_ids) >= 8


def test_cli_violations_exit_one(tmp_path):
    bad = tmp_path / "bad_protocol.py"
    bad.write_text("def encode(v):\n    return round(v, 3)\n")
    result = _cli(str(bad))
    assert result.returncode == 1
    assert "DET104" in result.stdout


def test_cli_output_file(tmp_path):
    out = tmp_path / "report.json"
    result = _cli("--output", str(out), "src/repro")
    assert result.returncode == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["schema"] == SCHEMA


def test_cli_usage_errors_exit_two(tmp_path):
    missing = _cli(str(tmp_path / "nope"))
    assert missing.returncode == 2
    assert "error:" in missing.stderr
    unknown = _cli("--select", "NOPE999", "src/repro")
    assert unknown.returncode == 2
    syntax = tmp_path / "broken.py"
    syntax.write_text("def (:\n")
    assert _cli(str(syntax)).returncode == 2


def test_cli_list_rules():
    result = _cli("--list-rules")
    assert result.returncode == 0
    for rule_id in ("DET101", "LOCK201", "PROC301"):
        assert rule_id in result.stdout
