"""Fixture-driven rule tests.

Each fixture file seeds deliberate violations marked ``# expect: RULE``
(and suppressed ones marked with ``# repro: ignore[RULE]``).  The
harness asserts the analyzer reports *exactly* the expected set — every
seeded violation is caught by precisely its rule, negatives stay quiet,
and suppressions land in the ``suppressed`` bucket instead.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.check import run_check
from repro.analysis.check.source import SUPPRESS_RE

FIXTURES = sorted(
    (Path(__file__).parent / "fixtures").glob("*.py"),
    key=lambda p: p.name,
)

EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9]+)")


def expected_findings(path):
    out = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = EXPECT_RE.search(line)
        if match:
            out.add((lineno, match.group(1)))
    return out


def expected_suppressions(path):
    out = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = SUPPRESS_RE.search(line)
        if match is None or line.lstrip().startswith("#"):
            continue
        for rule_id in match.group(1).split(","):
            out.add((lineno, rule_id.strip().upper()))
    return out


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_matches_exactly(path):
    report = run_check([str(path)])
    got = {(f.line, f.rule) for f in report.findings}
    want = expected_findings(path)
    assert want, f"{path.name} has no # expect markers"
    assert got == want, (
        f"{path.name}: expected {sorted(want)}, got {sorted(got)}"
    )


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_suppressions_reported(path):
    report = run_check([str(path)])
    suppressed = {(f.line, f.rule) for f in report.suppressed}
    want = expected_suppressions(path)
    assert suppressed == want, (
        f"{path.name}: expected suppressed {sorted(want)}, "
        f"got {sorted(suppressed)}"
    )


def test_every_rule_has_a_fixture():
    covered = set()
    for path in FIXTURES:
        covered.update(rule for _, rule in expected_findings(path))
    from repro.analysis.check import known_rule_ids

    assert covered == set(known_rule_ids())


def test_standalone_suppression_line(tmp_path):
    src = tmp_path / "standalone_protocol.py"
    src.write_text(
        "import json\n"
        "def encode_one(v):\n"
        "    # repro: ignore[DET104]\n"
        "    return round(v, 3)\n"
        "def encode_two(v):\n"
        "    return round(v, 3)\n",
        encoding="utf-8",
    )
    report = run_check([str(src)])
    assert [(f.line, f.rule) for f in report.findings] == [(6, "DET104")]
    assert [(f.line, f.rule) for f in report.suppressed] == [(4, "DET104")]


def test_select_and_ignore_narrow_rules(tmp_path):
    src = tmp_path / "mixed_protocol.py"
    src.write_text(
        "def encode(v, entries):\n"
        "    return sorted(entries), round(v, 3)\n",
        encoding="utf-8",
    )
    both = run_check([str(src)])
    assert {f.rule for f in both.findings} == {"DET102", "DET104"}
    only = run_check([str(src)], select=["DET102"])
    assert {f.rule for f in only.findings} == {"DET102"}
    without = run_check([str(src)], ignore=["DET102"])
    assert {f.rule for f in without.findings} == {"DET104"}
