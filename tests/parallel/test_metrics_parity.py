"""Metric-merge parity across transports.

The worker-metric shipping path (cycle reply frames carrying registry
deltas) must produce the same merged totals whether the shards sit
behind pipes or TCP remote hosts — and the op-counter mirror must
match a single-process run exactly, because counter merging follows
the same replicated-shard discipline either way.
"""

import random

import pytest

from repro.cluster import local_shard_hosts
from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow


def drive(monitor, cycles=4, batch=8, seed=0xBEEF):
    rng = random.Random(seed)
    qids = [
        monitor.add_query(TopKQuery(LinearFunction(w), k=3))
        for w in ([0.7, 0.3], [0.2, 0.8], [0.5, 0.5])
    ]
    for cycle in range(cycles):
        rows = [[rng.random(), rng.random()] for _ in range(batch)]
        monitor.process(monitor.make_records(rows, time_=float(cycle)))
    return {qid: [e.rid for e in monitor.result(qid)] for qid in qids}


def run_monitor(shards, trace):
    monitor = StreamMonitor(
        2,
        CountBasedWindow(24),
        algorithm="tma",
        cells_per_axis=4,
        shards=shards,
        trace=trace,
    )
    try:
        results = drive(monitor)
        return results, monitor.metrics()
    finally:
        monitor.close()


def op_counters_of(snapshot):
    return {
        name: value
        for name, value in snapshot["counters"].items()
        if name.startswith("repro_op_")
    }


def phase_counts_of(snapshot):
    return {
        name: data["count"]
        for name, data in snapshot["histograms"].items()
        if name.startswith("repro_phase_")
    }


@pytest.mark.parametrize("trace", [False, True])
def test_pipe_and_tcp_merge_identically(trace):
    pipe_results, pipe_metrics = run_monitor(2, trace)
    with local_shard_hosts(2) as addresses:
        tcp_results, tcp_metrics = run_monitor(list(addresses), trace)
    assert pipe_results == tcp_results
    assert op_counters_of(pipe_metrics) == op_counters_of(tcp_metrics)
    if trace:
        # identical work → identical span *counts* per phase (span
        # durations legitimately differ between transports)
        assert phase_counts_of(pipe_metrics) == phase_counts_of(tcp_metrics)
        assert phase_counts_of(pipe_metrics)  # non-empty


def test_sharded_op_counters_match_single_process():
    single_results, single_metrics = run_monitor(None, False)
    pipe_results, pipe_metrics = run_monitor(2, False)
    assert single_results == pipe_results
    assert op_counters_of(single_metrics) == op_counters_of(pipe_metrics)


def test_transport_gauges_present_on_both_transports():
    _, pipe_metrics = run_monitor(2, False)
    with local_shard_hosts(2) as addresses:
        _, tcp_metrics = run_monitor(list(addresses), False)
    for snapshot in (pipe_metrics, tcp_metrics):
        gauges = snapshot["gauges"]
        assert gauges["repro_transport_sent_bytes"] > 0
        assert gauges["repro_transport_received_bytes"] > 0
        assert gauges["repro_transport_frames_sent"] > 0
        assert gauges["repro_transport_frames_received"] > 0
