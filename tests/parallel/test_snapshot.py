"""Round-trip tests for the columnar cycle snapshot."""

import pytest

from repro.core import batch
from repro.core.tuples import StreamRecord
from repro.transport import snapshot


def test_parallel_shim_reexports_transport_codec():
    """Pre-channel imports keep working: repro.parallel.snapshot is a
    thin re-export of the moved repro.transport.snapshot module."""
    from repro.parallel import snapshot as shim

    assert shim.encode_cycle is snapshot.encode_cycle
    assert shim.decode_cycle is snapshot.decode_cycle
    assert shim.SHM_MIN_BYTES == snapshot.SHM_MIN_BYTES


def make_records(values, start_rid=0, start_time=0.0):
    return [
        StreamRecord(start_rid + index, tuple(row), start_time + index)
        for index, row in enumerate(values)
    ]


def assert_bitwise_equal(rebuilt, originals):
    assert len(rebuilt) == len(originals)
    for got, want in zip(rebuilt, originals):
        assert got.rid == want.rid
        assert got.time == want.time
        assert got.attrs == want.attrs
        # bitwise, not just ==: the exactness contract of the snapshot
        for a, b in zip(got.attrs, want.attrs):
            assert a.hex() == b.hex()


class TestRoundTrip:
    def test_roundtrip_default_backend(self):
        arrivals = make_records(
            [[0.1, 0.2], [0.7071067811865476, 1e-300], [0.0, 1.0]]
        )
        expirations = make_records([[0.5, 0.5]], start_rid=100)
        payload, handle = snapshot.encode_cycle(arrivals, expirations)
        try:
            got_arrivals, got_expirations = snapshot.decode_cycle(payload)
        finally:
            handle.close()
        assert_bitwise_equal(got_arrivals, arrivals)
        assert_bitwise_equal(got_expirations, expirations)

    def test_roundtrip_pickled_columns(self, monkeypatch):
        """The pure-Python payload path, forced regardless of backend."""
        monkeypatch.setattr(batch, "np", None)
        arrivals = make_records([[0.25, 0.75], [1.0, 0.0]])
        payload, handle = snapshot.encode_cycle(arrivals, [])
        assert payload[0] == "cols"
        got_arrivals, got_expirations = snapshot.decode_cycle(payload)
        handle.close()
        assert_bitwise_equal(got_arrivals, arrivals)
        assert got_expirations == []

    def test_empty_cycle_uses_plain_payload(self):
        payload, handle = snapshot.encode_cycle([], [])
        assert payload[0] == "cols"
        arrivals, expirations = snapshot.decode_cycle(payload)
        handle.close()
        assert arrivals == [] and expirations == []

    def test_expirations_only(self):
        expirations = make_records([[0.9, 0.1], [0.3, 0.3]])
        payload, handle = snapshot.encode_cycle([], expirations)
        try:
            got_arrivals, got_expirations = snapshot.decode_cycle(payload)
        finally:
            handle.close()
        assert got_arrivals == []
        assert_bitwise_equal(got_expirations, expirations)

    def test_unknown_payload_rejected(self):
        with pytest.raises(ValueError):
            snapshot.decode_cycle(("garbage",))


@pytest.mark.skipif(batch.np is None, reason="NumPy backend only")
class TestSharedMemory:
    @pytest.fixture(autouse=True)
    def any_size_shares(self, monkeypatch):
        """Drop the size threshold so small fixtures take the shm path."""
        monkeypatch.setattr(snapshot, "SHM_MIN_BYTES", 0)

    def test_shared_payload_selected(self):
        arrivals = make_records([[0.1, 0.9]])
        payload, handle = snapshot.encode_cycle(arrivals, [])
        try:
            assert payload[0] == "shm"
        finally:
            handle.close()

    def test_small_payload_skips_shared_memory(self, monkeypatch):
        """Below the threshold, pickled columns beat shm setup costs."""
        monkeypatch.setattr(snapshot, "SHM_MIN_BYTES", 16384)
        arrivals = make_records([[0.1, 0.9]])
        payload, handle = snapshot.encode_cycle(arrivals, [])
        assert payload[0] == "cols"
        got, _ = snapshot.decode_cycle(payload)
        handle.close()
        assert_bitwise_equal(got, arrivals)

    def test_large_payload_takes_shared_memory(self, monkeypatch):
        monkeypatch.setattr(snapshot, "SHM_MIN_BYTES", 16384)
        arrivals = make_records([[0.5, 0.5]] * 1024)  # 16 KiB of attrs
        payload, handle = snapshot.encode_cycle(arrivals, [])
        try:
            assert payload[0] == "shm"
            got, _ = snapshot.decode_cycle(payload)
            assert_bitwise_equal(got, arrivals)
        finally:
            handle.close()

    def test_handle_close_unlinks_segment(self):
        from multiprocessing import shared_memory

        arrivals = make_records([[0.1, 0.9], [0.2, 0.8]])
        payload, handle = snapshot.encode_cycle(arrivals, [])
        name = payload[1]
        snapshot.decode_cycle(payload)  # reader attach/detach
        handle.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_decode_many_times_before_close(self):
        """Broadcast semantics: every worker decodes the same payload."""
        arrivals = make_records([[0.4, 0.6]])
        payload, handle = snapshot.encode_cycle(arrivals, [])
        try:
            for _ in range(4):
                got, _ = snapshot.decode_cycle(payload)
                assert_bitwise_equal(got, arrivals)
        finally:
            handle.close()
