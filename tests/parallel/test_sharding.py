"""Unit tests for the query→shard assignment planner."""

import pytest

from repro.core.errors import QueryError
from repro.core.queries import ConstrainedTopKQuery, TopKQuery
from repro.core.regions import Rectangle
from repro.core.scoring import LinearFunction, QuadraticFunction
from repro.parallel.sharding import ShardPlanner


def linear_query(qid, weights, k=3):
    query = TopKQuery(LinearFunction(weights), k=k)
    query.qid = qid
    return query


def quadratic_query(qid, weights, k=3):
    query = TopKQuery(QuadraticFunction(weights), k=k)
    query.qid = qid
    return query


class TestAssignment:
    def test_same_bucket_sticks_to_one_shard(self):
        planner = ShardPlanner(4)
        # Nearly identical preference vectors: one angular bucket.
        shards = {
            planner.assign(linear_query(qid, [0.6 + qid * 1e-4, 0.4]))
            for qid in range(8)
        }
        assert len(shards) == 1

    def test_scaled_weights_share_a_bucket(self):
        planner = ShardPlanner(2)
        a = planner.assign(linear_query(0, [0.3, 0.2]))
        b = planner.assign(linear_query(1, [0.6, 0.4]))  # same direction
        assert a == b

    def test_distinct_buckets_balance_load(self):
        planner = ShardPlanner(2)
        planner.assign(linear_query(0, [1.0, 0.0]))
        planner.assign(linear_query(1, [0.0, 1.0]))
        planner.assign(linear_query(2, [1.0, 1.0]))
        planner.assign(linear_query(3, [1.0, 4.0]))
        loads = planner.loads()
        assert sum(loads) == 4
        assert max(loads) - min(loads) <= 1

    def test_ungroupable_queries_round_robin(self):
        planner = ShardPlanner(3)
        shards = [
            planner.assign(quadratic_query(qid, [0.5, 0.5]))
            for qid in range(6)
        ]
        assert shards == [0, 1, 2, 0, 1, 2]

    def test_constrained_queries_round_robin(self):
        planner = ShardPlanner(2)
        region = Rectangle((0.0, 0.0), (0.5, 0.5))
        shards = [
            planner.assign(
                ConstrainedTopKQuery(
                    LinearFunction([0.6, 0.4]), k=2, qid=qid,
                    constraint=region,
                )
            )
            for qid in range(4)
        ]
        assert shards == [0, 1, 0, 1]

    def test_oversized_bucket_splits_into_chunks(self):
        """A dominant bucket (high-similarity workload) must not
        collapse onto one shard: every ``chunk`` members the pin moves
        to the emptiest shard. ``chunk`` defaults to the grouped
        traversal's max_group_size, so splitting costs no sweep
        sharing."""
        planner = ShardPlanner(2, chunk=3)
        shards = [
            planner.assign(linear_query(qid, [0.6, 0.4]))
            for qid in range(7)
        ]
        assert len(set(shards)) == 2
        loads = planner.loads()
        assert max(loads) - min(loads) <= 1

    def test_chunk_members_stay_contiguous(self):
        planner = ShardPlanner(4, chunk=3)
        shards = [
            planner.assign(linear_query(qid, [0.6, 0.4]))
            for qid in range(9)
        ]
        # Consecutive same-bucket registrations fill one chunk before
        # moving on — grouped bursts keep chunk-sized locality.
        assert shards[0] == shards[1] == shards[2]
        assert shards[3] == shards[4] == shards[5]
        assert shards[6] == shards[7] == shards[8]

    def test_double_assign_rejected(self):
        planner = ShardPlanner(2)
        query = linear_query(0, [0.5, 0.5])
        planner.assign(query)
        with pytest.raises(QueryError):
            planner.assign(query)


class TestRebalance:
    def test_release_frees_load(self):
        planner = ShardPlanner(2)
        query = linear_query(0, [0.5, 0.5])
        shard = planner.assign(query)
        assert planner.loads()[shard] == 1
        key = planner.registry.key_of(query)
        assert planner.release(0, key) == shard
        assert planner.loads() == [0, 0]
        assert len(planner) == 0

    def test_emptied_bucket_loses_its_pin(self):
        planner = ShardPlanner(2)
        a = linear_query(0, [1.0, 0.0])
        planner.assign(a)  # bucket A pinned to shard 0
        # Load shard 0 with round-robin traffic so it is the fullest.
        planner.assign(quadratic_query(1, [0.5, 0.5]))  # shard 0
        planner.assign(quadratic_query(2, [0.5, 0.5]))  # shard 1
        key = planner.registry.key_of(a)
        planner.release(0, key)
        # Bucket A's pin is gone; a fresh member lands on the
        # now-least-loaded shard instead of the historic pin.
        fresh = planner.assign(linear_query(3, [1.0, 0.0]))
        assert fresh == planner.loads().index(max(planner.loads()))
        assert max(planner.loads()) - min(planner.loads()) <= 1

    def test_surviving_bucket_keeps_its_pin(self):
        planner = ShardPlanner(2)
        first = linear_query(0, [1.0, 0.0])
        second = linear_query(1, [1.0, 0.0])
        shard = planner.assign(first)
        planner.assign(second)
        planner.release(0, planner.registry.key_of(first))
        assert planner.assign(linear_query(2, [1.0, 0.0])) == shard

    def test_churn_keeps_load_even(self):
        planner = ShardPlanner(4)
        for qid in range(16):
            planner.assign(quadratic_query(qid, [0.5, 0.5]))
        for qid in range(0, 16, 2):
            planner.release(qid)
        for qid in range(16, 24):
            planner.assign(quadratic_query(qid, [0.5, 0.5]))
        loads = planner.loads()
        assert sum(loads) == 16
        assert max(loads) - min(loads) <= 4  # round-robin drift bound

    def test_release_unknown_rejected(self):
        with pytest.raises(QueryError):
            ShardPlanner(2).release(99)

    def test_shard_of(self):
        planner = ShardPlanner(2)
        query = linear_query(5, [0.5, 0.5])
        shard = planner.assign(query)
        assert planner.shard_of(5) == shard
        with pytest.raises(QueryError):
            planner.shard_of(6)


class TestValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)
