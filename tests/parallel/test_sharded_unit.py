"""Unit tests for the sharded coordinator (lifecycle, errors, merge)."""

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import DimensionalityError, QueryError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import StreamRecord
from repro.core.window import CountBasedWindow
from repro.parallel import ShardedMonitorAlgorithm


def make_query(weights, k=2):
    return TopKQuery(LinearFunction(weights), k=k)


@pytest.fixture
def sharded():
    algorithm = ShardedMonitorAlgorithm(
        "tma", 2, shards=2, cells_per_axis=4
    )
    yield algorithm
    algorithm.close()


class TestConstruction:
    def test_unknown_algorithm_rejected_before_spawn(self):
        with pytest.raises(ValueError):
            ShardedMonitorAlgorithm("nope", 2, shards=2)

    def test_algorithm_instance_rejected(self):
        from repro.algorithms.brute import BruteForceAlgorithm

        with pytest.raises(TypeError):
            ShardedMonitorAlgorithm(BruteForceAlgorithm(2), 2, shards=2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedMonitorAlgorithm("tma", 2, shards=0)

    def test_name_reflects_base_and_width(self, sharded):
        assert sharded.name == "tmax2"
        assert sharded.base_algorithm == "tma"
        assert sharded.shards == 2

    def test_single_shard_worker_pool(self):
        with ShardedMonitorAlgorithm(
            "sma", 2, shards=1, cells_per_axis=4
        ) as algorithm:
            query = make_query([0.5, 0.5])
            query.qid = 0
            entries = algorithm.register(query)
            assert entries == []


class TestLifecycle:
    def test_register_unregister(self, sharded):
        query = make_query([0.6, 0.4])
        query.qid = 7
        sharded.register(query)
        assert [q.qid for q in sharded.queries()] == [7]
        assert sharded.current_result(7) == []
        sharded.unregister(7)
        assert list(sharded.queries()) == []
        with pytest.raises(QueryError):
            sharded.current_result(7)

    def test_unknown_query_errors(self, sharded):
        with pytest.raises(QueryError):
            sharded.current_result(3)
        with pytest.raises(QueryError):
            sharded.unregister(3)

    def test_dimension_mismatch_rejected(self, sharded):
        query = make_query([0.5, 0.5, 0.5])
        query.qid = 0
        with pytest.raises(DimensionalityError):
            sharded.register(query)

    def test_close_is_idempotent(self):
        algorithm = ShardedMonitorAlgorithm(
            "tma", 2, shards=2, cells_per_axis=4
        )
        algorithm.close()
        algorithm.close()

    def test_use_after_close_raises_clearly(self):
        from repro.core.errors import StreamError

        algorithm = ShardedMonitorAlgorithm(
            "tma", 2, shards=2, cells_per_axis=4
        )
        algorithm.close()
        with pytest.raises(StreamError):
            algorithm.process_cycle([], [])
        with pytest.raises(StreamError):
            algorithm.result_state_sizes()
        query = make_query([0.5, 0.5])
        query.qid = 0
        with pytest.raises(StreamError):
            algorithm.register(query)

    def test_register_counters_merged(self, sharded):
        queries = []
        for qid in range(4):
            query = make_query([0.2 + 0.2 * qid, 0.5])
            query.qid = qid
            queries.append(query)
        sharded.register_many(queries)
        # Initial computations happened in workers, yet the merged
        # counters see their work.
        assert sharded.counters.topk_computations == 4

    def test_counters_reset_then_accumulate(self, sharded):
        query = make_query([0.5, 0.5])
        query.qid = 0
        sharded.register(query)
        sharded.counters.reset()
        records = [
            StreamRecord(rid, (0.1 * rid, 0.5), 0.0) for rid in range(3)
        ]
        sharded.process_cycle(records, [])
        assert sharded.counters.arrivals == 3
        assert sharded.counters.influence_checks >= 0


class TestEngineIntegration:
    def test_monitor_rejects_instance_with_shards(self):
        from repro.algorithms.brute import BruteForceAlgorithm

        with pytest.raises(ValueError):
            StreamMonitor(
                2,
                CountBasedWindow(4),
                algorithm=BruteForceAlgorithm(2),
                shards=2,
            )

    def test_monitor_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            StreamMonitor(
                2, CountBasedWindow(4), algorithm="tma", shards=0
            )

    def test_shards_one_stays_in_process(self):
        from repro.algorithms.tma import TopKMonitoringAlgorithm

        with StreamMonitor(
            2,
            CountBasedWindow(4),
            algorithm="tma",
            cells_per_axis=4,
            shards=1,
        ) as monitor:
            assert isinstance(monitor.algorithm, TopKMonitoringAlgorithm)

    def test_monitor_context_manager_closes_pool(self):
        with StreamMonitor(
            2,
            CountBasedWindow(8),
            algorithm="tma",
            cells_per_axis=4,
            shards=2,
        ) as monitor:
            qid = monitor.add_query(make_query([1.0, 1.0]))
            monitor.process(monitor.make_records([[0.5, 0.5]]))
            assert [entry.rid for entry in monitor.result(qid)] == [0]
            channels = list(monitor.algorithm._channels)
            assert all(channel.is_alive() for channel in channels)
        assert monitor.algorithm._channels == []
        assert all(not channel.is_alive() for channel in channels)

    def test_state_sizes_merge_across_shards(self):
        with StreamMonitor(
            2,
            CountBasedWindow(30),
            algorithm="tma",
            cells_per_axis=4,
            shards=3,
        ) as monitor:
            qids = monitor.add_queries(
                [make_query([0.2 + 0.2 * i, 0.9 - 0.2 * i]) for i in range(4)]
            )
            monitor.process(
                monitor.make_records(
                    [[0.1 * i, 0.05 * i] for i in range(10)]
                )
            )
            sizes = monitor.algorithm.result_state_sizes()
            assert sorted(sizes) == sorted(qids)
