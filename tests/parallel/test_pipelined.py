"""Pipelined shard broadcast: begin/finish split, process_many parity.

The contract: ``StreamMonitor.process_many`` over a sharded algorithm
overlaps the coordinator's next-cycle snapshot with in-flight shard
work, yet every report — changes, counters, results, timestamps — is
bitwise identical to strict sequential ``process`` calls.
"""

import random

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import StreamError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow


def build(algorithm, shards):
    return StreamMonitor(
        2,
        CountBasedWindow(90),
        algorithm=algorithm,
        cells_per_axis=4,
        shards=shards if shards > 1 else None,
    )


def make_queries(rng, count=4):
    return [
        TopKQuery(
            LinearFunction(
                [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
            ),
            k=rng.choice([1, 3, 5]),
        )
        for _ in range(count)
    ]


def drive(monitor, pipelined, cycles=8, seed=21):
    rng = random.Random(seed)
    handles = monitor.add_queries(make_queries(random.Random(99)))
    batches = [
        monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(18)],
            time_=float(cycle),
        )
        for cycle in range(cycles)
    ]
    if pipelined:
        reports = monitor.process_many(batches)
    else:
        reports = [monitor.process(batch) for batch in batches]
    summary = [
        (
            report.timestamp,
            report.arrivals,
            report.expirations,
            sorted(
                (qid, change.top_ids())
                for qid, change in report.changes.items()
            ),
        )
        for report in reports
    ]
    finals = {int(h): [e.rid for e in h.result()] for h in handles}
    return summary, finals, monitor.counters.as_dict()


@pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl"])
@pytest.mark.parametrize("shards", [2, 4])
def test_process_many_matches_sequential(algorithm, shards):
    sequential = build(algorithm, shards)
    try:
        expected = drive(sequential, pipelined=False)
    finally:
        sequential.close()
    pipelined = build(algorithm, shards)
    try:
        actual = drive(pipelined, pipelined=True)
    finally:
        pipelined.close()
    assert actual == expected


def test_process_many_matches_single_process_reference():
    reference = build("tma", 1)
    try:
        expected = drive(reference, pipelined=False)
    finally:
        reference.close()
    pipelined = build("tma", 2)
    try:
        actual = drive(pipelined, pipelined=True)
    finally:
        pipelined.close()
    assert actual == expected


def test_process_many_dispatches_deltas_in_order():
    monitor = build("tma", 2)
    try:
        rng = random.Random(5)
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 0.5]), k=3)
        )
        stream = handle.changes()
        batches = [
            monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(15)],
                time_=float(cycle),
            )
            for cycle in range(6)
        ]
        reports = monitor.process_many(batches)
        # Every delta of every cycle is flushed (in order) by return.
        drained = stream.drain()
        expected = [
            report.changes[handle.qid]
            for report in reports
            if handle.qid in report.changes
            and report.changes[handle.qid].changed
        ]
        assert drained == expected
    finally:
        monitor.close()


def test_process_many_in_process_fallback():
    monitor = build("tma", 1)
    try:
        rng = random.Random(6)
        monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
        batches = [
            monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(10)],
                time_=float(cycle),
            )
            for cycle in range(3)
        ]
        reports = monitor.process_many(batches)
        assert len(reports) == 3
        assert len(monitor.cycle_seconds) == 3
    finally:
        monitor.close()


def test_process_many_failed_ingest_does_not_strand_cycle():
    """Regression: an ingest error mid-run must drain the in-flight
    cycle (deltas dispatched, pipeline cleared) before propagating —
    not leave the monitor refusing every later cycle."""
    monitor = build("tma", 2)
    try:
        rng = random.Random(9)
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 0.5]), k=3)
        )
        stream = handle.changes()
        good = monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(15)], time_=1.0
        )
        bad = monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(15)], time_=0.5
        )
        from repro.core.errors import WindowError

        with pytest.raises(WindowError, match="out-of-order"):
            monitor.process_many([good, bad])
        # The good cycle's deltas were dispatched before the raise...
        drained = stream.drain()
        assert drained and drained[-1].top_ids() == [
            entry.rid for entry in handle.result()
        ]
        # ...and the monitor accepts new cycles again.
        report = monitor.process(
            monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(10)],
                time_=2.0,
            )
        )
        assert report.arrivals == 10
    finally:
        monitor.close()


def test_process_many_nows_validation():
    monitor = build("tma", 1)
    try:
        with pytest.raises(StreamError):
            monitor.process_many([[], []], nows=[0.0])
    finally:
        monitor.close()


class TestBeginFinishGuards:
    def test_double_begin_rejected(self):
        monitor = build("tma", 2)
        try:
            algo = monitor.algorithm
            algo.begin_cycle(algo.prepare_cycle([], []))
            with pytest.raises(StreamError):
                algo.begin_cycle(algo.prepare_cycle([], []))
            algo.finish_cycle()
        finally:
            monitor.close()

    def test_finish_without_begin_rejected(self):
        monitor = build("tma", 2)
        try:
            with pytest.raises(StreamError):
                monitor.algorithm.finish_cycle()
        finally:
            monitor.close()

    def test_rpcs_rejected_while_cycle_in_flight(self):
        monitor = build("tma", 2)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=2)
            )
            algo = monitor.algorithm
            algo.begin_cycle(algo.prepare_cycle([], []))
            with pytest.raises(StreamError):
                algo.update_query(handle.qid, k=1)
            with pytest.raises(StreamError):
                algo.register_many(
                    [TopKQuery(LinearFunction([0.5, 0.5]), k=1)]
                )
            algo.finish_cycle()
            # After finishing, the same RPCs go through.
            assert len(algo.update_query(handle.qid, k=1)) <= 1
        finally:
            monitor.close()

    def test_close_drains_in_flight_cycle(self):
        monitor = build("tma", 2)
        algo = monitor.algorithm
        algo.begin_cycle(algo.prepare_cycle([], []))
        monitor.close()  # must not hang or leak the shared segment
        assert monitor.closed

    def test_ping_is_an_order_barrier(self):
        monitor = build("tma", 2)
        try:
            rng = random.Random(7)
            monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
            batch = monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(30)]
            )
            monitor.process(batch)
            assert monitor.algorithm.ping()
        finally:
            monitor.close()
