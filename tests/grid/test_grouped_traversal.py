"""Grouped traversal ≡ per-query traversal, at the traversal level.

``compute_top_k_group`` promises bitwise-identical entries — same
``(score, rid)`` order — and the same *set* of processed cells per
query as running ``compute_top_k`` once per group member. These tests
pin that contract directly against the solo traversal across weight
families, group sizes, ties, underfull grids and mixed-k groups, under
whichever batch backend is active (the python-backend subprocess sweep
lives in ``tests/integration/test_grouped_parity.py``).
"""

import random

import pytest

from repro.core.scoring import LinearFunction, ProductFunction
from repro.core.stats import OpCounters
from repro.core.tuples import RecordFactory
from repro.grid.grid import Grid
from repro.grid.traversal import compute_top_k, compute_top_k_group


def fill_grid(grid, rows):
    factory = RecordFactory()
    records = [factory.make(row) for row in rows]
    grid.insert_many(records)
    return records


def random_rows(rng, count, dims):
    return [tuple(rng.random() for _ in range(dims)) for _ in range(count)]


def assert_group_matches_solo(grid, functions, ks):
    outcomes = compute_top_k_group(grid, functions, ks)
    assert len(outcomes) == len(functions)
    for function, k, grouped in zip(functions, ks, outcomes):
        solo = compute_top_k(grid, function, k)
        assert [
            (entry.score, entry.record.rid) for entry in grouped.entries
        ] == [(entry.score, entry.record.rid) for entry in solo.entries]
        # Same *set* of cells must carry the query's influence entry;
        # visiting order follows the group key and may differ.
        assert set(grouped.processed) == set(solo.processed)
    return outcomes


class TestGroupedEqualsSolo:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 21, 32])
    def test_group_sizes_on_similar_queries(self, size):
        rng = random.Random(size)
        grid = Grid(2, 6)
        fill_grid(grid, random_rows(rng, 150, 2))
        base = (0.7, 0.4)
        functions = [
            LinearFunction(
                [
                    max(0.05, value + rng.uniform(-0.08, 0.08))
                    for value in base
                ]
            )
            for _ in range(size)
        ]
        ks = [rng.choice([1, 3, 5, 9]) for _ in range(size)]
        assert_group_matches_solo(grid, functions, ks)

    @pytest.mark.parametrize("seed", range(4))
    def test_dissimilar_weights_still_exact(self, seed):
        """Grouping is a heuristic: any shared-direction group must be
        exact, even when the members' staircases barely overlap."""
        rng = random.Random(seed + 50)
        grid = Grid(3, 4)
        fill_grid(grid, random_rows(rng, 120, 3))
        functions = [
            LinearFunction([rng.uniform(0.05, 1.0) for _ in range(3)])
            for _ in range(6)
        ]
        assert_group_matches_solo(grid, functions, [4] * 6)

    def test_negative_weights_shared_directions(self):
        rng = random.Random(7)
        grid = Grid(2, 5)
        fill_grid(grid, random_rows(rng, 100, 2))
        functions = [
            LinearFunction([0.8, -0.5]),
            LinearFunction([0.7, -0.6]),
            LinearFunction([0.9, -0.1]),
        ]
        assert_group_matches_solo(grid, functions, [3, 5, 2])

    def test_tie_saturated_lattice(self):
        """Lattice attributes collide scores constantly; any deviation
        from the solo kernel's bit pattern would reorder rid ties."""
        rng = random.Random(11)
        grid = Grid(2, 4)
        rows = [
            (rng.randrange(5) / 4.0, rng.randrange(5) / 4.0)
            for _ in range(90)
        ]
        fill_grid(grid, rows)
        functions = [
            LinearFunction([0.5, 0.5]),
            LinearFunction([0.5, 0.25]),
            LinearFunction([0.25, 0.5]),
        ]
        assert_group_matches_solo(grid, functions, [6, 6, 6])

    def test_underfull_grid_processes_everything(self):
        grid = Grid(2, 4)
        fill_grid(grid, [(0.2, 0.3), (0.8, 0.9)])
        functions = [LinearFunction([1.0, 0.5]), LinearFunction([0.9, 0.6])]
        outcomes = assert_group_matches_solo(grid, functions, [5, 7])
        for outcome in outcomes:
            assert len(outcome.entries) == 2  # fewer than k valid records

    def test_empty_grid(self):
        grid = Grid(2, 3)
        functions = [LinearFunction([1.0, 1.0]), LinearFunction([0.9, 1.0])]
        outcomes = compute_top_k_group(grid, functions, [2, 2])
        assert all(outcome.entries == [] for outcome in outcomes)

    def test_counters_account_for_group(self):
        rng = random.Random(3)
        grid = Grid(2, 5)
        fill_grid(grid, random_rows(rng, 80, 2))
        functions = [LinearFunction([0.6, 0.4]), LinearFunction([0.55, 0.45])]
        counters = OpCounters()
        compute_top_k_group(grid, functions, [3, 3], counters=counters)
        assert counters.grouped_traversals == 1
        assert counters.grouped_queries_served == 2
        assert counters.topk_computations == 2
        assert counters.cells_processed > 0

    def test_singleton_group_takes_solo_path(self):
        rng = random.Random(4)
        grid = Grid(2, 5)
        fill_grid(grid, random_rows(rng, 60, 2))
        counters = OpCounters()
        [outcome] = compute_top_k_group(
            grid, [LinearFunction([0.6, 0.4])], [3], counters=counters
        )
        solo = compute_top_k(grid, LinearFunction([0.6, 0.4]), 3)
        assert [(e.score, e.record.rid) for e in outcome.entries] == [
            (e.score, e.record.rid) for e in solo.entries
        ]
        assert counters.grouped_traversals == 0  # solo path, no overhead


class TestGroupValidation:
    def test_rejects_mixed_directions(self):
        grid = Grid(2, 4)
        with pytest.raises(ValueError, match="directions"):
            compute_top_k_group(
                grid,
                [LinearFunction([0.5, 0.5]), LinearFunction([0.5, -0.5])],
                [2, 2],
            )

    def test_rejects_non_linear_members(self):
        grid = Grid(2, 4)
        with pytest.raises(ValueError, match="LinearFunction"):
            compute_top_k_group(
                grid,
                [LinearFunction([0.5, 0.5]), ProductFunction([0.1, 0.1])],
                [2, 2],
            )

    def test_rejects_mismatched_lengths(self):
        grid = Grid(2, 4)
        with pytest.raises(ValueError, match="functions but"):
            compute_top_k_group(grid, [LinearFunction([0.5, 0.5])], [2, 3])

    def test_empty_group_is_empty(self):
        assert compute_top_k_group(Grid(2, 4), [], []) == []


class TestDuplicateMemberMerge:
    """Near-identical members collapse to one shared, aliased result."""

    def test_duplicates_alias_one_outcome(self):
        rng = random.Random(91)
        grid = Grid(2, 6)
        fill_grid(grid, random_rows(rng, 150, 2))
        shared = LinearFunction([0.6, 0.4])
        functions = [
            shared,
            LinearFunction([0.3, 0.8]),
            LinearFunction([0.6, 0.4]),  # equal weights, equal k
            shared,
        ]
        ks = [4, 3, 4, 4]
        outcomes = compute_top_k_group(grid, functions, ks)
        assert len(outcomes) == 4
        # Members 0, 2, 3 share one (weights, k) spec: one sweep
        # result, aliased per member.
        assert outcomes[0] is outcomes[2]
        assert outcomes[0] is outcomes[3]
        assert outcomes[1] is not outcomes[0]

    def test_deduplicated_group_matches_solo(self):
        rng = random.Random(92)
        grid = Grid(2, 5)
        fill_grid(grid, random_rows(rng, 120, 2))
        functions = [
            LinearFunction([0.7, 0.4]),
            LinearFunction([0.7, 0.4]),
            LinearFunction([0.65, 0.45]),
            LinearFunction([0.7, 0.4]),
        ]
        assert_group_matches_solo(grid, functions, [5, 5, 3, 5])

    def test_same_weights_different_k_not_merged(self):
        rng = random.Random(93)
        grid = Grid(2, 5)
        fill_grid(grid, random_rows(rng, 100, 2))
        functions = [LinearFunction([0.5, 0.5]), LinearFunction([0.5, 0.5])]
        outcomes = assert_group_matches_solo(grid, functions, [2, 6])
        assert outcomes[0] is not outcomes[1]
        assert len(outcomes[0].entries) == 2
        assert len(outcomes[1].entries) == 6

    def test_all_duplicates_collapse_to_solo_path(self):
        rng = random.Random(94)
        grid = Grid(2, 5)
        fill_grid(grid, random_rows(rng, 110, 2))
        functions = [LinearFunction([0.4, 0.7])] * 3
        counters = OpCounters()
        outcomes = compute_top_k_group(grid, functions, [4] * 3, counters)
        solo = compute_top_k(grid, functions[0], 4)
        assert outcomes[0] is outcomes[1] is outcomes[2]
        assert [
            (entry.score, entry.record.rid) for entry in outcomes[0].entries
        ] == [(entry.score, entry.record.rid) for entry in solo.entries]
        # Every member still counts as one served top-k computation.
        assert counters.topk_computations == 3

    def test_counter_parity_with_duplicates(self):
        rng = random.Random(95)
        grid = Grid(2, 6)
        fill_grid(grid, random_rows(rng, 130, 2))
        functions = [
            LinearFunction([0.8, 0.3]),
            LinearFunction([0.8, 0.3]),
            LinearFunction([0.75, 0.35]),
        ]
        counters = OpCounters()
        compute_top_k_group(grid, functions, [3, 3, 3], counters)
        assert counters.topk_computations == 3
        assert counters.grouped_queries_served == 3
        assert counters.grouped_traversals == 1
