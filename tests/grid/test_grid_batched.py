"""Batched grid paths: coords_of_many, insert/delete_many, columnar cells,
and the precomputed linear maxscore tables of the traversal."""

import random

import pytest

from repro.core import batch
from repro.core.errors import DimensionalityError
from repro.core.scoring import LinearFunction, ProductFunction
from repro.core.stats import NULL_COUNTERS, OpCounters
from repro.core.tuples import RecordFactory
from repro.grid.grid import Grid
from repro.grid.traversal import _linear_maxscore_fn, compute_top_k


class TestCoordsOfMany:
    def test_matches_scalar_coords_of(self):
        rng = random.Random(3)
        grid = Grid(3, 7)
        rows = [
            tuple(rng.uniform(-0.2, 1.2) for _ in range(3))
            for _ in range(100)
        ]
        assert grid.coords_of_many(rows) == [
            grid.coords_of(row) for row in rows
        ]

    def test_boundary_values_match_scalar(self):
        grid = Grid(2, 4)
        rows = [
            (0.0, 1.0),
            (0.25, 0.25),  # exactly on a cell boundary
            (0.9999999, 1.0000001),
            (-0.5, 2.0),  # clamped into the boundary cells
        ]
        assert grid.coords_of_many(rows) == [
            grid.coords_of(row) for row in rows
        ]

    def test_empty_batch(self):
        assert Grid(2, 4).coords_of_many([]) == []

    def test_small_batch_uses_scalar_path(self):
        grid = Grid(2, 4)
        rows = [(0.1, 0.9)]  # below the vectorization threshold
        assert grid.coords_of_many(rows) == [grid.coords_of(rows[0])]

    def test_validates_once_per_batch(self):
        grid = Grid(2, 4)
        with pytest.raises(DimensionalityError):
            grid.coords_of_many([(0.1, 0.2, 0.3)] * 10)

    def test_malformed_row_raises_on_every_path(self):
        # Scalar path (small batch) and vector path must both reject a
        # malformed row, wherever it sits in the batch — a silent
        # wrong-dims coords tuple would materialise a phantom cell no
        # traversal ever visits.
        grid = Grid(2, 4)
        with pytest.raises(DimensionalityError):
            grid.coords_of_many([(0.1, 0.2), (0.3,)])  # small batch
        with pytest.raises(DimensionalityError):
            grid.coords_of_many([(0.1, 0.2)] * 9 + [(0.3,)])  # ragged, large


class TestBatchedPointMaintenance:
    def test_insert_many_matches_insert(self):
        rng = random.Random(5)
        factory = RecordFactory()
        records = [
            factory.make((rng.random(), rng.random())) for _ in range(40)
        ]
        one = Grid(2, 5)
        many = Grid(2, 5)
        scalar_cells = [one.insert(record) for record in records]
        batch_cells = many.insert_many(records)
        assert [cell.coords for cell in batch_cells] == [
            cell.coords for cell in scalar_cells
        ]
        assert one.point_count() == many.point_count() == 40

    def test_delete_many_roundtrip(self):
        factory = RecordFactory()
        records = [factory.make((i / 10.0, i / 10.0)) for i in range(10)]
        grid = Grid(2, 5)
        grid.insert_many(records)
        cells = grid.delete_many(records)
        assert grid.point_count() == 0
        assert len(cells) == 10


class TestColumnarCell:
    def test_columns_track_point_list(self):
        factory = RecordFactory()
        grid = Grid(2, 2)
        first = factory.make((0.1, 0.1))
        second = factory.make((0.2, 0.2))
        cell = grid.insert(first)
        assert grid.insert(second) is cell
        records, matrix = cell.columns()
        assert records == [first, second]
        assert batch.to_list(
            LinearFunction([1.0, 1.0]).score_batch(matrix)
        ) == [
            LinearFunction([1.0, 1.0]).score(record.attrs)
            for record in records
        ]

    def test_cache_reused_until_mutation(self):
        factory = RecordFactory()
        grid = Grid(2, 2)
        record = factory.make((0.1, 0.1))
        cell = grid.insert(record)
        first_records, first_matrix = cell.columns()
        again_records, again_matrix = cell.columns()
        assert again_records is first_records
        assert again_matrix is first_matrix
        cell.remove_point(record)
        records, _ = cell.columns()
        assert records == []

    def test_scored_columns_memo_and_invalidation(self):
        factory = RecordFactory()
        grid = Grid(2, 2)
        function = LinearFunction([1.0, 2.0])
        cell = grid.insert(factory.make((0.1, 0.2)))
        records, scores = cell.scored_columns(function)
        assert batch.to_list(scores) == [function.score(records[0].attrs)]
        # Unmutated cell re-serves the same vector object.
        again_records, again_scores = cell.scored_columns(function)
        assert again_scores is scores
        # A different function gets its own vector.
        other = LinearFunction([2.0, 1.0])
        _, other_scores = cell.scored_columns(other)
        assert batch.to_list(other_scores) == [other.score(records[0].attrs)]
        # Mutation drops the memo.
        newcomer = factory.make((0.3, 0.4))
        cell.add_point(newcomer)
        records, scores = cell.scored_columns(function)
        assert batch.to_list(scores) == [
            function.score(record.attrs) for record in records
        ]

    def test_fifo_iteration_preserved(self):
        factory = RecordFactory()
        grid = Grid(2, 2)
        records = [factory.make((0.1, 0.1)) for _ in range(5)]
        for record in records:
            grid.insert(record)
        cell = grid.peek_cell(grid.coords_of((0.1, 0.1)))
        assert list(cell.iter_points()) == records
        columnar, _ = cell.columns()
        assert columnar == records


class TestLinearMaxscoreTables:
    @pytest.mark.parametrize("seed", range(6))
    def test_bitwise_equal_to_generic_maxscore(self, seed):
        rng = random.Random(seed)
        dims = rng.choice([1, 2, 3, 4])
        grid = Grid(dims, rng.choice([2, 5, 12, 144]))
        function = LinearFunction(
            [rng.uniform(-1.0, 1.0) for _ in range(dims)]
        )
        evaluator = _linear_maxscore_fn(grid, function)
        for _ in range(50):
            coords = tuple(
                rng.randrange(grid.cells_per_axis) for _ in range(dims)
            )
            assert evaluator(coords) == grid.maxscore(coords, function)

    def test_maxscore_delta_api(self):
        function = LinearFunction([0.5, -2.0])
        assert function.maxscore_delta(0, 0.1) == pytest.approx(0.05)
        assert function.maxscore_delta(1, 0.1) == pytest.approx(0.2)
        assert ProductFunction([0.1, 0.2]).maxscore_delta(0, 0.1) is None


class TestNullCounters:
    def test_increments_vanish_and_reads_are_zero(self):
        NULL_COUNTERS.points_scored += 5
        assert NULL_COUNTERS.points_scored == 0

    def test_traversal_accepts_missing_counters(self):
        factory = RecordFactory()
        grid = Grid(2, 4)
        grid.insert(factory.make((0.9, 0.9)))
        outcome = compute_top_k(grid, LinearFunction([1.0, 1.0]), 1)
        assert [entry.rid for entry in outcome.entries] == [0]

    def test_real_counters_still_update(self):
        factory = RecordFactory()
        grid = Grid(2, 4)
        grid.insert(factory.make((0.9, 0.9)))
        counters = OpCounters()
        compute_top_k(
            grid, LinearFunction([1.0, 1.0]), 1, counters=counters
        )
        assert counters.points_scored == 1
        assert counters.topk_computations == 1
