"""Tests for the naive sorted-cell scan (Section 4.2's strawman)."""

import random

import pytest

from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.stats import OpCounters
from repro.grid.grid import Grid
from repro.grid.naive import compute_top_k_naive
from repro.grid.traversal import compute_top_k

from tests.conftest import brute_top_k, make_records, random_rows


def populated(rows, cells=6, dims=2):
    grid = Grid(dims, cells)
    records = make_records(rows)
    for record in records:
        grid.insert(record)
    return grid, records


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng, 80, 2)
        grid, records = populated(rows)
        f = LinearFunction([rng.uniform(0.1, 1), rng.uniform(0.1, 1)])
        k = rng.choice([1, 4, 9])
        outcome = compute_top_k_naive(grid, f, k)
        expected = brute_top_k(records, TopKQuery(f, k))
        assert [e.rid for e in outcome.entries] == [e.rid for e in expected]

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_heap_traversal(self, seed):
        rng = random.Random(30 + seed)
        rows = random_rows(rng, 60, 3)
        grid, records = populated(rows, cells=4, dims=3)
        f = LinearFunction([1.0, 0.5, 0.8])
        naive = compute_top_k_naive(grid, f, 5)
        smart = compute_top_k(grid, f, 5)
        assert [e.rid for e in naive.entries] == [
            e.rid for e in smart.entries
        ]

    def test_empty_grid(self):
        grid = Grid(2, 4)
        outcome = compute_top_k_naive(grid, LinearFunction([1.0, 1.0]), 2)
        assert outcome.entries == []

    def test_mixed_directions(self):
        grid, records = populated([(0.9, 0.1), (0.1, 0.9)], cells=5)
        f = LinearFunction([1.0, -1.0])
        outcome = compute_top_k_naive(grid, f, 1)
        assert [e.rid for e in outcome.entries] == [0]


class TestCostProfile:
    def test_naive_prices_every_cell(self):
        """The strawman's defining cost: maxscore for all cells."""
        grid, _ = populated([(0.9, 0.9)], cells=8)
        counters = OpCounters()
        compute_top_k_naive(grid, LinearFunction([1.0, 1.0]), 1, counters)
        assert counters.cells_enheaped == 64  # every cell priced

    def test_heap_traversal_prices_fewer(self):
        rng = random.Random(1)
        rows = random_rows(rng, 200, 2)
        grid, _ = populated(rows, cells=10)
        f = LinearFunction([1.0, 1.0])
        naive_counters = OpCounters()
        smart_counters = OpCounters()
        compute_top_k_naive(grid, f, 3, naive_counters)
        compute_top_k(grid, f, 3, smart_counters)
        assert smart_counters.cells_enheaped < naive_counters.cells_enheaped

    def test_naive_has_no_remaining_cells(self):
        grid, _ = populated([(0.5, 0.5)], cells=4)
        outcome = compute_top_k_naive(grid, LinearFunction([1.0, 1.0]), 1)
        assert outcome.remaining == []
