"""Tests for the regular grid index and cell geometry."""

import pytest

from repro.core.errors import DimensionalityError
from repro.core.regions import Rectangle
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.grid.grid import Grid


@pytest.fixture
def factory():
    return RecordFactory()


class TestGeometry:
    def test_invalid_construction(self):
        with pytest.raises(DimensionalityError):
            Grid(0, 4)
        with pytest.raises(DimensionalityError):
            Grid(2, 0)

    def test_coords_of(self):
        grid = Grid(2, 10)
        assert grid.coords_of((0.05, 0.95)) == (0, 9)
        assert grid.coords_of((0.55, 0.51)) == (5, 5)

    def test_coords_clamping(self):
        grid = Grid(2, 10)
        assert grid.coords_of((1.0, 1.0)) == (9, 9)  # 1.0 is inside
        assert grid.coords_of((-0.5, 2.0)) == (0, 9)  # clamp out-of-range

    def test_coords_dim_mismatch(self):
        with pytest.raises(DimensionalityError):
            Grid(2, 4).coords_of((0.5,))

    def test_bounds_of(self):
        grid = Grid(2, 4)
        lower, upper = grid.bounds_of((1, 3))
        assert lower == (0.25, 0.75)
        assert upper == (0.5, 1.0)

    def test_cell_extent_matches_paper(self):
        # Paper: cell ci,j covers [i*delta, (i+1)*delta) per axis.
        grid = Grid(2, 7)
        coords = grid.coords_of((0.99, 0.99))
        assert coords == (6, 6)  # the paper's c6,6 in a 7x7 grid

    def test_total_cells(self):
        assert Grid(4, 12).total_cells == 12**4


class TestDirections:
    def test_best_corner_all_increasing(self):
        grid = Grid(2, 7)
        f = LinearFunction([1.0, 2.0])
        assert grid.best_corner_coords(f) == (6, 6)

    def test_best_corner_mixed(self):
        # Figure 7(a): f = x1 - x2 starts at the bottom-right cell.
        grid = Grid(2, 7)
        f = LinearFunction([1.0, -1.0])
        assert grid.best_corner_coords(f) == (6, 0)

    def test_steps_toward_worse_interior(self):
        grid = Grid(2, 7)
        f = LinearFunction([1.0, 2.0])
        assert set(grid.steps_toward_worse((5, 6), f)) == {(4, 6), (5, 5)}

    def test_steps_toward_worse_mixed_direction(self):
        grid = Grid(2, 7)
        f = LinearFunction([1.0, -1.0])
        # Decreasing x2: the "worse" neighbour moves up (+1).
        assert set(grid.steps_toward_worse((6, 0), f)) == {(5, 0), (6, 1)}

    def test_steps_stop_at_border(self):
        grid = Grid(2, 7)
        f = LinearFunction([1.0, 2.0])
        assert grid.steps_toward_worse((0, 0), f) == []

    def test_steps_3d(self):
        grid = Grid(3, 4)
        f = LinearFunction([1.0, 1.0, 1.0])
        assert set(grid.steps_toward_worse((3, 3, 3), f)) == {
            (2, 3, 3),
            (3, 2, 3),
            (3, 3, 2),
        }


class TestMaxscore:
    def test_maxscore(self):
        grid = Grid(2, 4)
        f = LinearFunction([1.0, 2.0])
        # Cell (3,3) = [0.75,1.0)^2; best corner (1.0, 1.0).
        assert grid.maxscore((3, 3), f) == pytest.approx(3.0)

    def test_maxscore_in_region(self):
        grid = Grid(2, 4)
        f = LinearFunction([1.0, 1.0])
        region = Rectangle((0.0, 0.0), (0.85, 0.85))
        clipped = grid.maxscore_in_region((3, 3), f, region)
        assert clipped == pytest.approx(1.7)

    def test_maxscore_in_disjoint_region(self):
        grid = Grid(2, 4)
        f = LinearFunction([1.0, 1.0])
        region = Rectangle((0.0, 0.0), (0.5, 0.5))
        assert grid.maxscore_in_region((3, 3), f, region) is None


class TestStorage:
    def test_lazy_materialisation(self, factory):
        grid = Grid(2, 4)
        assert grid.allocated_cells == 0
        grid.insert(factory.make((0.1, 0.1)))
        assert grid.allocated_cells == 1
        assert grid.peek_cell((3, 3)) is None
        grid.get_cell((3, 3))
        assert grid.allocated_cells == 2

    def test_out_of_bounds_cell(self):
        with pytest.raises(DimensionalityError):
            Grid(2, 4).get_cell((4, 0))

    def test_insert_delete_roundtrip(self, factory):
        grid = Grid(2, 4)
        record = factory.make((0.3, 0.7))
        cell = grid.insert(record)
        assert record.rid in cell.points
        assert grid.point_count() == 1
        assert grid.locate(record) is cell
        grid.delete(record)
        assert grid.point_count() == 0

    def test_point_list_fifo_iteration(self, factory):
        grid = Grid(2, 2)
        records = [factory.make((0.1, 0.1)) for _ in range(3)]
        for record in records:
            grid.insert(record)
        cell = grid.locate(records[0])
        assert [r.rid for r in cell.iter_points()] == [0, 1, 2]

    def test_cells_iterator(self, factory):
        grid = Grid(2, 4)
        grid.insert(factory.make((0.1, 0.1)))
        grid.insert(factory.make((0.9, 0.9)))
        assert len(list(grid.cells())) == 2

    def test_cell_repr(self, factory):
        grid = Grid(2, 4)
        cell = grid.insert(factory.make((0.1, 0.1)))
        cell.influence.add(3)
        assert "1 pts" in repr(cell)
        assert "1 queries" in repr(cell)
