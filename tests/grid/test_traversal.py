"""Tests for the top-k computation module (paper Figure 6).

Includes the paper's worked examples (Figures 5 and 7) plus minimality
and correctness properties on randomized data.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import Rectangle
from repro.core.scoring import LinearFunction, ProductFunction
from repro.core.stats import OpCounters
from repro.core.tuples import RecordFactory
from repro.grid.grid import Grid
from repro.grid.traversal import (
    collect_cells_above_threshold,
    compute_top_k,
    start_coords,
)

from tests.conftest import brute_top_k, make_records, random_rows
from repro.core.queries import TopKQuery


def populated_grid(rows, cells=7, dims=2):
    grid = Grid(dims, cells)
    records = make_records(rows)
    for record in records:
        grid.insert(record)
    return grid, records


class TestPaperFigure5:
    """Figure 5: top-1, f = x1 + 2*x2, 7x7 grid, points p1 and p2."""

    def setup_method(self):
        # p1 high in the top-right region, p2 slightly worse.
        self.rows = [(0.62, 0.93), (0.11, 0.95)]  # p1, p2
        self.grid, self.records = populated_grid(self.rows)
        self.f = LinearFunction([1.0, 2.0])

    def test_returns_p1(self):
        outcome = compute_top_k(self.grid, self.f, 1)
        assert [e.rid for e in outcome.entries] == [0]

    def test_starts_at_c66(self):
        outcome = compute_top_k(self.grid, self.f, 1)
        assert outcome.processed[0] == (6, 6)

    def test_minimality(self):
        """Processed cells are exactly those that can beat the result."""
        outcome = compute_top_k(self.grid, self.f, 1)
        top_score = outcome.entries[0].score
        processed = set(outcome.processed)
        for x in range(7):
            for y in range(7):
                if self.grid.maxscore((x, y), self.f) > top_score:
                    assert (x, y) in processed
        for coords in processed:
            assert self.grid.maxscore(coords, self.f) >= top_score

    def test_remaining_cells_are_unprocessed_boundary(self):
        outcome = compute_top_k(self.grid, self.f, 1)
        top_score = outcome.entries[0].score
        for coords in outcome.remaining:
            assert coords not in outcome.processed
            assert self.grid.maxscore(coords, self.f) < top_score


class TestPaperFigure7:
    def test_mixed_direction_function(self):
        """Figure 7(a): f = x1 - x2, k=2 starts bottom-right."""
        rows = [(0.9, 0.15), (0.8, 0.3), (0.2, 0.8)]  # p3, p4, p5-ish
        grid, records = populated_grid(rows)
        f = LinearFunction([1.0, -1.0])
        outcome = compute_top_k(grid, f, 2)
        assert outcome.processed[0] == (6, 0)
        assert [e.rid for e in outcome.entries] == [0, 1]

    def test_nonlinear_product_function(self):
        """Figure 7(b): f = x1 * x2, top-1."""
        rows = [(0.85, 0.85), (0.99, 0.2)]
        grid, records = populated_grid(rows)
        f = ProductFunction([0.0, 0.0])
        outcome = compute_top_k(grid, f, 1)
        assert [e.rid for e in outcome.entries] == [0]


class TestEdgeCases:
    def test_empty_grid(self):
        grid = Grid(2, 4)
        outcome = compute_top_k(grid, LinearFunction([1.0, 1.0]), 3)
        assert outcome.entries == []
        # With nothing found the whole grid is processed.
        assert len(outcome.processed) == 16
        assert outcome.remaining == []

    def test_fewer_records_than_k(self):
        grid, records = populated_grid([(0.5, 0.5), (0.2, 0.2)], cells=4)
        outcome = compute_top_k(grid, LinearFunction([1.0, 1.0]), 10)
        assert len(outcome.entries) == 2
        assert outcome.kth_key == (pytest.approx(0.4), 1)

    def test_kth_key_empty(self):
        grid = Grid(2, 2)
        outcome = compute_top_k(grid, LinearFunction([1.0, 1.0]), 1)
        assert outcome.kth_key == (float("-inf"), -1)

    def test_counters_updated(self):
        grid, _ = populated_grid([(0.9, 0.9)], cells=4)
        counters = OpCounters()
        compute_top_k(grid, LinearFunction([1.0, 1.0]), 1, counters=counters)
        assert counters.topk_computations == 1
        assert counters.cells_processed >= 1
        assert counters.points_scored == 1

    def test_score_ties_resolved_by_recency(self):
        # Two records with identical attributes: later rid wins.
        grid, records = populated_grid([(0.5, 0.5), (0.5, 0.5)], cells=4)
        outcome = compute_top_k(grid, LinearFunction([1.0, 1.0]), 1)
        assert [e.rid for e in outcome.entries] == [1]

    def test_single_cell_grid(self):
        grid, records = populated_grid([(0.2, 0.9), (0.7, 0.1)], cells=1)
        outcome = compute_top_k(grid, LinearFunction([1.0, 1.0]), 1)
        assert [e.rid for e in outcome.entries] == [0]


class TestConstrainedTraversal:
    def test_region_start_cell(self):
        grid = Grid(2, 10)
        f = LinearFunction([1.0, 1.0])
        region = Rectangle((0.2, 0.2), (0.5, 0.7))
        # Upper corner 0.5 lies exactly on a cell boundary: start cell
        # must be pulled back inside the region.
        assert start_coords(grid, f, region) == (4, 6)

    def test_region_filtering(self):
        rows = [(0.9, 0.9), (0.45, 0.65), (0.3, 0.3)]
        grid, records = populated_grid(rows, cells=10)
        f = LinearFunction([1.0, 1.0])
        region = Rectangle((0.2, 0.2), (0.5, 0.7))
        outcome = compute_top_k(grid, f, 1, region=region)
        assert [e.rid for e in outcome.entries] == [1]

    def test_region_with_mixed_directions(self):
        rows = [(0.9, 0.1), (0.45, 0.25), (0.4, 0.6)]
        grid, records = populated_grid(rows, cells=10)
        f = LinearFunction([1.0, -1.0])
        region = Rectangle((0.2, 0.2), (0.5, 0.7))
        outcome = compute_top_k(grid, f, 1, region=region)
        assert [e.rid for e in outcome.entries] == [1]

    def test_point_filter(self):
        rows = [(0.9, 0.9), (0.8, 0.8)]
        grid, records = populated_grid(rows, cells=4)
        outcome = compute_top_k(
            grid,
            LinearFunction([1.0, 1.0]),
            1,
            point_filter=lambda record: record.rid != 0,
        )
        assert [e.rid for e in outcome.entries] == [1]


class TestThresholdCollection:
    def test_collects_threshold_staircase(self):
        grid = Grid(2, 4)
        f = LinearFunction([1.0, 1.0])
        cells = collect_cells_above_threshold(grid, f, 1.5)
        expected = {
            (x, y)
            for x in range(4)
            for y in range(4)
            if grid.maxscore((x, y), f) > 1.5
        }
        assert set(cells) == expected

    def test_threshold_above_max_collects_nothing(self):
        grid = Grid(2, 4)
        f = LinearFunction([1.0, 1.0])
        assert collect_cells_above_threshold(grid, f, 2.5) == []


class TestRandomizedCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng, 120, 2)
        grid, records = populated_grid(rows, cells=6)
        weights = [rng.uniform(-1, 1) or 0.5 for _ in range(2)]
        f = LinearFunction(weights)
        k = rng.choice([1, 3, 7])
        query = TopKQuery(f, k)
        outcome = compute_top_k(grid, f, k)
        expected = brute_top_k(records, query)
        assert [e.rid for e in outcome.entries] == [e.rid for e in expected]

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_higher_dimensions(self, dims):
        rng = random.Random(dims)
        rows = random_rows(rng, 80, dims)
        grid = Grid(dims, 3)
        records = make_records(rows)
        for record in records:
            grid.insert(record)
        f = LinearFunction([1.0] * dims)
        query = TopKQuery(f, 5)
        outcome = compute_top_k(grid, f, 5)
        expected = brute_top_k(records, query)
        assert [e.rid for e in outcome.entries] == [e.rid for e in expected]

    @settings(max_examples=40, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.integers(0, 9),
                st.integers(0, 9),
            ),
            min_size=1,
            max_size=40,
        ),
        k=st.integers(1, 6),
    )
    def test_tie_heavy_integer_grid(self, points, k):
        """Crafted ties: scores collide constantly; canonical order must hold."""
        rows = [(x / 10.0, y / 10.0) for x, y in points]
        grid, records = populated_grid(rows, cells=5)
        f = LinearFunction([1.0, 1.0])
        outcome = compute_top_k(grid, f, k)
        expected = brute_top_k(records, TopKQuery(f, k))
        assert [e.rid for e in outcome.entries] == [e.rid for e in expected]
