"""Focused unit tests for the threshold monitor (Section 7)."""

import pytest

from repro.core.errors import QueryError
from repro.core.queries import ThresholdQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.core.window import CountBasedWindow, TimeBasedWindow
from repro.extensions.threshold import ThresholdMonitor


@pytest.fixture
def factory():
    return RecordFactory()


def make_monitor(capacity=10, cells=4):
    return ThresholdMonitor(
        2, CountBasedWindow(capacity), cells_per_axis=cells
    )


class TestLifecycle:
    def test_dimension_mismatch(self):
        monitor = make_monitor()
        with pytest.raises(QueryError):
            monitor.add_query(
                ThresholdQuery(LinearFunction([1.0]), threshold=0.5)
            )

    def test_unknown_query(self):
        monitor = make_monitor()
        with pytest.raises(QueryError):
            monitor.result(4)
        with pytest.raises(QueryError):
            monitor.remove_query(4)

    def test_queries_listing(self):
        monitor = make_monitor()
        query = ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.5)
        monitor.add_query(query)
        assert list(monitor.queries()) == [query]

    def test_multiple_thresholds_independent(self, factory):
        monitor = make_monitor()
        low = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=0.5)
        )
        high = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.5)
        )
        monitor.process([factory.make((0.5, 0.5))])  # score 1.0
        assert len(monitor.result(low)) == 1
        assert len(monitor.result(high)) == 0


class TestSemantics:
    def test_strictly_above_threshold(self, factory):
        monitor = make_monitor()
        qid = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.0)
        )
        at = factory.make((0.5, 0.5))  # exactly 1.0: excluded
        above = factory.make((0.51, 0.5))
        monitor.process([at, above])
        assert [e.rid for e in monitor.result(qid)] == [above.rid]

    def test_result_best_first(self, factory):
        monitor = make_monitor()
        qid = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=0.5)
        )
        records = [
            factory.make((0.4, 0.4)),
            factory.make((0.9, 0.9)),
            factory.make((0.6, 0.6)),
        ]
        monitor.process(records)
        scores = [e.score for e in monitor.result(qid)]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_above_everything(self, factory):
        monitor = make_monitor()
        qid = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=5.0)
        )
        monitor.process([factory.make((0.9, 0.9))])
        assert monitor.result(qid) == []
        # No cells carry the query either: nothing can exceed 5.
        assert all(
            qid not in cell.influence for cell in monitor.grid.cells()
        )

    def test_decreasing_direction_threshold(self, factory):
        monitor = make_monitor()
        qid = monitor.add_query(
            ThresholdQuery(LinearFunction([-1.0, -1.0]), threshold=-0.5)
        )
        small = factory.make((0.1, 0.1))  # score -0.2 > -0.5
        big = factory.make((0.9, 0.9))  # score -1.8
        monitor.process([small, big])
        assert [e.rid for e in monitor.result(qid)] == [small.rid]

    def test_time_based_window(self, factory):
        monitor = ThresholdMonitor(
            2, TimeBasedWindow(2.0), cells_per_axis=4
        )
        qid = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.0)
        )
        monitor.process([factory.make((0.9, 0.9), )])
        assert len(monitor.result(qid)) == 1
        report = monitor.process([], now=5.0)
        assert len(report.changes[qid].removed) == 1
        assert monitor.result(qid) == []

    def test_counters_accumulate(self, factory):
        monitor = make_monitor()
        monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.0)
        )
        monitor.process([factory.make((0.9, 0.9))])
        assert monitor.counters.influence_checks >= 1
