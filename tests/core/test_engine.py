"""Tests for the StreamMonitor engine."""

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError, StreamError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow, TimeBasedWindow


def make_monitor(algorithm="tma", capacity=8, cells=4):
    return StreamMonitor(
        2, CountBasedWindow(capacity), algorithm=algorithm, cells_per_axis=cells
    )


class TestLifecycle:
    def test_docstring_scenario(self):
        monitor = StreamMonitor(
            2, CountBasedWindow(4), algorithm="sma", cells_per_axis=4
        )
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 2.0]), k=1))
        records = monitor.make_records([[0.3, 0.4], [0.9, 0.8]])
        monitor.process(records)
        assert [entry.rid for entry in monitor.result(qid)] == [1]

    def test_add_and_remove_query(self):
        monitor = make_monitor()
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
        assert monitor.result(qid) == []
        monitor.remove_query(qid)
        with pytest.raises(QueryError):
            monitor.result(qid)

    def test_algorithm_instance_passthrough(self):
        from repro.algorithms.brute import BruteForceAlgorithm

        algo = BruteForceAlgorithm(2)
        monitor = StreamMonitor(2, CountBasedWindow(4), algorithm=algo)
        assert monitor.algorithm is algo

    def test_unknown_algorithm_name(self):
        with pytest.raises(ValueError):
            StreamMonitor(2, CountBasedWindow(4), algorithm="nope")


class TestProcessing:
    def test_report_contents(self):
        monitor = make_monitor(capacity=2)
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        batch = monitor.make_records([[0.2, 0.2], [0.9, 0.9]])
        report = monitor.process(batch)
        assert report.arrivals == 2
        assert report.expirations == 0
        assert qid in report.changes
        assert report.changes[qid].top_ids() == [1]

        # Push the window over capacity: the two old records expire.
        batch2 = monitor.make_records([[0.5, 0.5], [0.1, 0.1]], time_=1.0)
        report2 = monitor.process(batch2)
        assert report2.expirations == 2
        assert monitor.result(qid)[0].rid == 2
        assert monitor.valid_count == 2

    def test_clock_monotonic(self):
        monitor = make_monitor()
        monitor.process(monitor.make_records([[0.5, 0.5]], time_=5.0))
        with pytest.raises(StreamError):
            monitor.process([], now=4.0)

    def test_cycle_seconds_accumulate(self):
        monitor = make_monitor()
        monitor.process(monitor.make_records([[0.5, 0.5]]))
        monitor.process([], now=1.0)
        assert len(monitor.cycle_seconds) == 2
        assert monitor.total_cpu_seconds >= 0.0

    def test_counters_exposed(self):
        monitor = make_monitor()
        monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        monitor.process(monitor.make_records([[0.5, 0.5]]))
        assert monitor.counters.arrivals == 1


class TestBatchRegistration:
    def test_add_queries_matches_add_query(self):
        solo = make_monitor()
        batch = make_monitor()
        specs = [([1.0, 2.0], 2), ([2.0, 0.5], 1), ([1.0, 1.1], 3)]
        solo_qids = [
            solo.add_query(TopKQuery(LinearFunction(w), k=k))
            for w, k in specs
        ]
        batch_qids = batch.add_queries(
            [TopKQuery(LinearFunction(w), k=k) for w, k in specs]
        )
        assert solo_qids == batch_qids
        rows = [[0.2, 0.9], [0.8, 0.3], [0.5, 0.5]]
        solo.process(solo.make_records(rows))
        batch.process(batch.make_records(rows))
        for qid in solo_qids:
            assert [e.key for e in solo.result(qid)] == [
                e.key for e in batch.result(qid)
            ]

    def test_setup_seconds_accumulate(self):
        monitor = make_monitor()
        monitor.process(monitor.make_records([[0.5, 0.5]]))
        assert monitor.setup_seconds == []
        monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        monitor.add_queries(
            [TopKQuery(LinearFunction([0.5, 1.0]), k=2)]
        )
        assert len(monitor.setup_seconds) == 2
        assert monitor.total_setup_seconds >= 0.0
        # Registration cost never leaks into the maintenance account.
        assert len(monitor.cycle_seconds) == 1

    def test_close_is_noop_for_in_process(self):
        with make_monitor() as monitor:
            monitor.process(monitor.make_records([[0.5, 0.5]]))
        monitor.close()  # idempotent


class TestTimeBased:
    def test_advance_expires_without_arrivals(self):
        monitor = StreamMonitor(
            2,
            TimeBasedWindow(2.0),
            algorithm="tma",
            cells_per_axis=4,
        )
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        monitor.process(monitor.make_records([[0.9, 0.9]], time_=0.0))
        assert monitor.result(qid)[0].rid == 0
        report = monitor.advance(2.0)
        assert report.expirations == 1
        assert monitor.result(qid) == []

    def test_mixed_ages(self):
        monitor = StreamMonitor(
            2, TimeBasedWindow(2.0), algorithm="sma", cells_per_axis=4
        )
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
        monitor.process(monitor.make_records([[0.9, 0.9]], time_=0.0))
        monitor.process(monitor.make_records([[0.8, 0.8]], time_=1.0))
        monitor.advance(2.0)  # expires only the t=0 record
        assert [entry.rid for entry in monitor.result(qid)] == [1]


class TestDeadOnArrival:
    """A time-window arrival older than ``now - span`` must be dropped,
    not fed to the algorithm as arrival *and* expiration (the PR 3
    double-feed bugfix)."""

    @pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl", "brute"])
    def test_stale_arrival_dropped_and_reported(self, algorithm):
        monitor = StreamMonitor(
            2, TimeBasedWindow(2.0), algorithm=algorithm, cells_per_axis=4
        )
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
        # One batch spanning 5 time units: the t=0 record is already
        # expired at now=5 and must never reach the algorithm.
        records = monitor.make_records(
            [[0.9, 0.9]], time_=0.0
        ) + monitor.make_records([[0.5, 0.5]], time_=5.0)
        report = monitor.process(records)
        assert report.dead_on_arrival == 1
        assert report.arrivals == 1
        assert report.expirations == 0
        assert monitor.counters.arrivals == 1
        assert monitor.counters.expirations == 0
        assert [entry.rid for entry in monitor.result(qid)] == [1]
        assert monitor.valid_count == 1

    def test_doa_counters_not_double_fed(self):
        """TSL/SMA internal work counters must not see the dead record
        at all — previously it cost an insertion plus a removal."""
        for algorithm, counter in (("tsl", "sorted_list_updates"),
                                   ("sma", "skyband_insertions")):
            monitor = StreamMonitor(
                2,
                TimeBasedWindow(1.0),
                algorithm=algorithm,
                cells_per_axis=4,
            )
            monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
            baseline = StreamMonitor(
                2,
                TimeBasedWindow(1.0),
                algorithm=algorithm,
                cells_per_axis=4,
            )
            baseline.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
            # Identical cycles except the dead record in the first one.
            dead = monitor.make_records([[0.9, 0.9]], time_=0.0)
            live = monitor.make_records([[0.6, 0.6]], time_=5.0)
            monitor.process(dead + live)
            baseline.process(
                baseline.make_records([[0.6, 0.6]], time_=5.0), now=5.0
            )
            assert getattr(monitor.counters, counter) == getattr(
                baseline.counters, counter
            )

    def test_doa_drop_keeps_order_validation(self):
        """Dropping a stale record must not mask a misordered
        producer: genuinely out-of-order batches still fail loudly."""
        from repro.core.errors import WindowError

        monitor = StreamMonitor(
            2, TimeBasedWindow(2.0), algorithm="tma", cells_per_axis=4
        )
        records = monitor.make_records(
            [[0.5, 0.5]], time_=5.0
        ) + monitor.make_records([[0.9, 0.9]], time_=0.0)
        with pytest.raises(WindowError):
            monitor.process(records)

    def test_count_based_window_never_doa(self):
        monitor = make_monitor(capacity=2)
        monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        # Batch larger than the window: oldest spill out the same
        # cycle, but they *did* enter the window — not dead on arrival.
        report = monitor.process(
            monitor.make_records([[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]])
        )
        assert report.dead_on_arrival == 0
        assert report.arrivals == 3
        assert report.expirations == 1
