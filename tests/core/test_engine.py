"""Tests for the StreamMonitor engine."""

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError, StreamError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow, TimeBasedWindow


def make_monitor(algorithm="tma", capacity=8, cells=4):
    return StreamMonitor(
        2, CountBasedWindow(capacity), algorithm=algorithm, cells_per_axis=cells
    )


class TestLifecycle:
    def test_docstring_scenario(self):
        monitor = StreamMonitor(
            2, CountBasedWindow(4), algorithm="sma", cells_per_axis=4
        )
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 2.0]), k=1))
        records = monitor.make_records([[0.3, 0.4], [0.9, 0.8]])
        monitor.process(records)
        assert [entry.rid for entry in monitor.result(qid)] == [1]

    def test_add_and_remove_query(self):
        monitor = make_monitor()
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
        assert monitor.result(qid) == []
        monitor.remove_query(qid)
        with pytest.raises(QueryError):
            monitor.result(qid)

    def test_algorithm_instance_passthrough(self):
        from repro.algorithms.brute import BruteForceAlgorithm

        algo = BruteForceAlgorithm(2)
        monitor = StreamMonitor(2, CountBasedWindow(4), algorithm=algo)
        assert monitor.algorithm is algo

    def test_unknown_algorithm_name(self):
        with pytest.raises(ValueError):
            StreamMonitor(2, CountBasedWindow(4), algorithm="nope")


class TestProcessing:
    def test_report_contents(self):
        monitor = make_monitor(capacity=2)
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        batch = monitor.make_records([[0.2, 0.2], [0.9, 0.9]])
        report = monitor.process(batch)
        assert report.arrivals == 2
        assert report.expirations == 0
        assert qid in report.changes
        assert report.changes[qid].top_ids() == [1]

        # Push the window over capacity: the two old records expire.
        batch2 = monitor.make_records([[0.5, 0.5], [0.1, 0.1]], time_=1.0)
        report2 = monitor.process(batch2)
        assert report2.expirations == 2
        assert monitor.result(qid)[0].rid == 2
        assert monitor.valid_count == 2

    def test_clock_monotonic(self):
        monitor = make_monitor()
        monitor.process(monitor.make_records([[0.5, 0.5]], time_=5.0))
        with pytest.raises(StreamError):
            monitor.process([], now=4.0)

    def test_cycle_seconds_accumulate(self):
        monitor = make_monitor()
        monitor.process(monitor.make_records([[0.5, 0.5]]))
        monitor.process([], now=1.0)
        assert len(monitor.cycle_seconds) == 2
        assert monitor.total_cpu_seconds >= 0.0

    def test_counters_exposed(self):
        monitor = make_monitor()
        monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        monitor.process(monitor.make_records([[0.5, 0.5]]))
        assert monitor.counters.arrivals == 1


class TestTimeBased:
    def test_advance_expires_without_arrivals(self):
        monitor = StreamMonitor(
            2,
            TimeBasedWindow(2.0),
            algorithm="tma",
            cells_per_axis=4,
        )
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        monitor.process(monitor.make_records([[0.9, 0.9]], time_=0.0))
        assert monitor.result(qid)[0].rid == 0
        report = monitor.advance(2.0)
        assert report.expirations == 1
        assert monitor.result(qid) == []

    def test_mixed_ages(self):
        monitor = StreamMonitor(
            2, TimeBasedWindow(2.0), algorithm="sma", cells_per_axis=4
        )
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
        monitor.process(monitor.make_records([[0.9, 0.9]], time_=0.0))
        monitor.process(monitor.make_records([[0.8, 0.8]], time_=1.0))
        monitor.advance(2.0)  # expires only the t=0 record
        assert [entry.rid for entry in monitor.result(qid)] == [1]
