"""Tests for axis-parallel rectangles."""

import pytest

from repro.core.errors import DimensionalityError
from repro.core.regions import Rectangle


class TestConstruction:
    def test_mismatched_dims(self):
        with pytest.raises(DimensionalityError):
            Rectangle((0.0,), (1.0, 1.0))

    def test_inverted_bounds(self):
        with pytest.raises(DimensionalityError):
            Rectangle((0.5, 0.0), (0.4, 1.0))

    def test_unit(self):
        box = Rectangle.unit(3)
        assert box.lower == (0.0, 0.0, 0.0)
        assert box.upper == (1.0, 1.0, 1.0)
        assert box.dims == 3


class TestContains:
    def test_half_open_semantics(self):
        box = Rectangle((0.2, 0.2), (0.8, 0.8))
        assert box.contains((0.2, 0.5))  # lower closed
        assert not box.contains((0.8, 0.5))  # upper open
        assert box.contains((0.5, 0.5))
        assert not box.contains((0.1, 0.5))


class TestIntersects:
    def test_overlap(self):
        box = Rectangle((0.2, 0.2), (0.8, 0.8))
        assert box.intersects((0.5, 0.5), (1.0, 1.0))
        assert not box.intersects((0.8, 0.0), (1.0, 1.0))  # touch only
        assert not box.intersects((0.9, 0.9), (1.0, 1.0))

    def test_containment_is_intersection(self):
        box = Rectangle((0.0, 0.0), (1.0, 1.0))
        assert box.intersects((0.4, 0.4), (0.6, 0.6))


class TestClip:
    def test_clip_overlapping(self):
        box = Rectangle((0.2, 0.2), (0.8, 0.8))
        clipped = box.clip((0.5, 0.0), (1.0, 0.5))
        assert clipped is not None
        assert clipped.lower == (0.5, 0.2)
        assert clipped.upper == (0.8, 0.5)

    def test_clip_disjoint_returns_none(self):
        box = Rectangle((0.2, 0.2), (0.4, 0.4))
        assert box.clip((0.5, 0.5), (0.9, 0.9)) is None

    def test_clip_touching_returns_none(self):
        box = Rectangle((0.0, 0.0), (0.5, 0.5))
        assert box.clip((0.5, 0.0), (1.0, 1.0)) is None


class TestVolume:
    def test_volume(self):
        assert Rectangle((0.0, 0.0), (0.5, 0.25)).volume() == pytest.approx(
            0.125
        )

    def test_degenerate_volume(self):
        assert Rectangle((0.5, 0.0), (0.5, 1.0)).volume() == 0.0
