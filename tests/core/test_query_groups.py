"""QueryGroupRegistry: bucketing, invalidation, partitioning."""

import pytest

from repro.core.errors import QueryError
from repro.core.queries import (
    ConstrainedTopKQuery,
    QueryGroupRegistry,
    TopKQuery,
)
from repro.core.regions import Rectangle
from repro.core.scoring import LinearFunction, ProductFunction


def make_query(weights, qid, k=3):
    query = TopKQuery(LinearFunction(weights), k=k)
    query.qid = qid
    return query


class TestBucketing:
    def test_similar_vectors_share_a_bucket(self):
        registry = QueryGroupRegistry()
        a = make_query([0.60, 0.40], qid=0)
        b = make_query([0.61, 0.41], qid=1)
        assert registry.key_of(a) == registry.key_of(b)

    def test_scaling_does_not_change_the_bucket(self):
        """Angular buckets: c·f has the same top-k as f."""
        registry = QueryGroupRegistry()
        assert registry.key_of(make_query([0.3, 0.2], 0)) == registry.key_of(
            make_query([0.9, 0.6], 1)
        )

    def test_orthogonal_vectors_split(self):
        registry = QueryGroupRegistry()
        assert registry.key_of(make_query([1.0, 0.05], 0)) != registry.key_of(
            make_query([0.05, 1.0], 1)
        )

    def test_directions_split_buckets(self):
        registry = QueryGroupRegistry()
        assert registry.key_of(make_query([0.5, 0.5], 0)) != registry.key_of(
            make_query([0.5, -0.5], 1)
        )

    def test_non_groupable_species(self):
        registry = QueryGroupRegistry()
        product = TopKQuery(ProductFunction([0.1, 0.1]), k=2)
        constrained = ConstrainedTopKQuery(
            LinearFunction([0.5, 0.5]),
            k=2,
            constraint=Rectangle((0.0, 0.0), (0.5, 0.5)),
        )
        zero = make_query([0.0, 0.0], qid=9)
        assert registry.key_of(product) is None
        assert registry.key_of(constrained) is None
        assert registry.key_of(zero) is None

    def test_invalid_parameters(self):
        with pytest.raises(QueryError):
            QueryGroupRegistry(resolution=0)
        with pytest.raises(QueryError):
            QueryGroupRegistry(max_group_size=0)


class TestChurn:
    def test_add_and_discard_track_membership(self):
        registry = QueryGroupRegistry()
        queries = [make_query([0.6, 0.4], qid) for qid in range(3)]
        for query in queries:
            registry.add(query)
        assert len(registry) == 3
        assert registry.groups() == [[0, 1, 2]]
        registry.discard(1)
        assert 1 not in registry
        assert registry.groups() == [[0, 2]]
        registry.discard(1)  # idempotent
        assert len(registry) == 2

    def test_add_ungroupable_is_a_noop(self):
        registry = QueryGroupRegistry()
        registry.add(TopKQuery(ProductFunction([0.1, 0.1]), k=2))
        assert len(registry) == 0


class TestPartition:
    def test_partition_groups_known_and_isolates_unknown(self):
        registry = QueryGroupRegistry()
        similar = [make_query([0.7, 0.3], qid) for qid in range(4)]
        lone = make_query([0.05, 1.0], qid=10)
        stranger = make_query([0.7, 0.3], qid=99)  # never add()ed
        for query in similar + [lone]:
            registry.add(query)
        groups = registry.partition(similar + [lone, stranger])
        sizes = sorted(len(group) for group in groups)
        assert sizes == [1, 1, 4]
        assert [stranger] in groups
        assert [lone] in groups

    def test_partition_respects_max_group_size(self):
        registry = QueryGroupRegistry(max_group_size=3)
        queries = [make_query([0.5, 0.5], qid) for qid in range(8)]
        for query in queries:
            registry.add(query)
        groups = registry.partition(queries)
        assert [len(group) for group in groups] == [3, 3, 2]
        # members keep caller order within and across chunks
        assert [query.qid for group in groups for query in group] == list(
            range(8)
        )

    def test_partition_is_deterministic(self):
        registry = QueryGroupRegistry()
        queries = [
            make_query([0.6 + 0.001 * qid, 0.4], qid) for qid in range(6)
        ]
        for query in queries:
            registry.add(query)
        first = registry.partition(queries)
        second = registry.partition(queries)
        assert [[q.qid for q in g] for g in first] == [
            [q.qid for q in g] for g in second
        ]
