"""Tests for records, factories, and the canonical rank order."""

import pytest

from repro.core.errors import DimensionalityError
from repro.core.tuples import (
    MIN_RANK_KEY,
    RecordFactory,
    StreamRecord,
    iter_sorted_by_rank,
    rank_key,
)


class TestStreamRecord:
    def test_fields(self):
        record = StreamRecord(7, (0.1, 0.2), 3.0)
        assert record.rid == 7
        assert record.attrs == (0.1, 0.2)
        assert record.time == 3.0
        assert record.dims == 2

    def test_frozen(self):
        record = StreamRecord(0, (0.5,))
        with pytest.raises(AttributeError):
            record.rid = 1

    def test_require_dims(self):
        record = StreamRecord(0, (0.5, 0.5))
        record.require_dims(2)
        with pytest.raises(DimensionalityError):
            record.require_dims(3)


class TestRecordFactory:
    def test_ids_are_consecutive(self):
        factory = RecordFactory()
        records = [factory.make([0.1]), factory.make([0.2])]
        assert [r.rid for r in records] == [0, 1]
        assert factory.next_id == 2

    def test_start_offset(self):
        factory = RecordFactory(start=100)
        assert factory.make([0.0]).rid == 100

    def test_make_batch(self):
        factory = RecordFactory()
        batch = factory.make_batch([[0.1], [0.2], [0.3]], time=5.0)
        assert [r.rid for r in batch] == [0, 1, 2]
        assert all(r.time == 5.0 for r in batch)

    def test_attrs_are_tuples(self):
        record = RecordFactory().make([0.1, 0.2])
        assert isinstance(record.attrs, tuple)


class TestRankOrder:
    def test_rank_key(self):
        record = StreamRecord(4, (0.5,))
        assert rank_key(0.7, record) == (0.7, 4)

    def test_min_rank_key_below_everything(self):
        assert MIN_RANK_KEY < (float("-1e300"), 0)
        assert MIN_RANK_KEY < (0.0, -1)

    def test_score_ties_broken_by_later_arrival(self):
        older = StreamRecord(1, (0.5,))
        newer = StreamRecord(2, (0.5,))
        assert rank_key(0.5, newer) > rank_key(0.5, older)

    def test_iter_sorted_by_rank(self):
        a = StreamRecord(1, (0.0,))
        b = StreamRecord(2, (0.0,))
        c = StreamRecord(3, (0.0,))
        pairs = [(0.3, a), (0.9, b), (0.3, c)]
        ordered = list(iter_sorted_by_rank(pairs))
        assert [record.rid for _, record in ordered] == [2, 3, 1]
