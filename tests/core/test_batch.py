"""Batch-scoring subsystem: backend helpers and the exactness contract.

The load-bearing property: for every preference-function family and
both block representations (packed backend matrix and plain row list),
``score_batch`` returns exactly — bitwise — what per-record ``score``
returns. The canonical rank order ``(score, rid)`` resolves ties by
rid, so any last-bit deviation could reorder records near a tie and
desynchronise a vectorized algorithm from the brute-force oracle.
"""

import math
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import batch
from repro.core.batch import (
    ArrivalScorer,
    as_matrix,
    indices_at_least,
    is_matrix,
    take_at_least,
    to_list,
)
from repro.core.scoring import (
    CallableFunction,
    LinearFunction,
    ProductFunction,
    QuadraticFunction,
)
from repro.core.tuples import RecordFactory

finite = st.floats(
    min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
unit = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def matrices(dims, rows_strategy, values=unit):
    return st.lists(
        st.tuples(*[values] * dims), min_size=1, max_size=rows_strategy
    )


def make_functions(dims, coefficients):
    return [
        LinearFunction(coefficients),
        QuadraticFunction(coefficients),
        ProductFunction([abs(c) for c in coefficients]),
        CallableFunction(
            lambda *attrs: math.fsum(attrs),
            directions=[1] * dims,
            label="fsum",
        ),
    ]


class TestExactness:
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.data(),
        dims=st.integers(1, 6),
    )
    def test_score_batch_equals_scalar_score(self, data, dims):
        coefficients = data.draw(
            st.lists(finite, min_size=dims, max_size=dims)
        )
        rows = data.draw(matrices(dims, 24))
        for function in make_functions(dims, coefficients):
            expected = [function.score(row) for row in rows]
            # Packed representation (ndarray under the NumPy backend).
            packed = to_list(function.score_batch(as_matrix(rows)))
            assert packed == expected, function
            # Plain row-list representation (the fallback path).
            plain = to_list(function.score_batch(list(rows)))
            assert plain == expected, function

    def test_tie_heavy_grid_scores_stay_tied(self):
        # Values on a coarse lattice collide constantly; batched and
        # scalar scores must collide identically.
        rows = [
            (x / 10.0, y / 10.0) for x in range(11) for y in range(11)
        ]
        function = LinearFunction([1.0, 1.0])
        assert to_list(function.score_batch(as_matrix(rows))) == [
            function.score(row) for row in rows
        ]


class TestBackendHelpers:
    def test_backend_is_declared(self):
        assert batch.BACKEND in ("numpy", "python")
        assert batch.HAVE_NUMPY == (batch.BACKEND == "numpy")

    def test_as_matrix_empty_is_row_list(self):
        assert as_matrix([]) == []

    def test_as_matrix_roundtrip_is_lossless(self):
        rows = [(0.1, 0.2), (1 / 3, 2 / 3)]
        matrix = as_matrix(rows)
        if is_matrix(matrix):
            assert matrix.tolist() == [list(row) for row in rows]
        else:
            assert matrix == rows

    def test_to_list_returns_python_floats(self):
        function = LinearFunction([0.5, 0.5])
        values = to_list(function.score_batch(as_matrix([(0.2, 0.4)])))
        assert all(type(value) is float for value in values)

    def test_indices_at_least_matches_loop(self):
        function = LinearFunction([1.0, 1.0])
        rows = [(0.1, 0.1), (0.5, 0.5), (0.3, 0.7), (0.9, 0.9)]
        vector = function.score_batch(as_matrix(rows))
        values = to_list(vector)
        for threshold in (-1.0, 0.2, 1.0, 1.7999, 1.8, 2.5):
            expected = [
                index
                for index, value in enumerate(values)
                if value >= threshold
            ]
            assert indices_at_least(vector, threshold) == expected

    def test_indices_at_least_includes_exact_ties(self):
        function = LinearFunction([1.0, 1.0])
        vector = function.score_batch(as_matrix([(0.25, 0.25)]))
        threshold = function.score((0.25, 0.25))
        assert indices_at_least(vector, threshold) == [0]

    def test_take_at_least_matches_indices_and_values(self):
        function = LinearFunction([1.0, 1.0])
        rows = [(0.1, 0.1), (0.5, 0.5), (0.3, 0.7), (0.9, 0.9)]
        vector = function.score_batch(as_matrix(rows))
        values = to_list(vector)
        for threshold in (-1.0, 0.2, 1.0, 1.8, 2.5):
            indices, picked = take_at_least(vector, threshold)
            assert indices == indices_at_least(vector, threshold)
            assert picked == [values[index] for index in indices]
            assert all(type(value) is float for value in picked)


class TestArrivalScorer:
    def test_scores_match_scalar(self):
        factory = RecordFactory()
        records = [
            factory.make((0.1 * i, 1.0 - 0.05 * i)) for i in range(12)
        ]
        scorer = ArrivalScorer(records)
        function = LinearFunction([0.7, 0.3])
        expected = [function.score(record.attrs) for record in records]
        assert scorer.scores(function) == expected
        for index in (0, 5, 11):
            assert scorer.score_of(function, index) == expected[index]

    def test_survivors_prefilter(self):
        factory = RecordFactory()
        records = [factory.make((value, value)) for value in (0.1, 0.5, 0.9)]
        scorer = ArrivalScorer(records)
        function = LinearFunction([1.0, 1.0])
        assert scorer.survivors(function, 1.0) == [1, 2]
        # A threshold equal to a score keeps that arrival (rid ties).
        assert scorer.survivors(function, function.score((0.9, 0.9))) == [2]

    def test_cache_is_per_function(self):
        factory = RecordFactory()
        records = [factory.make((0.2, 0.8))]
        scorer = ArrivalScorer(records)
        first = LinearFunction([1.0, 0.0])
        second = LinearFunction([0.0, 1.0])
        assert scorer.scores(first) == [pytest.approx(0.2)]
        assert scorer.scores(second) == [pytest.approx(0.8)]


class TestPythonBackendProcess:
    def test_env_override_forces_python_backend(self):
        """REPRO_BATCH_BACKEND=python must disable NumPy and stay exact."""
        code = (
            "from repro.core import batch\n"
            "from repro.core.scoring import LinearFunction\n"
            "assert batch.BACKEND == 'python', batch.BACKEND\n"
            "assert batch.np is None\n"
            "f = LinearFunction([0.3, -0.7])\n"
            "rows = [(0.1, 0.9), (0.5, 0.5)]\n"
            "m = batch.as_matrix(rows)\n"
            "assert not batch.is_matrix(m)\n"
            "assert batch.to_list(f.score_batch(m)) == "
            "[f.score(r) for r in rows]\n"
            "print('ok')\n"
        )
        env = dict(os.environ, REPRO_BATCH_BACKEND="python")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"
