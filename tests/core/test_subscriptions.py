"""Unit tests for push subscriptions and change streams."""

import random

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError, StreamError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow


def make_monitor(algorithm="tma"):
    return StreamMonitor(
        2, CountBasedWindow(40), algorithm=algorithm, cells_per_axis=4
    )


def feed(monitor, rng, count=12, time_=0.0):
    monitor.process(
        monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(count)],
            time_=time_,
        )
    )


class TestCallbacks:
    def test_subscribe_receives_cycle_deltas(self):
        rng = random.Random(1)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        received = []
        handle.subscribe(received.append)
        report = monitor.process(
            monitor.make_records([[0.9, 0.9], [0.8, 0.7]])
        )
        assert len(received) == 1
        change = received[0]
        assert change is report.changes[handle.qid]
        assert change.cause == "cycle"
        feed(monitor, rng, time_=1.0)
        assert all(change.qid == handle.qid for change in received)

    def test_subscription_cancel_stops_delivery(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        received = []
        subscription = handle.subscribe(received.append)
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        subscription.cancel()
        subscription.cancel()  # idempotent
        assert not subscription.active
        monitor.process(monitor.make_records([[0.95, 0.95]], time_=1.0))
        assert len(received) == 1

    def test_subscribe_unknown_qid_raises(self):
        monitor = make_monitor()
        with pytest.raises(QueryError):
            monitor.subscribe(9, lambda change: None)

    def test_subscribe_all_fans_in_every_query(self):
        monitor = make_monitor()
        received = []
        monitor.subscribe_all(received.append)
        first = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        second = monitor.add_query(
            TopKQuery(LinearFunction([0.1, 1.0]), k=1)
        )
        causes = [(change.qid, change.cause) for change in received]
        # Cycle delta for the first query, then the second query's
        # initial result as a register delta.
        assert (first.qid, "cycle") in causes
        assert (second.qid, "register") in causes

    def test_cancel_emits_final_clearing_delta(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        received = []
        handle.subscribe(received.append)
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        handle.cancel()
        assert received[-1].cause == "cancel"
        assert received[-1].top == []
        assert [e.rid for e in received[-1].removed] == [0]


class TestChangeStreams:
    def test_stream_buffers_between_drains(self):
        rng = random.Random(2)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        stream = handle.changes()
        feed(monitor, rng, time_=0.0)
        monitor.process(
            monitor.make_records([[0.97, 0.98]], time_=1.0)
        )
        assert stream.pending >= 1
        first_drain = list(stream)
        assert stream.pending == 0
        monitor.process(
            monitor.make_records([[0.99, 0.99]], time_=2.0)
        )
        second_drain = stream.drain()
        # Iteration resumes after a drain: no delta lost, none
        # repeated, and the last delta's top is the live result.
        assert len(first_drain) + len(second_drain) >= 2
        assert second_drain[-1].top_ids() == [
            entry.rid for entry in handle.result()
        ]

    def test_monitor_wide_stream(self):
        monitor = make_monitor()
        stream = monitor.changes()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        causes = [change.cause for change in stream]
        assert causes == ["cycle"]
        assert stream.qid is None

    def test_stream_closes_with_query(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes()
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        handle.cancel()
        assert stream.closed
        # The cycle delta and the final cancel delta stay drainable.
        causes = [change.cause for change in stream]
        assert causes == ["cycle", "cancel"]

    def test_stream_close_is_idempotent(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes()
        stream.close()
        stream.close()
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        assert stream.pending == 0


class TestCloseSemantics:
    def test_close_marks_handles_and_subscriptions(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes()
        subscription = handle.subscribe(lambda change: None)
        monitor.close()
        monitor.close()  # idempotent
        assert monitor.closed
        assert handle.closed
        assert stream.closed
        assert not subscription.active
        with pytest.raises(QueryError):
            handle.result()
        with pytest.raises(StreamError):
            monitor.process([])
        with pytest.raises(StreamError):
            monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        with pytest.raises(StreamError):
            monitor.subscribe_all(lambda change: None)

    def test_cancelled_handle_stays_cancelled_after_close(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        handle.cancel()
        monitor.close()
        assert handle.cancelled  # not overwritten to closed


class TestDispatchDiscipline:
    def test_callbacks_run_after_maintenance_clock(self):
        """Subscriber work must not pollute cycle_seconds: a slow
        callback cannot change the number of timed cycles, and the
        timing entry exists before the callback runs."""
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        observed = []
        handle.subscribe(
            lambda change: observed.append(len(monitor.cycle_seconds))
        )
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        assert observed == [1]

    def test_callback_exceptions_propagate(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )

        def explode(change):
            raise RuntimeError("subscriber bug")

        handle.subscribe(explode)
        with pytest.raises(RuntimeError):
            monitor.process(monitor.make_records([[0.9, 0.9]]))


class TestBoundedStreams:
    def test_default_buffer_is_bounded(self):
        from repro.core.subscriptions import DEFAULT_STREAM_MAXLEN

        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes()
        assert stream.maxlen == DEFAULT_STREAM_MAXLEN
        assert stream.dropped == 0

    def test_overflow_drops_oldest_and_counts(self):
        rng = random.Random(4)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=3)
        )
        stream = handle.changes(maxlen=2)
        deltas = 0
        cycle = 0
        while deltas < 6:
            feed(monitor, rng, time_=float(cycle))
            cycle += 1
            deltas = stream.pending + stream.dropped
        assert stream.pending == 2
        assert stream.dropped >= 4
        assert stream.high_watermark == 2
        # The newest deltas survive: the last one's top is the live
        # result.
        drained = stream.drain()
        assert drained[-1].top_ids() == [
            entry.rid for entry in handle.result()
        ]
        monitor.close()

    def test_invalid_maxlen_rejected(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        with pytest.raises(ValueError):
            handle.changes(maxlen=0)
        monitor.close()

    def test_delivery_stats_surface_drops(self):
        rng = random.Random(5)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=3)
        )
        stream = handle.changes(maxlen=1)
        assert monitor.dropped_changes == 0
        cycle = 0
        while stream.dropped == 0:
            feed(monitor, rng, time_=float(cycle))
            cycle += 1
        stats = monitor.delivery_stats()
        assert stats["dropped_changes"] == stream.dropped
        assert stats["streams"] == 1
        assert stats["subscriptions"] == 1
        assert stats["buffered_changes"] == stream.pending
        assert stats["high_watermark"] >= 1
        assert monitor.dropped_changes == stream.dropped
        monitor.close()

    def test_get_with_timeout(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes()
        assert stream.get(timeout=0.05) is None  # nothing buffered
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        change = stream.get(timeout=1.0)
        assert change is not None and change.cause == "cycle"
        monitor.close()
        assert stream.get(timeout=0.05) is None  # closed and empty


class TestBlockingStreams:
    """close() while a changes() stream is mid-iteration must
    terminate the consumer cleanly — never leave it blocked forever."""

    def consume_in_thread(self, stream):
        import threading

        seen = []
        done = threading.Event()

        def run():
            for change in stream:  # blocking iteration
                seen.append(change)
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return seen, done, thread

    def test_blocking_iteration_delivers_then_stops_on_close(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes(block=True)
        seen, done, thread = self.consume_in_thread(stream)
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        deadline = 50
        while not seen and deadline:
            import time as _time

            _time.sleep(0.01)
            deadline -= 1
        assert seen and seen[0].cause == "cycle"
        monitor.close()
        assert done.wait(timeout=5), (
            "blocked stream iterator did not terminate on monitor close"
        )
        thread.join(timeout=5)

    def test_blocked_iterator_wakes_on_monitor_close(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes(block=True)
        seen, done, thread = self.consume_in_thread(stream)
        # No deltas at all: the iterator is parked on an empty buffer.
        monitor.close()
        assert done.wait(timeout=5)
        assert seen == []
        thread.join(timeout=5)

    def test_blocked_iterator_wakes_on_query_cancel(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes(block=True)
        seen, done, thread = self.consume_in_thread(stream)
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        handle.cancel()
        assert done.wait(timeout=5)
        # The cycle delta and the final cancel delta were both drained
        # before the iterator stopped.
        assert [change.cause for change in seen] == ["cycle", "cancel"]
        thread.join(timeout=5)

    def test_blocked_iterator_wakes_on_stream_close(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes(block=True)
        seen, done, thread = self.consume_in_thread(stream)
        stream.close()
        assert done.wait(timeout=5)
        monitor.close()
        thread.join(timeout=5)
