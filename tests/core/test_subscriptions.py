"""Unit tests for push subscriptions and change streams."""

import random

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError, StreamError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow


def make_monitor(algorithm="tma"):
    return StreamMonitor(
        2, CountBasedWindow(40), algorithm=algorithm, cells_per_axis=4
    )


def feed(monitor, rng, count=12, time_=0.0):
    monitor.process(
        monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(count)],
            time_=time_,
        )
    )


class TestCallbacks:
    def test_subscribe_receives_cycle_deltas(self):
        rng = random.Random(1)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        received = []
        handle.subscribe(received.append)
        report = monitor.process(
            monitor.make_records([[0.9, 0.9], [0.8, 0.7]])
        )
        assert len(received) == 1
        change = received[0]
        assert change is report.changes[handle.qid]
        assert change.cause == "cycle"
        feed(monitor, rng, time_=1.0)
        assert all(change.qid == handle.qid for change in received)

    def test_subscription_cancel_stops_delivery(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        received = []
        subscription = handle.subscribe(received.append)
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        subscription.cancel()
        subscription.cancel()  # idempotent
        assert not subscription.active
        monitor.process(monitor.make_records([[0.95, 0.95]], time_=1.0))
        assert len(received) == 1

    def test_subscribe_unknown_qid_raises(self):
        monitor = make_monitor()
        with pytest.raises(QueryError):
            monitor.subscribe(9, lambda change: None)

    def test_subscribe_all_fans_in_every_query(self):
        monitor = make_monitor()
        received = []
        monitor.subscribe_all(received.append)
        first = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        second = monitor.add_query(
            TopKQuery(LinearFunction([0.1, 1.0]), k=1)
        )
        causes = [(change.qid, change.cause) for change in received]
        # Cycle delta for the first query, then the second query's
        # initial result as a register delta.
        assert (first.qid, "cycle") in causes
        assert (second.qid, "register") in causes

    def test_cancel_emits_final_clearing_delta(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        received = []
        handle.subscribe(received.append)
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        handle.cancel()
        assert received[-1].cause == "cancel"
        assert received[-1].top == []
        assert [e.rid for e in received[-1].removed] == [0]


class TestChangeStreams:
    def test_stream_buffers_between_drains(self):
        rng = random.Random(2)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        stream = handle.changes()
        feed(monitor, rng, time_=0.0)
        monitor.process(
            monitor.make_records([[0.97, 0.98]], time_=1.0)
        )
        assert stream.pending >= 1
        first_drain = list(stream)
        assert stream.pending == 0
        monitor.process(
            monitor.make_records([[0.99, 0.99]], time_=2.0)
        )
        second_drain = stream.drain()
        # Iteration resumes after a drain: no delta lost, none
        # repeated, and the last delta's top is the live result.
        assert len(first_drain) + len(second_drain) >= 2
        assert second_drain[-1].top_ids() == [
            entry.rid for entry in handle.result()
        ]

    def test_monitor_wide_stream(self):
        monitor = make_monitor()
        stream = monitor.changes()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        causes = [change.cause for change in stream]
        assert causes == ["cycle"]
        assert stream.qid is None

    def test_stream_closes_with_query(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes()
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        handle.cancel()
        assert stream.closed
        # The cycle delta and the final cancel delta stay drainable.
        causes = [change.cause for change in stream]
        assert causes == ["cycle", "cancel"]

    def test_stream_close_is_idempotent(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes()
        stream.close()
        stream.close()
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        assert stream.pending == 0


class TestCloseSemantics:
    def test_close_marks_handles_and_subscriptions(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        stream = handle.changes()
        subscription = handle.subscribe(lambda change: None)
        monitor.close()
        monitor.close()  # idempotent
        assert monitor.closed
        assert handle.closed
        assert stream.closed
        assert not subscription.active
        with pytest.raises(QueryError):
            handle.result()
        with pytest.raises(StreamError):
            monitor.process([])
        with pytest.raises(StreamError):
            monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
        with pytest.raises(StreamError):
            monitor.subscribe_all(lambda change: None)

    def test_cancelled_handle_stays_cancelled_after_close(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        handle.cancel()
        monitor.close()
        assert handle.cancelled  # not overwritten to closed


class TestDispatchDiscipline:
    def test_callbacks_run_after_maintenance_clock(self):
        """Subscriber work must not pollute cycle_seconds: a slow
        callback cannot change the number of timed cycles, and the
        timing entry exists before the callback runs."""
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        observed = []
        handle.subscribe(
            lambda change: observed.append(len(monitor.cycle_seconds))
        )
        monitor.process(monitor.make_records([[0.9, 0.9]]))
        assert observed == [1]

    def test_callback_exceptions_propagate(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )

        def explode(change):
            raise RuntimeError("subscriber bug")

        handle.subscribe(explode)
        with pytest.raises(RuntimeError):
            monitor.process(monitor.make_records([[0.9, 0.9]]))
