"""Unit tests for the QueryHandle surface of the unified facade."""

import random

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError
from repro.core.handles import QueryHandle
from repro.core.queries import ThresholdQuery, TopKQuery
from repro.core.scoring import LinearFunction, ProductFunction
from repro.core.window import CountBasedWindow

from tests.conftest import brute_top_k


def make_monitor(algorithm="tma", capacity=60, cells=4):
    return StreamMonitor(
        2, CountBasedWindow(capacity), algorithm=algorithm,
        cells_per_axis=cells,
    )


def feed(monitor, rng, count=20, time_=0.0):
    batch = monitor.make_records(
        [(rng.random(), rng.random()) for _ in range(count)], time_=time_
    )
    monitor.process(batch)
    return batch


class TestIntLikeness:
    """Handles must be drop-in replacements for raw qids."""

    def test_add_query_returns_handle(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        assert isinstance(handle, QueryHandle)
        assert handle.qid == 0
        assert int(handle) == 0
        assert handle == 0
        assert hash(handle) == hash(0)

    def test_handle_as_report_key(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        report = monitor.process(monitor.make_records([[0.9, 0.9]]))
        assert handle in report.changes
        assert report.changes[handle].top_ids() == [0]

    def test_handle_in_qid_apis(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        assert monitor.result(handle) == []
        monitor.remove_query(handle)
        with pytest.raises(QueryError):
            monitor.result(handle)

    def test_handles_sort_and_compare(self):
        monitor = make_monitor()
        handles = monitor.add_queries(
            [
                TopKQuery(LinearFunction([1.0, 1.0]), k=1),
                TopKQuery(LinearFunction([0.5, 1.0]), k=1),
            ]
        )
        assert sorted(handles, reverse=True) == [handles[1], handles[0]]
        assert handles[0] < handles[1]
        assert handles[0] < 1

    def test_monitor_handle_lookup(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        assert monitor.handle(0) is handle
        assert monitor.handles() == [handle]
        with pytest.raises(QueryError):
            monitor.handle(7)


class TestLifecycleOps:
    def test_result_matches_pull_api(self):
        rng = random.Random(1)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 2.0]), k=3)
        )
        feed(monitor, rng)
        assert handle.result() == monitor.result(handle.qid)

    def test_cancel_scrubs_and_blocks_further_ops(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        handle.cancel()
        assert handle.cancelled
        for operation in (
            handle.result,
            handle.cancel,
            handle.pause,
            handle.resume,
            lambda: handle.update(k=2),
        ):
            with pytest.raises(QueryError):
                operation()

    def test_error_messages_are_descriptive(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        handle.cancel()
        with pytest.raises(QueryError) as excinfo:
            monitor.result(handle)
        message = str(excinfo.value)
        assert "0" in message  # the qid
        assert "monitor" in message  # the monitor state description
        with pytest.raises(QueryError) as excinfo:
            monitor.remove_query(41)
        assert "41" in str(excinfo.value)

    def test_pause_freezes_result_and_skips_maintenance(self):
        rng = random.Random(2)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=3)
        )
        feed(monitor, rng, time_=0.0)
        frozen = handle.result()
        handle.pause()
        assert handle.paused
        checks_before = monitor.counters.influence_checks
        feed(monitor, rng, time_=1.0)
        # No per-query maintenance ran for the paused query (it is the
        # only query, so influence work must stay flat).
        assert monitor.counters.influence_checks == checks_before
        assert handle.result() == frozen

    def test_resume_is_exact_resync(self):
        rng = random.Random(3)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 2.0]), k=3)
        )
        window = []
        window += feed(monitor, rng, time_=0.0)
        handle.pause()
        window += feed(monitor, rng, time_=1.0)
        window += feed(monitor, rng, time_=2.0)
        window = window[-60:]
        handle.resume()
        assert handle.active
        expected = brute_top_k(window, handle.query)
        assert [e.key for e in handle.result()] == [
            e.key for e in expected
        ]

    def test_double_pause_and_resume_unpaused_raise(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        with pytest.raises(QueryError):
            handle.resume()
        handle.pause()
        with pytest.raises(QueryError):
            handle.pause()

    def test_mutation_cost_accounted_separately(self):
        rng = random.Random(4)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=4)
        )
        feed(monitor, rng)
        cycles_before = len(monitor.cycle_seconds)
        setup_before = len(monitor.setup_seconds)
        handle.pause()
        handle.resume()
        handle.update(k=2)
        assert len(monitor.mutation_seconds) == 3
        assert monitor.total_mutation_seconds >= 0.0
        assert len(monitor.cycle_seconds) == cycles_before
        assert len(monitor.setup_seconds) == setup_before


class TestUpdate:
    @pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl", "brute"])
    @pytest.mark.parametrize(
        "mutation",
        [
            {"k": 2},               # decrease
            {"k": 9},               # increase
            {"weights": [0.2, 1.7]},
            {"k": 5, "weights": [1.4, 0.3]},
        ],
    )
    def test_update_matches_cancel_and_reregister(
        self, algorithm, mutation
    ):
        """The acceptance contract: update() == cancel + re-register,
        with the window state reused (no stream replay)."""
        rng = random.Random(7)
        rows = [
            [(rng.random(), rng.random()) for _ in range(15)]
            for _ in range(6)
        ]
        updated = make_monitor(algorithm)
        fresh = make_monitor(algorithm)
        handle = updated.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=5)
        )
        for cycle, batch in enumerate(rows):
            updated.process(
                updated.make_records(batch, time_=float(cycle))
            )
            fresh.process(fresh.make_records(batch, time_=float(cycle)))
        got = handle.update(**mutation)

        new_k = mutation.get("k", 5)
        weights = mutation.get("weights", [1.0, 1.0])
        reference = fresh.add_query(
            TopKQuery(LinearFunction(weights), k=new_k)
        )
        assert [e.key for e in got] == [
            e.key for e in reference.result()
        ]
        assert [e.key for e in handle.result()] == [
            e.key for e in got
        ]

    @pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl"])
    def test_maintenance_stays_exact_after_update(self, algorithm):
        rng = random.Random(8)
        monitor = make_monitor(algorithm)
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=5)
        )
        window = []
        for cycle in range(4):
            window += feed(monitor, rng, 15, time_=float(cycle))
        handle.update(k=2, weights=[0.4, 1.3])
        for cycle in range(4, 8):
            window += feed(monitor, rng, 15, time_=float(cycle))
        window = window[-60:]
        expected = brute_top_k(window, handle.query)
        assert [e.key for e in handle.result()] == [
            e.key for e in expected
        ]

    def test_update_validation(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        with pytest.raises(QueryError):
            handle.update(k=0)
        with pytest.raises(QueryError):
            handle.update(weights=[1.0])  # wrong dims
        with pytest.raises(QueryError):
            handle.update(
                weights=[1.0, 1.0],
                function=ProductFunction([1.0, 1.0]),
            )
        # No-op update returns the current result unchanged.
        assert handle.update() == handle.result()

    def test_update_while_paused_applies_at_resume(self):
        rng = random.Random(9)
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=5)
        )
        window = feed(monitor, rng, 30)
        handle.pause()
        handle.update(k=2)
        handle.resume()
        expected = brute_top_k(list(window), handle.query)
        assert handle.query.k == 2
        assert [e.key for e in handle.result()] == [
            e.key for e in expected
        ]

    @pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl", "brute"])
    def test_failed_update_rolls_back(self, algorithm):
        """A preference function that blows up mid-recomputation must
        not destroy the running query: the previous spec is restored
        and maintenance continues."""
        from repro.core.scoring import CallableFunction

        rng = random.Random(10)
        monitor = make_monitor(algorithm)
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=3)
        )
        window = feed(monitor, rng, 20)
        before = handle.result()
        bomb = CallableFunction(lambda x1, x2: 1 / 0, directions=[1, 1])
        with pytest.raises(ZeroDivisionError):
            handle.update(function=bomb)
        assert handle.query.k == 3
        assert handle.query.function.weights == (1.0, 1.0)
        assert handle.result() == before
        window = list(window) + feed(monitor, rng, 20, time_=1.0)
        expected = brute_top_k(window[-60:], handle.query)
        assert [e.key for e in handle.result()] == [
            e.key for e in expected
        ]

    def test_cancel_releases_handle_entry(self):
        """Register/cancel churn must not grow the monitor: the
        handle table drops terminated entries (the caller's own
        reference keeps reporting state)."""
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=1)
        )
        handle.cancel()
        assert handle.cancelled
        assert monitor.handles() == []
        with pytest.raises(QueryError):
            monitor.handle(handle.qid)

    def test_threshold_update_refused(self):
        monitor = make_monitor()
        handle = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.0)
        )
        with pytest.raises(QueryError):
            handle.update(k=3)
