"""Public-API surface tests: what README promises must import and work."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_readme_quickstart_compiles(self):
        from repro import (
            CountBasedWindow,
            LinearFunction,
            StreamMonitor,
            TopKQuery,
        )

        monitor = StreamMonitor(
            dims=2, window=CountBasedWindow(100), algorithm="sma"
        )
        qid = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 2.0]), k=10)
        )
        report = monitor.process(
            monitor.make_records([[0.5, 0.5], [0.9, 0.9]])
        )
        assert qid in report.changes
        for entry in report.changes[qid].top:
            assert entry.score > 0


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.grid",
            "repro.algorithms",
            "repro.skyband",
            "repro.structures",
            "repro.streams",
            "repro.extensions",
            "repro.analysis",
            "repro.bench",
            "repro.skyband.prediction",
            "repro.grid.naive",
            "repro.structures.skiplist",
            "repro.bench.cli",
        ],
    )
    def test_imports_cleanly(self, module):
        importlib.import_module(module)

    def test_subpackage_all_resolve(self):
        for name in ("core", "grid", "algorithms", "skyband", "streams"):
            module = importlib.import_module(f"repro.{name}")
            for export in getattr(module, "__all__", []):
                assert hasattr(module, export), f"{name}.{export}"


class TestDocstringCoverage:
    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.core.engine",
            "repro.core.scoring",
            "repro.core.window",
            "repro.grid.grid",
            "repro.grid.traversal",
            "repro.algorithms.tma",
            "repro.algorithms.sma",
            "repro.algorithms.tsl",
            "repro.skyband.skyband",
            "repro.analysis.cost_model",
        ],
    )
    def test_module_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 80, module

    def test_public_classes_documented(self):
        import inspect

        from repro.algorithms.sma import SkybandMonitoringAlgorithm
        from repro.algorithms.tma import TopKMonitoringAlgorithm
        from repro.algorithms.tsl import ThresholdSortedListAlgorithm
        from repro.core.engine import StreamMonitor
        from repro.grid.grid import Grid
        from repro.skyband.skyband import ScoreTimeSkyband

        for cls in (
            StreamMonitor,
            Grid,
            ScoreTimeSkyband,
            TopKMonitoringAlgorithm,
            SkybandMonitoringAlgorithm,
            ThresholdSortedListAlgorithm,
        ):
            assert cls.__doc__, cls.__name__
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                # getdoc falls back through the MRO: overrides of a
                # documented base method count as documented.
                doc = inspect.getdoc(getattr(cls, name))
                assert doc, f"{cls.__name__}.{name}"
