"""Tests for operation counters and run statistics."""

from repro.core.stats import OpCounters, RunStats


class TestOpCounters:
    def test_defaults_zero(self):
        counters = OpCounters()
        assert counters.arrivals == 0
        assert all(value == 0 for value in counters.as_dict().values())

    def test_add(self):
        a = OpCounters(arrivals=2, points_scored=5)
        b = OpCounters(arrivals=1, cells_processed=3)
        a.add(b)
        assert a.arrivals == 3
        assert a.points_scored == 5
        assert a.cells_processed == 3

    def test_snapshot_is_independent(self):
        counters = OpCounters(arrivals=1)
        snap = counters.snapshot()
        counters.arrivals = 10
        assert snap.arrivals == 1

    def test_reset(self):
        counters = OpCounters(arrivals=5, recomputations=2)
        counters.reset()
        assert counters.arrivals == 0
        assert counters.recomputations == 0

    def test_as_dict_keys(self):
        data = OpCounters().as_dict()
        assert "recomputations" in data
        assert "skyband_insertions" in data


class TestRunStats:
    def test_empty(self):
        stats = RunStats()
        assert stats.cycles == 0
        assert stats.total_seconds == 0.0
        assert stats.mean_cycle_seconds == 0.0

    def test_record_cycles(self):
        stats = RunStats()
        stats.record_cycle(0.5, OpCounters(arrivals=10))
        stats.record_cycle(1.5, OpCounters(arrivals=20))
        assert stats.cycles == 2
        assert stats.total_seconds == 2.0
        assert stats.mean_cycle_seconds == 1.0
        assert stats.counters.arrivals == 30

    def test_summary(self):
        stats = RunStats()
        stats.record_cycle(1.0, OpCounters(expirations=4))
        summary = stats.summary()
        assert summary["cycles"] == 1
        assert summary["expirations"] == 4

    def test_summary_keeps_counts_integral(self):
        # Counts must stay int (bench --json renders 17, not 17.0);
        # only the timing aggregates are floats.
        stats = RunStats()
        stats.record_cycle(0.25, OpCounters(arrivals=17))
        summary = stats.summary()
        assert isinstance(summary["cycles"], int)
        assert isinstance(summary["arrivals"], int)
        assert isinstance(summary["expirations"], int)
        assert isinstance(summary["total_seconds"], float)
        assert isinstance(summary["mean_cycle_seconds"], float)
