"""Tests for query specifications and the query table."""

import pytest

from repro.core.errors import QueryError
from repro.core.queries import (
    ConstrainedTopKQuery,
    QueryTable,
    ThresholdQuery,
    TopKQuery,
)
from repro.core.regions import Rectangle
from repro.core.scoring import LinearFunction


@pytest.fixture
def f2():
    return LinearFunction([1.0, 2.0])


class TestTopKQuery:
    def test_fields(self, f2):
        query = TopKQuery(f2, k=5, label="demo")
        assert query.k == 5
        assert query.dims == 2
        assert query.qid == -1
        assert query.score((0.5, 0.25)) == pytest.approx(1.0)
        assert "demo" in repr(query)

    def test_invalid_k(self, f2):
        with pytest.raises(QueryError):
            TopKQuery(f2, k=0)


class TestConstrainedQuery:
    def test_requires_constraint(self, f2):
        with pytest.raises(QueryError):
            ConstrainedTopKQuery(f2, k=1)

    def test_dims_must_match(self, f2):
        with pytest.raises(QueryError):
            ConstrainedTopKQuery(
                f2, k=1, constraint=Rectangle((0.0,), (1.0,))
            )

    def test_admits(self, f2):
        query = ConstrainedTopKQuery(
            f2, k=1, constraint=Rectangle((0.2, 0.2), (0.8, 0.8))
        )
        assert query.admits((0.5, 0.5))
        assert not query.admits((0.9, 0.5))
        assert "R=" in repr(query)


class TestThresholdQuery:
    def test_fields(self, f2):
        query = ThresholdQuery(f2, threshold=1.5, label="hot")
        assert query.dims == 2
        assert query.score((1.0, 1.0)) == pytest.approx(3.0)
        assert "hot" in repr(query)


class TestQueryTable:
    def test_register_assigns_ids(self, f2):
        table = QueryTable()
        q1 = TopKQuery(f2, k=1)
        q2 = TopKQuery(f2, k=2)
        assert table.register(q1) == 0
        assert table.register(q2) == 1
        assert q1.qid == 0 and q2.qid == 1
        assert len(table) == 2
        assert 0 in table and 1 in table

    def test_double_register_rejected(self, f2):
        table = QueryTable()
        query = TopKQuery(f2, k=1)
        table.register(query)
        with pytest.raises(QueryError):
            table.register(query)

    def test_get_and_unregister(self, f2):
        table = QueryTable()
        query = TopKQuery(f2, k=1)
        qid = table.register(query)
        assert table.get(qid) is query
        assert table.unregister(qid) is query
        with pytest.raises(QueryError):
            table.get(qid)
        with pytest.raises(QueryError):
            table.unregister(qid)

    def test_iteration(self, f2):
        table = QueryTable()
        queries = [TopKQuery(f2, k=i + 1) for i in range(3)]
        for query in queries:
            table.register(query)
        assert list(table) == queries
