"""Tests for monotone preference functions and rectangle bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import DimensionalityError, NonMonotoneFunctionError
from repro.core.scoring import (
    CallableFunction,
    LinearFunction,
    ProductFunction,
    QuadraticFunction,
    check_monotone,
    enumerate_corners,
    global_best_corner,
)

unit = st.floats(min_value=0.0, max_value=1.0)


class TestLinear:
    def test_score(self):
        f = LinearFunction([1.0, 2.0])
        assert f.score((0.5, 0.25)) == pytest.approx(1.0)

    def test_directions_from_signs(self):
        f = LinearFunction([1.0, -3.0, 0.5])
        assert f.directions == (1, -1, 1)

    def test_zero_weight_ignores_dimension(self):
        f = LinearFunction([1.0, 0.0])
        assert f.directions == (1, 1)
        assert f.score((0.3, 0.9)) == pytest.approx(0.3)

    def test_paper_example_figure_1a(self):
        # f(x1, x2) = x1 + 2*x2; point (1,1) maximises it.
        f = LinearFunction([1.0, 2.0])
        assert global_best_corner(f) == (1.0, 1.0)
        assert f.score((1.0, 1.0)) == pytest.approx(3.0)

    def test_paper_example_figure_7a(self):
        # f(x1, x2) = x1 - x2 is increasing on x1, decreasing on x2.
        f = LinearFunction([1.0, -1.0])
        assert f.directions == (1, -1)
        assert global_best_corner(f) == (1.0, 0.0)

    def test_repr(self):
        assert "x1" in repr(LinearFunction([1.0, 2.0]))


class TestProduct:
    def test_score(self):
        f = ProductFunction([0.5, 1.0])
        assert f.score((0.5, 0.0)) == pytest.approx(1.0)

    def test_negative_offset_rejected(self):
        with pytest.raises(NonMonotoneFunctionError):
            ProductFunction([-0.1, 0.5])

    def test_all_increasing(self):
        assert ProductFunction([0.2, 0.3, 0.4]).directions == (1, 1, 1)

    def test_paper_example_figure_7b(self):
        # f(x1, x2) = x1 * x2 with zero offsets.
        f = ProductFunction([0.0, 0.0])
        assert f.score((0.5, 0.4)) == pytest.approx(0.2)


class TestQuadratic:
    def test_score(self):
        f = QuadraticFunction([2.0, 1.0])
        assert f.score((0.5, 0.5)) == pytest.approx(0.75)

    def test_directions(self):
        assert QuadraticFunction([1.0, -1.0]).directions == (1, -1)


class TestCallable:
    def test_wraps_function(self):
        f = CallableFunction(lambda a, b: min(a, b), [1, 1], label="min")
        assert f.score((0.3, 0.8)) == pytest.approx(0.3)
        assert "min" in repr(f)

    def test_bad_directions_rejected(self):
        with pytest.raises(NonMonotoneFunctionError):
            CallableFunction(lambda a: a, [2])

    def test_empty_dims_rejected(self):
        with pytest.raises(DimensionalityError):
            CallableFunction(lambda: 0.0, [])


class TestCorners:
    def test_best_corner_mixed_directions(self):
        f = LinearFunction([1.0, -1.0])
        assert f.best_corner((0.2, 0.4), (0.6, 0.8)) == (0.6, 0.4)
        assert f.worst_corner((0.2, 0.4), (0.6, 0.8)) == (0.2, 0.8)

    def test_maxscore_minscore(self):
        f = LinearFunction([1.0, 2.0])
        assert f.maxscore((0.0, 0.0), (0.5, 0.5)) == pytest.approx(1.5)
        assert f.minscore((0.0, 0.0), (0.5, 0.5)) == pytest.approx(0.0)

    def test_enumerate_corners(self):
        corners = enumerate_corners((0.0, 0.0), (1.0, 1.0))
        assert len(corners) == 4
        assert (0.0, 1.0) in corners


class TestCheckMonotone:
    def test_valid_functions_pass(self):
        check_monotone(LinearFunction([1.0, -2.0]))
        check_monotone(ProductFunction([0.5, 0.5]))
        check_monotone(QuadraticFunction([1.0, 1.0]))

    def test_violation_detected(self):
        # Claims increasing on both dims but is not (peak at 0.5).
        bumpy = CallableFunction(
            lambda a, b: -((a - 0.5) ** 2) + b, [1, 1], label="bumpy"
        )
        with pytest.raises(NonMonotoneFunctionError):
            check_monotone(bumpy)


class TestBoundProperties:
    @given(
        st.lists(
            st.floats(min_value=-2.0, max_value=2.0).filter(
                lambda w: abs(w) > 1e-3
            ),
            min_size=1,
            max_size=4,
        ),
        st.data(),
    )
    def test_maxscore_bounds_all_points_linear(self, weights, data):
        f = LinearFunction(weights)
        dims = len(weights)
        lower = tuple(
            data.draw(st.floats(min_value=0.0, max_value=0.5))
            for _ in range(dims)
        )
        upper = tuple(
            lo + data.draw(st.floats(min_value=0.0, max_value=0.5))
            for lo in lower
        )
        bound = f.maxscore(lower, upper)
        floor = f.minscore(lower, upper)
        for _ in range(5):
            point = tuple(
                data.draw(st.floats(min_value=lower[i], max_value=upper[i]))
                for i in range(dims)
            )
            score = f.score(point)
            assert score <= bound + 1e-9
            assert score >= floor - 1e-9

    @given(st.lists(unit, min_size=2, max_size=4))
    def test_maxscore_dominates_corners_product(self, offsets):
        f = ProductFunction(offsets)
        lower = tuple(0.1 for _ in offsets)
        upper = tuple(0.7 for _ in offsets)
        bound = f.maxscore(lower, upper)
        for corner in enumerate_corners(lower, upper):
            assert f.score(corner) <= bound + 1e-9
