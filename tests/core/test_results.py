"""Tests for result entries, diffs, and cycle reports."""

from repro.core.results import (
    CycleReport,
    ResultChange,
    ResultEntry,
    diff_results,
    entries_best_first,
)
from repro.core.tuples import StreamRecord


def entry(score: float, rid: int) -> ResultEntry:
    return ResultEntry(score, StreamRecord(rid, (score,)))


class TestResultEntry:
    def test_accessors(self):
        item = entry(0.7, 3)
        assert item.score == 0.7
        assert item.rid == 3
        assert item.key == (0.7, 3)

    def test_natural_sort_is_rank_order(self):
        items = [entry(0.5, 1), entry(0.9, 0), entry(0.5, 2)]
        ordered = entries_best_first(items)
        assert [item.rid for item in ordered] == [0, 2, 1]


class TestDiff:
    def test_no_change(self):
        old = [entry(0.9, 1), entry(0.8, 2)]
        change = diff_results(0, old, list(old))
        assert not change.changed
        assert change.added == [] and change.removed == []
        assert change.top == old

    def test_addition_and_removal(self):
        old = [entry(0.9, 1), entry(0.8, 2)]
        new = [entry(0.95, 3), entry(0.9, 1)]
        change = diff_results(5, old, new)
        assert change.qid == 5
        assert [item.rid for item in change.added] == [3]
        assert [item.rid for item in change.removed] == [2]
        assert change.changed
        assert change.top_ids() == [3, 1]

    def test_full_replacement(self):
        old = [entry(0.5, 1)]
        new = [entry(0.6, 2)]
        change = diff_results(0, old, new)
        assert [item.rid for item in change.added] == [2]
        assert [item.rid for item in change.removed] == [1]

    def test_empty_old(self):
        change = diff_results(0, [], [entry(0.5, 1)])
        assert [item.rid for item in change.added] == [1]
        assert change.removed == []


class TestCycleReport:
    def test_changed_queries(self):
        report = CycleReport(
            timestamp=1.0,
            arrivals=2,
            expirations=2,
            changes={
                0: ResultChange(qid=0, added=[entry(0.5, 1)]),
                1: ResultChange(qid=1),
            },
        )
        assert report.changed_queries() == [0]
        assert report.result_of(1) == []
