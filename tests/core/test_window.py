"""Tests for count-based and time-based sliding windows."""

import pytest

from repro.core.errors import WindowError
from repro.core.tuples import RecordFactory
from repro.core.window import CountBasedWindow, TimeBasedWindow


@pytest.fixture
def factory():
    return RecordFactory()


class TestCountBased:
    def test_invalid_capacity(self):
        with pytest.raises(WindowError):
            CountBasedWindow(0)

    def test_no_eviction_until_full(self, factory):
        window = CountBasedWindow(3)
        for _ in range(3):
            window.insert(factory.make([0.5]))
        assert window.evict(now=0.0) == []
        assert len(window) == 3

    def test_fifo_eviction(self, factory):
        window = CountBasedWindow(2)
        records = [factory.make([0.1], time=i) for i in range(4)]
        for record in records[:3]:
            window.insert(record)
        expired = window.evict(now=2.0)
        assert [r.rid for r in expired] == [0]
        window.insert(records[3])
        expired = window.evict(now=3.0)
        assert [r.rid for r in expired] == [1]
        assert [r.rid for r in window] == [2, 3]

    def test_bulk_overflow_evicts_batch(self, factory):
        window = CountBasedWindow(2)
        for i in range(5):
            window.insert(factory.make([0.1], time=0.0))
        expired = window.evict(now=0.0)
        assert [r.rid for r in expired] == [0, 1, 2]

    def test_repr(self):
        assert "N=5" in repr(CountBasedWindow(5))


class TestTimeBased:
    def test_invalid_duration(self):
        with pytest.raises(WindowError):
            TimeBasedWindow(0)

    def test_expiry_at_duration(self, factory):
        window = TimeBasedWindow(2.0)
        window.insert(factory.make([0.1], time=0.0))
        window.insert(factory.make([0.1], time=1.0))
        assert window.evict(now=1.9) == []
        expired = window.evict(now=2.0)
        assert [r.rid for r in expired] == [0]
        expired = window.evict(now=3.0)
        assert [r.rid for r in expired] == [1]
        assert len(window) == 0

    def test_batch_expiry(self, factory):
        window = TimeBasedWindow(1.0)
        for i in range(3):
            window.insert(factory.make([0.1], time=0.0))
        assert len(window.evict(now=5.0)) == 3

    def test_out_of_order_arrival_rejected(self, factory):
        window = TimeBasedWindow(1.0)
        window.insert(factory.make([0.1], time=5.0))
        with pytest.raises(WindowError):
            window.insert(factory.make([0.1], time=4.0))

    def test_peek_oldest(self, factory):
        window = TimeBasedWindow(10.0)
        assert window.peek_oldest() is None
        record = factory.make([0.1], time=0.0)
        window.insert(record)
        assert window.peek_oldest() is record

    def test_repr(self):
        assert "T=2.5" in repr(TimeBasedWindow(2.5))


class TestIteration:
    def test_oldest_first(self, factory):
        window = CountBasedWindow(10)
        for i in range(4):
            window.insert(factory.make([0.1], time=float(i)))
        assert [r.rid for r in window] == [0, 1, 2, 3]
