"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core.queries import TopKQuery
from repro.core.results import ResultEntry
from repro.core.tuples import RecordFactory, StreamRecord


def brute_top_k(
    records: Sequence[StreamRecord], query: TopKQuery
) -> List[ResultEntry]:
    """Reference top-k under the canonical (score, rid) order."""
    from repro.algorithms.topk_computation import query_region

    region = query_region(query)
    scored = [
        (query.score(record.attrs), record.rid, record)
        for record in records
        if region is None or region.contains(record.attrs)
    ]
    scored.sort(key=lambda item: item[:2], reverse=True)
    return [
        ResultEntry(score, record) for score, _, record in scored[: query.k]
    ]


def result_ids(entries: Sequence[ResultEntry]) -> List[int]:
    return [entry.rid for entry in entries]


def make_records(
    rows: Sequence[Sequence[float]],
    start_id: int = 0,
    time: float = 0.0,
) -> List[StreamRecord]:
    factory = RecordFactory(start=start_id)
    return [factory.make(row, time) for row in rows]


def random_rows(
    rng: random.Random, count: int, dims: int
) -> List[Tuple[float, ...]]:
    return [tuple(rng.random() for _ in range(dims)) for _ in range(count)]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
