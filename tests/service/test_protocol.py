"""Wire-protocol round trips: framing, entries, changes, queries."""

import math
import random

import pytest

from repro.core.errors import QueryError, StreamError
from repro.core.queries import ConstrainedTopKQuery, ThresholdQuery, TopKQuery
from repro.core.regions import Rectangle
from repro.core.results import ResultChange, ResultEntry
from repro.core.scoring import LinearFunction, ProductFunction
from repro.core.tuples import StreamRecord
from repro.service import protocol


def random_entry(rng, rid):
    return ResultEntry(
        rng.random() * rng.choice([1.0, 1e-12, 1e12]),
        StreamRecord(
            rid,
            tuple(rng.random() for _ in range(3)),
            rng.random() * 100,
        ),
    )


class TestFraming:
    def test_line_round_trip(self):
        message = {"id": 3, "op": "ping", "nested": {"a": [1, 2.5]}}
        line = protocol.encode_line(message)
        assert line.endswith(b"\n")
        assert protocol.decode_line(line) == message

    def test_garbage_line_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"[1, 2]\n")

    def test_nan_scores_rejected_at_encode(self):
        with pytest.raises(ValueError):
            protocol.encode_line({"score": math.nan})


class TestEntriesAndChanges:
    def test_entry_round_trip_is_bitwise(self):
        rng = random.Random(11)
        for rid in range(50):
            entry = random_entry(rng, rid)
            line = protocol.encode_line(protocol.entry_to_wire(entry))
            rebuilt = protocol.entry_from_wire(protocol.decode_line(line))
            # Bitwise: NamedTuple equality on floats after a full
            # JSON round trip (repr-faithful doubles).
            assert rebuilt == entry
            assert rebuilt.key == entry.key

    def test_change_round_trip(self):
        rng = random.Random(7)
        change = ResultChange(
            qid=9,
            added=[random_entry(rng, 1)],
            removed=[random_entry(rng, 2), random_entry(rng, 3)],
            top=[random_entry(rng, rid) for rid in range(4, 9)],
            cause="resync",
        )
        wire = protocol.change_to_wire(change)
        rebuilt = protocol.change_from_wire(
            protocol.decode_line(protocol.encode_line(wire))
        )
        assert rebuilt == change

    def test_malformed_entry_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.entry_from_wire({"score": 1.0})


class TestQueries:
    def test_topk_round_trip(self):
        query = TopKQuery(
            LinearFunction([0.25, 1.5, -0.75]), k=7, label="leaders"
        )
        rebuilt = protocol.query_from_wire(protocol.query_to_wire(query))
        assert isinstance(rebuilt, TopKQuery)
        assert rebuilt.k == 7
        assert rebuilt.label == "leaders"
        assert rebuilt.function.weights == query.function.weights

    def test_threshold_round_trip(self):
        query = ThresholdQuery(
            LinearFunction([1.0, 1.0]), threshold=1.7, label="alarm"
        )
        rebuilt = protocol.query_from_wire(protocol.query_to_wire(query))
        assert isinstance(rebuilt, ThresholdQuery)
        assert rebuilt.threshold == 1.7

    def test_non_linear_function_rejected(self):
        query = TopKQuery(ProductFunction([0.5, 0.5]), k=3)
        with pytest.raises(protocol.ProtocolError):
            protocol.query_to_wire(query)

    def test_constrained_query_rejected(self):
        query = ConstrainedTopKQuery(
            LinearFunction([1.0, 1.0]),
            k=3,
            constraint=Rectangle((0.0, 0.0), (0.5, 0.5)),
        )
        with pytest.raises(protocol.ProtocolError):
            protocol.query_to_wire(query)

    def test_unknown_kind_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.query_from_wire({"kind": "skyline", "weights": [1.0]})


class TestErrors:
    def test_error_taxonomy_maps_back(self):
        for exc, kind in (
            (QueryError("gone"), QueryError),
            (StreamError("closed"), StreamError),
            (protocol.ProtocolError("bad"), protocol.ProtocolError),
        ):
            with pytest.raises(kind):
                protocol.raise_from_wire(protocol.error_to_wire(exc))

    def test_unknown_error_becomes_service_error(self):
        with pytest.raises(protocol.ServiceError):
            protocol.raise_from_wire(
                {"type": "WeirdError", "message": "boom"}
            )
        with pytest.raises(protocol.ServiceError):
            protocol.raise_from_wire(None)
