"""Server/client behaviour over real sockets (one host, ephemeral
ports): request surface, error taxonomy, subscription lifecycle,
stalled-subscriber isolation."""

import random
import socket
import threading
import time

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError
from repro.core.queries import ThresholdQuery, TopKQuery
from repro.core.results import entries_best_first
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow
from repro.service import MonitorClient, MonitorServer, protocol


@pytest.fixture
def served():
    monitor = StreamMonitor(
        2, CountBasedWindow(60), algorithm="tma", cells_per_axis=4
    )
    server = MonitorServer(monitor, default_maxlen=64)
    host, port = server.start()
    clients = []

    def connect(**kwargs):
        client = MonitorClient(host, port, **kwargs)
        clients.append(client)
        return client

    yield monitor, server, connect
    for client in clients:
        client.close()
    server.stop()
    monitor.close()


def rows(rng, count):
    return [(rng.random(), rng.random()) for _ in range(count)]


class TestRequestSurface:
    def test_hello_reports_runtime(self, served):
        monitor, server, connect = served
        client = connect()
        info = client.server_info
        assert info["server"] == "repro.service"
        assert info["protocol"] == protocol.PROTOCOL_VERSION
        assert info["algorithm"] == "tma"
        assert info["dims"] == 2
        assert client.ping()

    def test_full_handle_lifecycle_over_the_wire(self, served):
        rng = random.Random(2)
        monitor, server, connect = served
        client = connect()
        client.process(rows(rng, 30), now=0.0)
        handle = client.add_query(weights=[1.0, 0.7], k=4, label="lead")
        assert handle.result()  # initial result from the warm window
        client.process(rows(rng, 20), now=1.0)

        trimmed = handle.update(k=2)
        assert len(trimmed) == 2
        assert trimmed == handle.result()

        handle.pause()
        frozen = handle.result()
        client.process(rows(rng, 20), now=2.0)
        assert handle.result() == frozen  # paused = frozen snapshot
        resumed = handle.resume()
        assert resumed == handle.result()

        reweighted = handle.update(weights=[0.1, 2.0])
        assert reweighted == handle.result()

        handle.cancel()
        with pytest.raises(QueryError):
            handle.result()

    def test_remote_results_match_local_bitwise(self, served):
        rng = random.Random(3)
        monitor, server, connect = served
        client = connect()
        remote = client.add_query(weights=[0.9, 1.1], k=5)
        local = monitor.handle(remote.qid)
        for cycle in range(5):
            client.process(rows(rng, 25), now=float(cycle))
            assert remote.result() == local.result()

    def test_threshold_query_over_the_wire(self, served):
        rng = random.Random(4)
        monitor, server, connect = served
        client = connect()
        alarm = client.add_query(
            weights=[1.0, 1.0], threshold=1.6, label="alarm"
        )
        client.process([[0.9, 0.9], [0.2, 0.2], [0.85, 0.8]], now=0.0)
        rids = [entry.rid for entry in alarm.result()]
        assert rids == [0, 2]  # scores 1.8 and 1.65 clear 1.6

    def test_add_queries_batch_op(self, served):
        monitor, server, connect = served
        client = connect()
        reply = client.request(
            "add_queries",
            queries=[
                {"kind": "topk", "weights": [1.0, 0.5], "k": 2},
                {"kind": "topk", "weights": [0.5, 1.0], "k": 3},
            ],
        )
        qids = [item["qid"] for item in reply["queries"]]
        assert len(qids) == 2 and len(set(qids)) == 2
        assert len(monitor.handles()) == 2


class TestErrors:
    def test_unknown_qid_raises_query_error_remotely(self, served):
        monitor, server, connect = served
        client = connect()
        with pytest.raises(QueryError):
            client.request("result", qid=404)
        with pytest.raises(QueryError):
            client.subscribe(qid=404)

    def test_unknown_op_and_garbage_line(self, served):
        monitor, server, connect = served
        client = connect()
        with pytest.raises(protocol.ProtocolError):
            client.request("frobnicate")
        # A garbage line must not kill the connection.
        client._sock.sendall(b"this is not json\n")
        assert client.ping()

    def test_ingest_can_be_disabled(self):
        monitor = StreamMonitor(
            2, CountBasedWindow(40), algorithm="tma", cells_per_axis=4
        )
        server = MonitorServer(monitor, allow_ingest=False)
        host, port = server.start()
        try:
            client = MonitorClient(host, port)
            with pytest.raises(protocol.ProtocolError):
                client.process([[0.5, 0.5]])
            # The embedder-side path still works.
            report = server.process(rows=[[0.5, 0.5]], now=0.0)
            assert report.arrivals == 1
            client.close()
        finally:
            server.stop()
            monitor.close()

    def test_non_linear_update_rejected_without_side_effects(self, served):
        rng = random.Random(5)
        monitor, server, connect = served
        client = connect()
        handle = client.add_query(weights=[1.0, 1.0], k=3)
        client.process(rows(rng, 10), now=0.0)
        before = handle.result()
        with pytest.raises(QueryError):
            client.request("update", qid=handle.qid, k=0)
        assert handle.result() == before


class TestSubscriptions:
    def test_stream_replay_matches_pull(self, served):
        rng = random.Random(6)
        monitor, server, connect = served
        client = connect()
        handle = client.add_query(weights=[1.0, 0.4], k=3)
        stream = handle.subscribe()
        state = {entry.rid: entry for entry in handle.result()}
        for cycle in range(6):
            client.process(rows(rng, 15), now=float(cycle))
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            change = stream.get(timeout=0.2)
            if change is None and server.hub.flush(timeout=1):
                if stream.pending == 0:
                    break
            if change is not None:
                for entry in change.removed:
                    del state[entry.rid]
                for entry in change.added:
                    state[entry.rid] = entry
        assert entries_best_first(state.values()) == handle.result()

    def test_unsubscribe_closes_stream(self, served):
        rng = random.Random(7)
        monitor, server, connect = served
        client = connect()
        handle = client.add_query(weights=[1.0, 1.0], k=2)
        stream = handle.subscribe()
        stream.close()
        client.process(rows(rng, 10), now=0.0)
        assert stream.get(timeout=1.0) is None
        assert stream.closed

    def test_cancel_sends_final_delta_then_closes(self, served):
        rng = random.Random(8)
        monitor, server, connect = served
        client = connect()
        handle = client.add_query(weights=[1.0, 1.0], k=2)
        stream = handle.subscribe()
        client.process(rows(rng, 10), now=0.0)
        handle.cancel()
        causes = []
        while True:
            change = stream.get(timeout=5.0)
            if change is None:
                break
            causes.append(change.cause)
        assert causes[-1] == "cancel"
        assert stream.closed

    def test_monitor_wide_subscription(self, served):
        rng = random.Random(9)
        monitor, server, connect = served
        client = connect()
        fanin = client.subscribe()  # before any query exists
        first = client.add_query(weights=[1.0, 0.2], k=2)
        client.process(rows(rng, 10), now=0.0)
        second = client.add_query(weights=[0.2, 1.0], k=2)
        client.process(rows(rng, 10), now=1.0)
        seen = set()
        while True:
            change = fanin.get(timeout=2.0)
            if change is None:
                break
            seen.add((change.qid, change.cause))
            if (second.qid, "cycle") in seen or (
                len(seen) >= 4 and fanin.pending == 0
            ):
                if server.hub.flush(timeout=1) and fanin.pending == 0:
                    break
        assert (second.qid, "register") in seen
        assert any(qid == first.qid for qid, _ in seen)

    def test_stalled_subscriber_isolated_from_healthy(self, served):
        rng = random.Random(10)
        monitor, server, connect = served
        healthy = connect()
        handle = healthy.add_query(weights=[1.0, 1.0], k=3)
        stream = handle.subscribe(policy="coalesce", maxlen=4)

        # A raw socket that subscribes and then never reads again.
        host, port = server.address
        stalled = socket.create_connection((host, port))
        stalled.sendall(
            protocol.encode_line(
                {"id": 1, "op": "subscribe", "policy": "drop_oldest",
                 "maxlen": 2}
            )
        )
        time.sleep(0.2)  # let the subscription land

        cycle_times = []
        received = 0
        for cycle in range(12):
            started = time.perf_counter()
            healthy.process(rows(rng, 20), now=float(cycle))
            cycle_times.append(time.perf_counter() - started)
            if stream.get(timeout=2.0) is not None:
                received += 1
        # The healthy subscriber still sees deltas promptly and the
        # engine never waited on the stalled socket.
        assert received >= 8
        assert max(cycle_times) < 2.0
        stalled.close()

    def test_client_disconnect_reaps_subscriptions(self, served):
        rng = random.Random(11)
        monitor, server, connect = served
        client = connect()
        handle = client.add_query(weights=[1.0, 1.0], k=2)
        handle.subscribe()
        assert server.stats()["hub"]["deliveries"] == 1
        client.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if server.stats()["hub"]["deliveries"] == 0:
                break
            time.sleep(0.05)
        assert server.stats()["hub"]["deliveries"] == 0
        # The query itself survives its client.
        assert len(monitor.handles()) == 1


class TestLargeBatches:
    def test_large_ingest_batch_survives_line_framing(self, served):
        """Regression: a multi-MB process request must not trip
        asyncio's default 64 KiB readline limit."""
        rng = random.Random(14)
        monitor, server, connect = served
        client = connect()
        handle = client.add_query(weights=[1.0, 1.0], k=5)
        reply = client.process(rows(rng, 5000), now=0.0)
        assert reply["arrivals"] == 5000
        assert len(handle.result()) == 5
        assert client.ping()


class TestConcurrency:
    def test_many_clients_register_and_read_concurrently(self, served):
        monitor, server, connect = served
        driver = connect()
        rng = random.Random(12)
        driver.process(rows(rng, 40), now=0.0)

        errors = []
        results = {}

        def worker(index):
            try:
                client = MonitorClient(*server.address)
                try:
                    handle = client.add_query(
                        weights=[1.0, index / 4.0 + 0.1], k=3,
                        label=f"w{index}",
                    )
                    for _ in range(10):
                        results[index] = handle.result()
                finally:
                    client.close()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 4
        assert len(monitor.handles()) == 4


class TestServerLifecycle:
    def test_context_manager_and_double_stop(self):
        monitor = StreamMonitor(
            2, CountBasedWindow(20), algorithm="tma", cells_per_axis=4
        )
        with MonitorServer(monitor) as server:
            host, port = server.address
            client = MonitorClient(host, port)
            assert client.ping()
            client.close()
        server.stop()  # idempotent
        monitor.close()

    def test_server_stop_ends_client_streams(self):
        rng = random.Random(13)
        monitor = StreamMonitor(
            2, CountBasedWindow(30), algorithm="tma", cells_per_axis=4
        )
        server = MonitorServer(monitor)
        host, port = server.start()
        client = MonitorClient(host, port)
        handle = client.add_query(weights=[1.0, 1.0], k=2)
        stream = handle.subscribe()
        client.process(rows(rng, 10), now=0.0)
        server.stop()
        # Blocking iteration terminates instead of hanging forever.
        drained = list(stream)
        assert stream.closed
        monitor.close()
        client.close()
        assert isinstance(drained, list)
