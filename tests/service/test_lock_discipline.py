"""Regression tests for the engine-lock discipline fixed in ISSUE 7.

``_op_stats`` used to read ``monitor.query_table`` and
``monitor.cycle_seconds`` directly from the event-loop thread while the
engine executor could be mid-cycle — a data race the static analyzer
(LOCK201) now flags.  The op takes one locked snapshot instead; these
tests pin both the wire behaviour and the analyzer verdict.
"""

import random

import pytest

from repro.core.engine import StreamMonitor
from repro.core.window import CountBasedWindow
from repro.service import MonitorClient, MonitorServer


@pytest.fixture
def served():
    monitor = StreamMonitor(
        2, CountBasedWindow(60), algorithm="tma", cells_per_axis=4
    )
    server = MonitorServer(monitor, default_maxlen=64)
    host, port = server.start()
    client = MonitorClient(host, port)
    yield monitor, server, client
    client.close()
    server.stop()
    monitor.close()


def rows(rng, count):
    return [(rng.random(), rng.random()) for _ in range(count)]


def test_stats_reports_consistent_engine_snapshot(served):
    monitor, server, client = served
    rng = random.Random(7)

    stats = client.stats()
    assert stats["queries"] == 0
    assert stats["cycles"] == 0

    client.add_query(weights=[1.0, 0.5], k=3)
    client.add_query(weights=[0.2, 1.0], k=2)
    client.process(rows(rng, 24), now=0.0)
    client.process(rows(rng, 8), now=1.0)

    stats = client.stats()
    assert stats["queries"] == 2
    assert stats["cycles"] == 2
    assert stats["queries"] == len(monitor.query_table)
    assert stats["cycles"] == len(monitor.cycle_seconds)
    assert "engine" in stats and "hub" in stats


def test_stats_while_engine_is_busy(served):
    """stats() interleaved with ingestion never sees torn state."""
    monitor, server, client = served
    rng = random.Random(11)
    client.add_query(weights=[1.0, 1.0], k=2)
    for step in range(5):
        client.process(rows(rng, 12), now=float(step))
        stats = client.stats()
        assert stats["cycles"] == step + 1
        assert stats["queries"] == 1
