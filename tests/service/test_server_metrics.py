"""Wire-scrapeable telemetry on the serving tier.

Acceptance for the observability PR: a Prometheus scrape of the
server's /metrics endpoint round-trips every OpCounters field and the
delivery-latency buckets; the ``metrics`` protocol op returns the same
snapshot to socket clients.
"""

import json
import random
import urllib.request

import pytest

from repro.core.engine import StreamMonitor
from repro.core.stats import OpCounters
from repro.core.window import CountBasedWindow
from repro.obs.http import PROMETHEUS_CONTENT_TYPE
from repro.obs.metrics import op_counter_names
from repro.service import MonitorClient, MonitorServer


def rows(rng, count):
    return [(rng.random(), rng.random()) for _ in range(count)]


@pytest.fixture
def served():
    monitor = StreamMonitor(
        2,
        CountBasedWindow(60),
        algorithm="tma",
        cells_per_axis=4,
        trace=True,
    )
    server = MonitorServer(monitor, default_maxlen=64, metrics_port=0)
    host, port = server.start()
    clients = []

    def connect(**kwargs):
        client = MonitorClient(host, port, **kwargs)
        clients.append(client)
        return client

    yield monitor, server, connect
    for client in clients:
        client.close()
    server.stop()
    monitor.close()


def scrape(server, path="/metrics"):
    host, port = server.metrics_address
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=10
    ) as response:
        return response.status, response.headers, response.read()


def exercise(monitor, connect, cycles=5):
    rng = random.Random(31)
    client = connect()
    handle = client.add_query(weights=[0.6, 0.4], k=3)
    stream = handle.subscribe()
    for cycle in range(cycles):
        client.process(rows(rng, 10), now=float(cycle))
    return client, handle, stream


class TestHTTPScrape:
    def test_scrape_round_trips_every_op_counter(self, served):
        monitor, server, connect = served
        client, handle, _ = exercise(monitor, connect)
        status, headers, body = scrape(server)
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        scraped = {}
        for line in text.splitlines():
            if line.startswith("#") or "{" in line:
                continue
            name, _, value = line.partition(" ")
            scraped[name] = value
        for metric in op_counter_names(OpCounters().as_dict()):
            assert metric in scraped, f"{metric} missing from scrape"
        # values match the engine's live counters exactly
        assert int(scraped["repro_op_arrivals_total"]) == (
            monitor.counters.arrivals
        )
        assert int(scraped["repro_op_arrivals_total"]) == 50

    def test_scrape_includes_delivery_latency_buckets(self, served):
        monitor, server, connect = served
        exercise(monitor, connect)
        _, _, body = scrape(server)
        text = body.decode("utf-8")
        assert 'repro_delivery_latency_seconds_bucket{le="+Inf"}' in text
        assert "repro_delivery_latency_seconds_count" in text
        assert "repro_delivery_queue_depth" in text

    def test_trace_endpoint_serves_cycle_traces(self, served):
        monitor, server, connect = served
        exercise(monitor, connect)
        status, _, body = scrape(server, "/trace?n=2")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert len(payload["traces"]) == 2
        assert "ingest" in payload["traces"][-1]["phases"]

    def test_metrics_server_stops_with_server(self):
        monitor = StreamMonitor(
            2, CountBasedWindow(16), algorithm="tma", cells_per_axis=4
        )
        server = MonitorServer(monitor, metrics_port=0)
        server.start()
        host, port = server.metrics_address
        server.stop()
        monitor.close()
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=2
            )


class TestMetricsOp:
    def test_client_metrics_matches_engine(self, served):
        monitor, server, connect = served
        client, handle, _ = exercise(monitor, connect)
        snapshot = client.metrics()
        assert (
            snapshot["metrics"]["counters"]["repro_op_arrivals_total"]
            == monitor.counters.arrivals
        )
        assert "traces" not in snapshot or snapshot.get("traces") == []

    def test_client_metrics_with_traces(self, served):
        monitor, server, connect = served
        client, handle, _ = exercise(monitor, connect)
        snapshot = client.metrics(traces=3)
        assert len(snapshot["traces"]) == 3
        assert all("phases" in trace for trace in snapshot["traces"])

    def test_metrics_op_without_metrics_port(self):
        # the protocol op works even when no HTTP endpoint was opened
        monitor = StreamMonitor(
            2, CountBasedWindow(16), algorithm="tma", cells_per_axis=4
        )
        server = MonitorServer(monitor)
        host, port = server.start()
        client = MonitorClient(host, port)
        try:
            rng = random.Random(5)
            client.process(rows(rng, 8), now=0.0)
            snapshot = client.metrics()
            assert (
                snapshot["metrics"]["counters"]["repro_op_arrivals_total"]
                == 8
            )
        finally:
            client.close()
            server.stop()
            monitor.close()
