"""Delivery-layer metrics: latency histograms and counters per policy.

Satellite of the observability PR: every overflow policy must keep the
delivered/dropped/coalesced accounting consistent with the latency
histogram (one observation per successful callback), counters must
stay monotonic across subscriber churn, and none of it may require
tracing to be on.
"""

import threading

import pytest

from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow
from repro.obs.metrics import MetricsRegistry
from repro.service.delivery import DeliveryHub


def make_monitor():
    return StreamMonitor(
        2, CountBasedWindow(30), algorithm="tma", cells_per_axis=4
    )


def rows(rng, count):
    return [(rng.random(), rng.random()) for _ in range(count)]


def drive(monitor, rng, cycles=6, batch=10, start=0):
    for cycle in range(start, start + cycles):
        monitor.process(
            monitor.make_records(rows(rng, batch), time_=float(cycle))
        )


def delivery_metrics(monitor):
    snap = monitor.metrics()
    return snap["counters"], snap["gauges"], snap["histograms"]


@pytest.mark.parametrize("policy", ["block", "drop_oldest", "coalesce"])
class TestLatencyHistogramPerPolicy:
    def test_histogram_matches_delivered_count(self, rng, policy):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([0.8, 1.2]), k=3)
            )
            seen = []
            hub.deliver(
                lambda change, at: seen.append(change),
                qid=handle.qid,
                policy=policy,
                maxlen=4,
            )
            drive(monitor, rng)
            assert hub.flush(timeout=10)
            counters, gauges, histograms = delivery_metrics(monitor)
            latency = histograms["repro_delivery_latency_seconds"]
            assert latency["count"] == len(seen) > 0
            assert latency["count"] == counters["repro_delivery_delivered_total"]
            assert latency["sum"] >= 0.0
            # bucket tallies account for every observation
            assert sum(latency["bucket_counts"]) == latency["count"]
            assert gauges["repro_delivery_queue_depth"] == 0
            assert gauges["repro_delivery_subscribers"] == 1
        finally:
            hub.close()
            monitor.close()


class TestOverflowAccounting:
    def held_run(self, rng, policy, maxlen=2, cycles=10):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=3)
            )
            delivery = hub.deliver(
                lambda change, at: None,
                qid=handle.qid,
                policy=policy,
                maxlen=maxlen,
            )
            delivery.hold()
            drive(monitor, rng, cycles=cycles)
            delivery.release()
            assert hub.flush(timeout=10)
            return monitor, hub, delivery
        except BaseException:
            hub.close()
            monitor.close()
            raise

    def test_drop_oldest_losses_surface_as_counter(self, rng):
        monitor, hub, delivery = self.held_run(rng, "drop_oldest")
        try:
            counters, _, histograms = delivery_metrics(monitor)
            assert counters["repro_delivery_dropped_total"] == (
                delivery.dropped
            ) > 0
            # dropped changes never reach the callback, so never land
            # in the latency histogram
            latency = histograms["repro_delivery_latency_seconds"]
            assert latency["count"] == delivery.delivered
        finally:
            hub.close()
            monitor.close()

    def test_coalesce_merges_surface_as_counter(self, rng):
        monitor, hub, delivery = self.held_run(rng, "coalesce")
        try:
            counters, _, _ = delivery_metrics(monitor)
            assert counters["repro_delivery_coalesced_total"] == (
                delivery.coalesced
            ) > 0
            assert counters["repro_delivery_dropped_total"] == 0
        finally:
            hub.close()
            monitor.close()

    def test_block_policy_loses_nothing(self, rng):
        monitor, hub, delivery = self.held_run(
            rng, "block", maxlen=64, cycles=6
        )
        try:
            counters, _, histograms = delivery_metrics(monitor)
            assert counters["repro_delivery_dropped_total"] == 0
            assert counters["repro_delivery_coalesced_total"] == 0
            latency = histograms["repro_delivery_latency_seconds"]
            assert latency["count"] == delivery.delivered > 0
        finally:
            hub.close()
            monitor.close()


class TestChurnAndErrors:
    def test_counters_monotonic_across_subscriber_churn(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 0.5]), k=2)
            )
            first = hub.deliver(lambda c, at: None, qid=handle.qid)
            drive(monitor, rng, cycles=3)
            assert hub.flush(timeout=10)
            counters, _, _ = delivery_metrics(monitor)
            before = counters["repro_delivery_delivered_total"]
            assert before > 0
            first.close()  # totals must survive the delivery's exit
            hub.deliver(lambda c, at: None, qid=handle.qid)
            drive(monitor, rng, cycles=3, start=3)
            assert hub.flush(timeout=10)
            counters, _, _ = delivery_metrics(monitor)
            assert counters["repro_delivery_delivered_total"] > before
        finally:
            hub.close()
            monitor.close()

    def test_callback_errors_counted(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=2)
            )

            def bad(change, at):
                raise RuntimeError("subscriber bug")

            hub.deliver(bad, qid=handle.qid)
            drive(monitor, rng, cycles=3)
            assert hub.flush(timeout=10)
            counters, _, _ = delivery_metrics(monitor)
            assert counters["repro_delivery_errors_total"] > 0
        finally:
            hub.close()
            monitor.close()

    def test_explicit_registry_without_monitor_support(self, rng):
        # A hub can aim its instruments at any registry, independent of
        # the monitor owning one.
        registry = MetricsRegistry()
        monitor = make_monitor()
        hub = DeliveryHub(monitor, registry=registry)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=2)
            )
            hub.deliver(lambda c, at: None, qid=handle.qid)
            drive(monitor, rng, cycles=3)
            assert hub.flush(timeout=10)
            snap = registry.snapshot()
            assert snap["counters"]["repro_delivery_delivered_total"] > 0
        finally:
            hub.close()
            monitor.close()

    def test_concurrent_consumers_observe_safely(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            barrier = threading.Barrier(3, timeout=10)
            handles = [
                monitor.add_query(
                    TopKQuery(LinearFunction([1.0, w]), k=2)
                )
                for w in (0.2, 0.6, 1.0)
            ]
            for handle in handles:
                hub.deliver(lambda c, at: None, qid=handle.qid)
            drive(monitor, rng, cycles=6)
            assert hub.flush(timeout=10)
            counters, _, histograms = delivery_metrics(monitor)
            latency = histograms["repro_delivery_latency_seconds"]
            assert latency["count"] == counters[
                "repro_delivery_delivered_total"
            ]
        finally:
            hub.close()
            monitor.close()
