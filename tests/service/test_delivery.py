"""Unit tests for the DeliveryHub: queues, policies, teardown."""

import threading
import time

import pytest

from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.results import (
    ResultChange,
    diff_results,
    entries_best_first,
    merge_changes,
)
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.core.window import CountBasedWindow
from repro.service.delivery import DeliveryHub


def make_monitor():
    return StreamMonitor(
        2, CountBasedWindow(30), algorithm="tma", cells_per_axis=4
    )


def rows(rng, count):
    return [(rng.random(), rng.random()) for _ in range(count)]


class _Replayer:
    """Thread-safe delta replayer (callbacks run on consumer threads)."""

    def __init__(self, entries):
        self.entries = {entry.rid: entry for entry in entries}
        self.deltas = []

    def __call__(self, change, enqueued_at):
        for entry in change.removed:
            assert self.entries.pop(entry.rid, None) is not None
        for entry in change.added:
            assert entry.rid not in self.entries
            self.entries[entry.rid] = entry
        assert entries_best_first(self.entries.values()) == list(change.top)
        self.deltas.append(change)

    def state(self):
        return entries_best_first(self.entries.values())


class TestMergeChanges:
    def test_merge_is_replay_equivalent(self, rng):
        monitor = make_monitor()
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=3)
            )
            stream = handle.changes()
            deltas = []
            for cycle in range(8):
                monitor.process(
                    monitor.make_records(rows(rng, 10), time_=float(cycle))
                )
                deltas.extend(stream.drain())
            assert len(deltas) >= 2
            # Merging the whole chain must equal replaying it.
            merged = deltas[0]
            for delta in deltas[1:]:
                merged = merge_changes(merged, delta)
            assert merged.cause == "resync"
            assert merged.top == deltas[-1].top
            state = {}
            for entry in merged.removed:
                state.pop(entry.rid, None)
            for entry in merged.added:
                state[entry.rid] = entry
            # added alone reconstructs from empty initial state here
            # (query registered before any data).
            assert entries_best_first(state.values()) == list(
                handle.result()
            )
        finally:
            monitor.close()

    def test_merge_rejects_mismatched_qids(self):
        first = ResultChange(qid=1)
        second = ResultChange(qid=2)
        with pytest.raises(ValueError):
            merge_changes(first, second)


class TestDeliveryBasics:
    def test_async_delivery_reaches_callback(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 0.5]), k=2)
            )
            replayer = _Replayer(handle.result())
            hub.deliver(replayer, qid=handle.qid)
            for cycle in range(5):
                monitor.process(
                    monitor.make_records(rows(rng, 8), time_=float(cycle))
                )
            assert hub.flush(timeout=5)
            assert replayer.state() == handle.result()
            assert replayer.deltas
        finally:
            hub.close()
            monitor.close()

    def test_monitor_wide_delivery_sees_register_cause(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            seen = []
            hub.deliver(lambda change, at: seen.append(change.cause))
            monitor.process(monitor.make_records(rows(rng, 5)))
            monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))
            monitor.process(
                monitor.make_records(rows(rng, 5), time_=1.0)
            )
            assert hub.flush(timeout=5)
            assert "register" in seen
        finally:
            hub.close()
            monitor.close()

    def test_callback_exception_is_counted_not_fatal(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=2)
            )
            def bad(change, at):
                raise RuntimeError("subscriber bug")
            delivery = hub.deliver(bad, qid=handle.qid)
            for cycle in range(3):
                monitor.process(
                    monitor.make_records(rows(rng, 8), time_=float(cycle))
                )
            assert hub.flush(timeout=5)
            assert delivery.errors > 0
            # The monitor kept cycling despite the raising subscriber.
            assert len(monitor.cycle_seconds) == 3
        finally:
            hub.close()
            monitor.close()

    def test_slow_subscriber_does_not_block_maintenance(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor, default_policy="drop_oldest")
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=3)
            )
            release = threading.Event()
            def stalled(change, at):
                release.wait(timeout=30)
            delivery = hub.deliver(stalled, qid=handle.qid, maxlen=2)
            started = time.perf_counter()
            for cycle in range(10):
                monitor.process(
                    monitor.make_records(rows(rng, 8), time_=float(cycle))
                )
            elapsed = time.perf_counter() - started
            # 10 cycles of a tiny workload with a stalled subscriber
            # must not take anywhere near the stall duration.
            assert elapsed < 5
            assert delivery.pending <= 2
            release.set()
        finally:
            hub.close()
            monitor.close()


class TestPolicies:
    def run_with_policy(self, rng, policy, maxlen, hold_cycles):
        """Drive cycles with the consumer held, then release and
        compare the replayed state to the pull result."""
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([0.8, 1.2]), k=3)
            )
            replayer = _Replayer(handle.result())
            delivery = hub.deliver(
                replayer, qid=handle.qid, policy=policy, maxlen=maxlen
            )
            delivery.hold()
            for cycle in range(hold_cycles):
                monitor.process(
                    monitor.make_records(rows(rng, 10), time_=float(cycle))
                )
            delivery.release()
            assert hub.flush(timeout=10)
            return monitor, hub, handle, delivery, replayer
        except BaseException:
            hub.close()
            monitor.close()
            raise

    def test_coalesce_preserves_replay_parity_across_overflow(self, rng):
        monitor, hub, handle, delivery, replayer = self.run_with_policy(
            rng, "coalesce", maxlen=2, hold_cycles=10
        )
        try:
            assert delivery.coalesced > 0
            assert any(
                change.cause == "resync" for change in replayer.deltas
            )
            assert replayer.state() == handle.result()
            assert delivery.dropped == 0
        finally:
            hub.close()
            monitor.close()

    def test_coalesce_bounds_queue_to_distinct_queries(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handles = monitor.add_queries(
                [
                    TopKQuery(LinearFunction([1.0, w / 4.0]), k=2)
                    for w in range(1, 5)
                ]
            )
            delivery = hub.deliver(
                lambda change, at: None, policy="coalesce", maxlen=2
            )
            delivery.hold()
            for cycle in range(12):
                monitor.process(
                    monitor.make_records(rows(rng, 10), time_=float(cycle))
                )
            # At most one pending resync per distinct query (+1 slack
            # for the delta appended after the collapse).
            assert delivery.pending <= len(handles) + 1
            delivery.release()
            assert hub.flush(timeout=10)
        finally:
            hub.close()
            monitor.close()

    def test_drop_oldest_counts_losses_and_never_blocks(self, rng):
        monitor, hub, handle, delivery, _ = self.run_with_policy(
            rng, "drop_oldest", maxlen=2, hold_cycles=10
        )
        try:
            assert delivery.dropped > 0
            assert delivery.high_watermark <= 2
        finally:
            hub.close()
            monitor.close()

    def test_drop_oldest_parity_when_capacity_suffices(self, rng):
        monitor, hub, handle, delivery, replayer = self.run_with_policy(
            rng, "drop_oldest", maxlen=512, hold_cycles=8
        )
        try:
            assert delivery.dropped == 0
            assert replayer.state() == handle.result()
        finally:
            hub.close()
            monitor.close()

    def test_block_policy_applies_backpressure_losslessly(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=3)
            )
            replayer = _Replayer(handle.result())
            slow_calls = []
            def slow(change, at):
                time.sleep(0.01)
                replayer(change, at)
                slow_calls.append(change)
            delivery = hub.deliver(
                slow, qid=handle.qid, policy="block", maxlen=1
            )
            for cycle in range(8):
                monitor.process(
                    monitor.make_records(rows(rng, 10), time_=float(cycle))
                )
            assert hub.flush(timeout=10)
            assert delivery.dropped == 0
            assert delivery.coalesced == 0
            assert replayer.state() == handle.result()
            assert delivery.high_watermark <= 1
        finally:
            hub.close()
            monitor.close()

    def test_coalesce_preserves_terminal_cancel_cause(self, rng):
        """Regression: a backlog collapsed *onto* the query's final
        cancel delta must still read cause="cancel" — consumers (the
        serving runtime included) key teardown on it."""
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=3)
            )
            replayer = _Replayer(handle.result())
            delivery = hub.deliver(
                replayer, qid=handle.qid, policy="coalesce", maxlen=1
            )
            delivery.hold()
            for cycle in range(4):
                monitor.process(
                    monitor.make_records(rows(rng, 10), time_=float(cycle))
                )
            handle.cancel()  # lands on an already-full queue
            delivery.release()
            assert hub.flush(timeout=10)
            assert replayer.deltas
            assert replayer.deltas[-1].cause == "cancel"
            assert replayer.state() == []
        finally:
            hub.close()
            monitor.close()

    def test_invalid_policy_rejected(self):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        try:
            with pytest.raises(ValueError):
                hub.deliver(lambda change, at: None, policy="fifo")
            with pytest.raises(ValueError):
                hub.deliver(lambda change, at: None, maxlen=0)
            with pytest.raises(ValueError):
                DeliveryHub(monitor, default_policy="nope")
        finally:
            hub.close()
            monitor.close()


class TestTeardown:
    def test_monitor_close_stops_deliveries(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        delivery = hub.deliver(lambda change, at: None, qid=handle.qid)
        monitor.process(monitor.make_records(rows(rng, 6)))
        monitor.close()
        # The hub hooks the subscription-cancel signal: deliveries
        # drain and close without any explicit hub.close().
        deadline = time.monotonic() + 5
        while not delivery.closed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert delivery.closed
        assert hub.closed

    def test_hub_close_is_idempotent(self):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        hub.deliver(lambda change, at: None)
        hub.close()
        hub.close()
        with pytest.raises(RuntimeError):
            hub.deliver(lambda change, at: None)
        monitor.close()

    def test_close_releases_blocked_producer(self, rng):
        monitor = make_monitor()
        hub = DeliveryHub(monitor)
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        delivery = hub.deliver(
            lambda change, at: None,
            qid=handle.qid,
            policy="block",
            maxlen=1,
        )
        delivery.hold()
        finished = threading.Event()
        def churn():
            for cycle in range(4):
                monitor.process(
                    monitor.make_records(rows(rng, 6), time_=float(cycle))
                )
            finished.set()
        producer = threading.Thread(target=churn, daemon=True)
        producer.start()
        time.sleep(0.2)  # let the producer park on the full queue
        delivery.close()
        assert finished.wait(timeout=5), (
            "blocked producer was not released by delivery.close()"
        )
        producer.join(timeout=5)
        hub.close()
        monitor.close()
