"""Engine-level observability: op-counter mirror, spans, shard merge.

The overriding contract: instrumentation never perturbs results —
traced and untraced runs stay bitwise identical, sharded or not.
"""

import pytest

from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.stats import OpCounters
from repro.core.window import CountBasedWindow
from repro.obs.metrics import op_counter_names


def make_monitor(algorithm="tma", capacity=16, shards=None, **kwargs):
    return StreamMonitor(
        2,
        CountBasedWindow(capacity),
        algorithm=algorithm,
        cells_per_axis=4,
        shards=shards,
        **kwargs,
    )


def drive(monitor, cycles=3, batch=6, seed=7):
    import random

    rng = random.Random(seed)
    qid = monitor.add_query(TopKQuery(LinearFunction([0.7, 0.3]), k=3))
    results = []
    for cycle in range(cycles):
        rows = [[rng.random(), rng.random()] for _ in range(batch)]
        monitor.process(monitor.make_records(rows, time_=float(cycle)))
        results.append([entry.rid for entry in monitor.result(qid)])
    return results


class TestOpCounterMirror:
    def test_every_op_counter_field_exposed(self):
        monitor = make_monitor()
        try:
            drive(monitor)
            snap = monitor.metrics()
            expected = set(op_counter_names(OpCounters().as_dict()))
            assert expected <= set(snap["counters"])
            assert (
                snap["counters"]["repro_op_arrivals_total"]
                == monitor.counters.arrivals
            )
        finally:
            monitor.close()

    def test_mirror_tracks_counters_without_tracing(self):
        monitor = make_monitor()  # trace defaults off
        try:
            drive(monitor, cycles=2)
            first = monitor.metrics()["counters"]["repro_op_arrivals_total"]
            assert first == monitor.counters.arrivals > 0
        finally:
            monitor.close()


class TestTracing:
    def test_untraced_monitor_has_no_traces(self):
        monitor = make_monitor()
        try:
            drive(monitor)
            assert monitor.last_traces() == []
            assert monitor.tracer.enabled is False
        finally:
            monitor.close()

    def test_traced_monitor_records_phase_spans(self):
        monitor = make_monitor(trace=True)
        try:
            drive(monitor, cycles=4)
            traces = monitor.last_traces()
            assert len(traces) == 4
            phases = set(traces[-1]["phases"])
            assert "ingest" in phases
            assert "traversal" in phases  # tma's maintenance span
            histograms = monitor.metrics()["histograms"]
            assert "repro_phase_ingest_seconds" in histograms
            assert histograms["repro_phase_ingest_seconds"]["count"] == 4
        finally:
            monitor.close()

    def test_sma_emits_skyband_span(self):
        monitor = make_monitor(algorithm="sma", trace=True)
        try:
            drive(monitor)
            assert "skyband" in monitor.last_traces()[-1]["phases"]
        finally:
            monitor.close()

    def test_tracing_does_not_change_results(self):
        plain = make_monitor()
        traced = make_monitor(trace=True)
        try:
            assert drive(plain) == drive(traced)
        finally:
            plain.close()
            traced.close()

    def test_slow_cycle_jsonl(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        monitor = make_monitor(
            trace=True,
            slow_cycle_seconds=0.0,
            slow_cycle_path=str(path),
        )
        try:
            drive(monitor, cycles=2)
            assert monitor.tracer.slow_cycles == 2
            assert len(path.read_text().splitlines()) == 2
        finally:
            monitor.close()


class TestShardedMerge:
    def test_pipe_workers_ship_metric_deltas(self):
        monitor = make_monitor(shards=2, trace=True)
        try:
            drive(monitor, cycles=3)
            snap = monitor.metrics()
            histograms = snap["histograms"]
            # coordinator-side spans
            assert "repro_phase_encode_seconds" in histograms
            assert "repro_phase_shard_rpc_seconds" in histograms
            # worker-side spans, merged back through the reply frames
            assert "repro_phase_traversal_seconds" in histograms
            # transport byte/frame gauges are published per cycle
            assert snap["gauges"]["repro_transport_sent_bytes"] > 0
            assert snap["gauges"]["repro_transport_frames_sent"] > 0
        finally:
            monitor.close()

    def test_sharded_counters_match_op_counters(self):
        monitor = make_monitor(shards=2)
        try:
            drive(monitor, cycles=3)
            snap = monitor.metrics()
            assert (
                snap["counters"]["repro_op_arrivals_total"]
                == monitor.counters.arrivals
            )
        finally:
            monitor.close()

    def test_sharded_tracing_matches_inproc_results(self):
        inproc = make_monitor()
        sharded = make_monitor(shards=2, trace=True)
        try:
            assert drive(inproc) == drive(sharded)
        finally:
            inproc.close()
            sharded.close()


class TestApproxSketchGauges:
    def test_refresh_publishes_estimate_gauges(self):
        monitor = StreamMonitor(
            2,
            CountBasedWindow(64),
            algorithm="approx",
            cells_per_axis=4,
        )
        try:
            from repro.approx import Accuracy

            monitor.add_query(
                TopKQuery(LinearFunction([0.5, 0.5]), k=3),
                accuracy=Accuracy(epsilon=0.1),
            )
            drive_rows = [
                [[(i * 13 + j * 7) % 97 / 97.0, (i * 5 + j) % 89 / 89.0]
                 for j in range(20)]
                for i in range(6)
            ]
            for cycle, rows in enumerate(drive_rows):
                monitor.process(
                    monitor.make_records(rows, time_=float(cycle))
                )
            gauges = monitor.metrics()["gauges"]
            if monitor.counters.approx_refreshes:
                assert "repro_approx_sketch_estimated_points" in gauges
                assert "repro_approx_sketch_actual_points" in gauges
                assert gauges["repro_approx_sketch_estimate_error"] >= 0.0
        finally:
            monitor.close()


class TestLifecycle:
    """The registry must not change how monitors die.

    The obs layer hangs a registry (with collect-time callbacks) off
    every monitor; done naively that ties monitor, algorithm, and
    handles into reference cycles, so closed monitors — and their
    windows and grids — sit in the heap until a gen-2 GC pass, whose
    pause then lands inside some *later* cycle loop. Pin refcount
    death: a closed, dereferenced monitor is gone without gc.collect().
    """

    def test_closed_monitor_dies_by_refcount(self):
        import gc
        import weakref

        gc.disable()
        try:
            monitor = make_monitor()
            handle = monitor.add_query(
                TopKQuery(LinearFunction([0.7, 0.3]), k=3)
            )
            drive(monitor)
            monitor.metrics()  # exercise the collect-time adapters
            monitor.close()
            ref = weakref.ref(monitor)
            del monitor, handle
            assert ref() is None, (
                "closed StreamMonitor kept alive by a reference cycle"
            )
        finally:
            gc.enable()

    def test_traced_monitor_dies_by_refcount(self):
        import gc
        import weakref

        gc.disable()
        try:
            monitor = make_monitor(trace=True)
            monitor.add_query(TopKQuery(LinearFunction([0.5, 0.5]), k=2))
            drive(monitor)
            monitor.close()
            ref = weakref.ref(monitor)
            del monitor
            assert ref() is None, (
                "traced StreamMonitor kept alive by a reference cycle"
            )
        finally:
            gc.enable()
