"""Tests for the stdlib HTTP exposition endpoint."""

import json
import urllib.request

import pytest

from repro.obs.http import PROMETHEUS_CONTENT_TYPE, MetricsHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CycleTracer


def fetch(server, path):
    url = f"http://{server.host}:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read()


@pytest.fixture()
def served():
    registry = MetricsRegistry()
    registry.counter("repro_demo_total").inc(3)
    tracer = CycleTracer(registry=registry)
    for index in range(3):
        tracer.begin_cycle(arrivals=index)
        with tracer.span("ingest"):
            pass
        tracer.end_cycle()
    server = MetricsHTTPServer(registry, tracer)
    with server:
        yield server


class TestEndpoints:
    def test_metrics_scrape(self, served):
        status, headers, body = fetch(served, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "repro_demo_total 3" in text
        assert "repro_phase_ingest_seconds_count 3" in text

    def test_trace_json(self, served):
        status, headers, body = fetch(served, "/trace")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["cycles"] == 3
        assert len(payload["traces"]) == 3
        assert payload["phase_totals"]["ingest"]["spans"] == 3

    def test_trace_limit(self, served):
        _, _, body = fetch(served, "/trace?n=1")
        payload = json.loads(body)
        assert len(payload["traces"]) == 1
        assert payload["traces"][0]["cycle"] == 2

    def test_trace_bad_limit_is_400(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(served, "/trace?n=banana")
        assert excinfo.value.code == 400

    def test_healthz(self, served):
        status, _, body = fetch(served, "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_unknown_path_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(served, "/nope")
        assert excinfo.value.code == 404


class TestLifecycle:
    def test_start_stop_idempotent(self):
        server = MetricsHTTPServer(MetricsRegistry())
        server.start()
        port = server.port
        assert port > 0
        server.start()
        assert server.port == port
        server.stop()
        server.stop()

    def test_port_zero_binds_ephemeral(self):
        with MetricsHTTPServer(MetricsRegistry()) as server:
            assert server.port != 0

    def test_scrape_reflects_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_live_total")
        with MetricsHTTPServer(registry) as server:
            counter.inc(1)
            _, _, body = fetch(server, "/metrics")
            assert b"repro_live_total 1" in body
            counter.inc(1)
            _, _, body = fetch(server, "/metrics")
            assert b"repro_live_total 2" in body
