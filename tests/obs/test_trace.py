"""Tests for the cycle tracer: spans, ring buffer, slow-cycle JSONL."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    DEFAULT_RING_SIZE,
    NULL_TRACER,
    PHASE_NAMES,
    CycleTracer,
)


class TestSpans:
    def test_trace_records_phases(self):
        tracer = CycleTracer()
        tracer.begin_cycle(arrivals=3)
        with tracer.span("ingest"):
            pass
        with tracer.span("traversal"):
            pass
        trace = tracer.end_cycle(changes=1)
        assert trace["arrivals"] == 3
        assert trace["changes"] == 1
        assert trace["cycle"] == 0
        assert set(trace["phases"]) == {"ingest", "traversal"}
        for phase in trace["phases"].values():
            assert phase["wall_seconds"] >= 0.0
            assert phase["cpu_seconds"] >= 0.0
        assert trace["wall_seconds"] >= 0.0

    def test_repeated_spans_accumulate_within_cycle(self):
        tracer = CycleTracer()
        tracer.begin_cycle()
        for _ in range(3):
            with tracer.span("ingest"):
                pass
        trace = tracer.end_cycle()
        assert len(trace["phases"]) == 1
        totals = tracer.phase_totals()
        assert totals["ingest"]["spans"] == 3

    def test_span_records_even_on_exception(self):
        tracer = CycleTracer()
        tracer.begin_cycle()
        try:
            with tracer.span("ingest"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        trace = tracer.end_cycle()
        assert "ingest" in trace["phases"]

    def test_end_without_begin_is_none(self):
        assert CycleTracer().end_cycle() is None

    def test_phase_histograms_feed_registry(self):
        registry = MetricsRegistry()
        tracer = CycleTracer(registry=registry)
        tracer.begin_cycle()
        with tracer.span("skyband"):
            pass
        tracer.end_cycle()
        snap = registry.snapshot()
        assert "repro_phase_skyband_seconds" in snap["histograms"]
        assert snap["histograms"]["repro_phase_skyband_seconds"]["count"] == 1


class TestRing:
    def test_ring_keeps_last_n(self):
        tracer = CycleTracer(ring_size=4)
        for _ in range(10):
            tracer.begin_cycle()
            tracer.end_cycle()
        traces = tracer.last_traces()
        assert len(traces) == 4
        assert [t["cycle"] for t in traces] == [6, 7, 8, 9]
        assert [t["cycle"] for t in tracer.last_traces(2)] == [8, 9]
        assert tracer.cycles == 10

    def test_default_ring_size(self):
        tracer = CycleTracer()
        assert tracer._ring.maxlen == DEFAULT_RING_SIZE


class TestSlowCycles:
    def test_slow_cycle_dumped_as_jsonl(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        tracer = CycleTracer(
            slow_cycle_seconds=0.0, slow_cycle_path=str(path)
        )
        for _ in range(2):
            tracer.begin_cycle()
            with tracer.span("ingest"):
                pass
            tracer.end_cycle()
        assert tracer.slow_cycles == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            trace = json.loads(line)
            assert "phases" in trace and "wall_seconds" in trace

    def test_fast_cycles_not_dumped(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        tracer = CycleTracer(
            slow_cycle_seconds=60.0, slow_cycle_path=str(path)
        )
        tracer.begin_cycle()
        tracer.end_cycle()
        assert tracer.slow_cycles == 0
        assert not path.exists()

    def test_unwritable_path_degrades_silently(self):
        tracer = CycleTracer(
            slow_cycle_seconds=0.0,
            slow_cycle_path="/nonexistent-dir/slow.jsonl",
        )
        tracer.begin_cycle()
        tracer.end_cycle()  # must not raise
        assert tracer.slow_cycles == 1


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.begin_cycle(arrivals=1)
        with NULL_TRACER.span("ingest"):
            pass
        assert NULL_TRACER.end_cycle() is None
        assert NULL_TRACER.last_traces() == []
        assert NULL_TRACER.phase_totals() == {}
        assert NULL_TRACER.cycles == 0

    def test_shared_null_span(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


def test_phase_catalogue_is_stable():
    # docs/OBSERVABILITY.md documents exactly these span names; code
    # emitting a new phase must extend the catalogue deliberately.
    assert PHASE_NAMES == (
        "ingest",
        "traversal",
        "skyband",
        "sketch",
        "encode",
        "shard_rpc",
        "dispatch",
        "delivery",
    )
