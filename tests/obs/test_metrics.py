"""Tests for the zero-dependency metrics instruments and registry."""

import pickle

import pytest

from repro.core.stats import OpCounters
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    op_counter_names,
    publish_op_counters,
)


class TestInstruments:
    def test_counter_monotonic_int(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert isinstance(counter.value, int)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 3.0

    def test_histogram_buckets_and_cumulative(self):
        histogram = Histogram("h", buckets=[0.1, 1.0])
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(0.5)
        histogram.observe(5.0)  # lands in the +Inf overflow slot
        assert histogram.bucket_counts == [1, 2, 1]
        assert histogram.cumulative_counts() == [1, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.05)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_shape_and_pickles(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["bucket_counts"] == [1, 0]
        # the wire contract: shard workers pickle snapshots verbatim
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.histogram("h", buckets=[1.0]).observe(0.5)
        b.histogram("h", buckets=[1.0]).observe(2.0)
        b.gauge("g").set(7.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["bucket_counts"] == [1, 1]
        assert snap["histograms"]["h"]["count"] == 2

    def test_merge_replicated_skipped_unless_adopted(self):
        target = MetricsRegistry()
        shard = MetricsRegistry()
        shard.counter("repl").inc(5)
        shard.counter("owned").inc(5)
        replicated = frozenset(["repl"])
        target.merge(
            shard.snapshot(), replicated=replicated, adopt_replicated=True
        )
        target.merge(
            shard.snapshot(), replicated=replicated, adopt_replicated=False
        )
        snap = target.snapshot()
        assert snap["counters"]["repl"] == 5  # adopted once
        assert snap["counters"]["owned"] == 10  # added from both shards

    def test_merge_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=[1.0])
        b.histogram("h", buckets=[2.0]).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_delta_subtracts_tallies_gauges_pass_through(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.gauge("g").set(9.0)
        registry.histogram("h").observe(2.0)
        delta = MetricsRegistry.delta(registry.snapshot(), before)
        assert delta["counters"]["c"] == 3
        assert delta["gauges"]["g"] == 9.0
        assert delta["histograms"]["h"]["bucket_counts"] == [0, 1]
        assert delta["histograms"]["h"]["count"] == 1

    def test_delta_then_merge_roundtrips(self):
        # the exact path a shard worker drives every cycle
        worker = MetricsRegistry()
        coordinator = MetricsRegistry()
        for cycle in range(3):
            before = worker.snapshot()
            worker.counter("c").inc(cycle + 1)
            worker.histogram("h", buckets=[1.0]).observe(0.5)
            coordinator.merge(
                MetricsRegistry.delta(worker.snapshot(), before)
            )
        assert coordinator.snapshot()["counters"]["c"] == 6
        assert coordinator.snapshot()["histograms"]["h"]["count"] == 3


class TestPrometheusExposition:
    def test_render_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", "a counter").inc(2)
        registry.gauge("repro_g").set(1.5)
        registry.histogram("repro_h_seconds", buckets=[0.1, 1.0]).observe(
            0.05
        )
        text = registry.to_prometheus()
        assert "# HELP repro_c_total a counter" in text
        assert "# TYPE repro_c_total counter" in text
        assert "repro_c_total 2" in text
        assert "repro_g 1.5" in text
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_h_seconds_bucket{le="1"} 1' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_h_seconds_sum 0.05" in text
        assert "repro_h_seconds_count 1" in text
        assert text.endswith("\n")

    def test_integral_floats_render_without_dot_zero(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3.0)
        assert "g 3\n" in registry.to_prometheus()


class TestOpCounterAdapter:
    def test_every_field_round_trips(self):
        counters = OpCounters(arrivals=7, skyband_insertions=2)
        registry = MetricsRegistry()
        publish_op_counters(registry, counters.as_dict)
        snap = registry.snapshot()
        expected = set(op_counter_names(counters.as_dict()))
        assert expected <= set(snap["counters"])
        assert snap["counters"]["repro_op_arrivals_total"] == 7
        assert snap["counters"]["repro_op_skyband_insertions_total"] == 2

    def test_collect_time_refresh_no_double_count(self):
        counters = OpCounters()
        registry = MetricsRegistry()
        publish_op_counters(registry, counters.as_dict)
        counters.arrivals = 5
        assert registry.snapshot()["counters"]["repro_op_arrivals_total"] == 5
        # repeated snapshots re-read, never accumulate
        assert registry.snapshot()["counters"]["repro_op_arrivals_total"] == 5
        counters.arrivals = 6
        assert registry.snapshot()["counters"]["repro_op_arrivals_total"] == 6
