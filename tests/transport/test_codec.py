"""Round trips and corruption guards for the TCP shard codec.

The codec must carry the worker RPC protocol's exact internal shapes
across a socket with repr-faithful floats (the precondition for
bitwise remote-shard parity) and treat malformed frames as protocol
errors, never as allocation requests or silent truncation.
"""

import math

import pytest

from repro.analysis.memory import SpaceBreakdown
from repro.core.results import ResultChange, ResultEntry
from repro.core.scoring import LinearFunction, QuadraticFunction
from repro.core.tuples import StreamRecord
from repro.service.protocol import ProtocolError
from repro.transport import codec
from repro.transport.snapshot import decode_cycle


def make_records(rows, start_rid=0, start_time=0.0):
    return [
        StreamRecord(start_rid + index, tuple(row), start_time + index)
        for index, row in enumerate(rows)
    ]


def roundtrip_request(command, payload):
    frame = codec.frame_message(codec.encode_request(command, payload))
    body = frame[codec.HEADER_BYTES:]
    assert codec.body_length(frame[: codec.HEADER_BYTES]) == len(body)
    return codec.decode_request(codec.decode_body(body))


def roundtrip_reply(command, payload):
    frame = codec.frame_message(codec.encode_reply(command, payload))
    body = frame[codec.HEADER_BYTES:]
    return codec.decode_reply(command, codec.decode_body(body))


class TestFraming:
    def test_header_roundtrip(self):
        frame = codec.frame_body(b'{"op":"ping"}')
        assert len(frame) == codec.HEADER_BYTES + 13
        assert codec.body_length(frame[: codec.HEADER_BYTES]) == 13

    def test_oversized_body_rejected_on_encode(self):
        big = b"x" * 8
        real_limit = codec.MAX_FRAME_BYTES
        try:
            codec.MAX_FRAME_BYTES = 4
            with pytest.raises(ProtocolError):
                codec.frame_body(big)
        finally:
            codec.MAX_FRAME_BYTES = real_limit

    def test_corrupt_header_rejected_on_decode(self):
        huge = (codec.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            codec.body_length(huge)


class TestCycleRequests:
    def test_cycle_deltas_roundtrip_bitwise(self):
        arrivals = make_records(
            [[0.1, 0.2], [0.7071067811865476, 1e-300], [0.0, 1.0]]
        )
        expirations = make_records([[0.5, 0.5]], start_rid=100)
        frame = codec.encode_cycle_request(arrivals, expirations)
        body = frame[codec.HEADER_BYTES:]
        command, payload = codec.decode_request(codec.decode_body(body))
        assert command == "cycle"
        got_arrivals, got_expirations = decode_cycle(payload)
        for got, want in zip(got_arrivals, arrivals):
            assert got.rid == want.rid
            assert got.time == want.time
            for a, b in zip(got.attrs, want.attrs):
                assert a.hex() == b.hex()
        assert [r.rid for r in got_expirations] == [100]

    def test_cols_snapshot_payload_accepted(self):
        payload = (
            "cols",
            ([0, 1], [0.0, 1.0], [[0.25, 0.75], [1.0, 0.0]]),
            ([], [], []),
        )
        command, decoded = roundtrip_request("cycle", payload)
        assert command == "cycle"
        assert decoded[0] == "cols"
        arrivals, expirations = decode_cycle(decoded)
        assert [r.rid for r in arrivals] == [0, 1]
        assert expirations == []

    def test_shm_snapshot_payload_never_crosses_the_wire(self):
        with pytest.raises(ProtocolError):
            codec.encode_request(
                "cycle", ("shm", "psm_name", (2, 2), [0, 1], [0.0, 1.0],
                          [], [])
            )

    def test_ragged_columns_rejected(self):
        message = {
            "op": "cycle",
            "ins": {"rids": [1, 2], "times": [0.0], "rows": [[0.5]]},
            "del": {"rids": [], "times": [], "rows": []},
        }
        with pytest.raises(ProtocolError):
            codec.decode_request(message)


class TestQueryRequests:
    def test_register_many_roundtrip(self):
        from repro.core.queries import TopKQuery

        queries = []
        for qid, weights in enumerate([[0.6, 0.4], [1.0, 1e-17]]):
            query = TopKQuery(LinearFunction(weights), k=qid + 1)
            query.qid = qid + 10
            queries.append(query)
        command, decoded = roundtrip_request("register_many", queries)
        assert command == "register_many"
        assert [q.qid for q in decoded] == [10, 11]
        assert [q.k for q in decoded] == [1, 2]
        for got, want in zip(decoded, queries):
            for a, b in zip(got.function.weights, want.function.weights):
                assert a.hex() == b.hex()

    def test_quadratic_function_rejected_locally(self):
        from repro.core.queries import TopKQuery

        query = TopKQuery(QuadraticFunction([0.5, 0.5]), k=2)
        query.qid = 3
        with pytest.raises(ProtocolError):
            codec.encode_request("register_many", [query])

    def test_update_roundtrip(self):
        command, decoded = roundtrip_request(
            "update", (7, 4, LinearFunction([0.3, 0.7]))
        )
        assert command == "update"
        qid, k, function = decoded
        assert (qid, k) == (7, 4)
        assert isinstance(function, LinearFunction)
        assert function.weights[1].hex() == (0.7).hex()

    def test_update_spec_only_changes(self):
        _, decoded = roundtrip_request("update", (7, None, None))
        assert decoded == (7, None, None)

    def test_update_quadratic_rejected(self):
        with pytest.raises(ProtocolError):
            codec.encode_request(
                "update", (7, None, QuadraticFunction([0.5, 0.5]))
            )

    def test_unregister_and_bare_ops(self):
        assert roundtrip_request("unregister", 9) == ("unregister", 9)
        for op in ("stats", "space", "ping", "stop"):
            assert roundtrip_request(op, None) == (op, None)

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError):
            codec.encode_request("fork_bomb", None)
        with pytest.raises(ProtocolError):
            codec.decode_request({"op": "fork_bomb"})


def make_entry(rid, score):
    return ResultEntry(score, StreamRecord(rid, (score, 1.0 - score), 0.0))


class TestReplies:
    def test_cycle_reply_roundtrip(self):
        entry = make_entry(5, 0.123456789012345678)
        change = ResultChange(
            qid=2, added=[entry], removed=[], top=[entry]
        )
        status, payload = roundtrip_reply(
            "cycle", ({2: change}, {"arrivals": 4})
        )
        assert status == "ok"
        changes, counters, metrics = payload
        assert counters == {"arrivals": 4}
        assert metrics is None  # revision-2 shaped reply: no delta
        got = changes[2].top[0]
        assert got.rid == 5
        assert got.score.hex() == entry.score.hex()
        assert got.record.attrs == entry.record.attrs

    def test_cycle_reply_carries_metrics_delta(self):
        entry = make_entry(7, 0.5)
        change = ResultChange(qid=1, added=[entry], removed=[], top=[entry])
        delta = {
            "counters": {"repro_delivery_dropped_total": 2},
            "gauges": {"repro_approx_sketch_estimate_error": 0.125},
            "histograms": {
                "repro_phase_traversal_seconds": {
                    "bounds": [0.001, 0.1],
                    "bucket_counts": [3, 1, 0],
                    "sum": 0.0625,
                    "count": 4,
                }
            },
        }
        status, payload = roundtrip_reply(
            "cycle", ({1: change}, {"arrivals": 1}, delta)
        )
        assert status == "ok"
        _, counters, metrics = payload
        assert counters == {"arrivals": 1}
        assert metrics == delta

    def test_register_many_reply_roundtrip(self):
        per_qid = {
            3: [make_entry(1, 0.25)],
            1: [make_entry(2, 1e-300), make_entry(4, 0.5)],
        }
        status, payload = roundtrip_reply(
            "register_many", (per_qid, {"topk_computations": 2})
        )
        assert status == "ok"
        decoded, counters = payload
        assert set(decoded) == {1, 3}
        assert decoded[1][0].score.hex() == (1e-300).hex()
        assert counters == {"topk_computations": 2}

    def test_stats_reply_roundtrip(self):
        status, payload = roundtrip_reply(
            "stats", (({4: 2, 1: 5}, 17), {"influence_checks": 3})
        )
        assert status == "ok"
        (sizes, il_entries), counters = payload
        assert sizes == {1: 5, 4: 2}
        assert il_entries == 17
        assert counters == {"influence_checks": 3}

    def test_space_reply_roundtrip(self):
        breakdown = SpaceBreakdown(
            records=1024, point_lists=96, influence_lists=256
        )
        status, payload = roundtrip_reply("space", breakdown)
        assert status == "ok"
        assert isinstance(payload, SpaceBreakdown)
        assert payload.records == 1024
        assert payload.influence_lists == 256
        assert payload.total == breakdown.total

    def test_ping_and_stop_replies(self):
        assert roundtrip_reply("ping", "pong") == ("ok", "pong")
        assert roundtrip_reply("stop", None) == ("ok", None)

    def test_error_reply_carries_traceback_text(self):
        message = codec.encode_error_reply("Traceback ...\nBoom")
        status, payload = codec.decode_reply("cycle", message)
        assert status == "error"
        assert "Boom" in payload

    def test_nan_never_crosses_the_wire(self):
        entry = make_entry(5, math.nan)
        change = ResultChange(qid=2, added=[], removed=[], top=[entry])
        with pytest.raises(ValueError):  # json's allow_nan=False guard
            codec.frame_message(
                codec.encode_reply("cycle", ({2: change}, {}))
            )
