"""Channel-layer behavior: addressing, prepared cycles, TCP failures.

Satellite of the transport refactor: a remote shard that dies
mid-cycle must surface as a *descriptive* typed error (never a hang),
reply silence must trip the timeout, and teardown must be idempotent.
The fake hosts here are in-process threads speaking the real server
channel, so every failure is deterministic.
"""

import contextlib
import socket
import threading

import pytest

from repro.core.errors import StreamError
from repro.parallel.sharded import ShardedMonitorAlgorithm
from repro.transport.base import (
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    PreparedCycle,
    WorkerFailure,
    parse_address,
    prepare_cycle,
)
from repro.transport.codec import SHARD_PROTOCOL_VERSION
from repro.transport.tcp import TcpChannel, TcpServerChannel


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.7:7071") == ("10.0.0.7", 7071)

    def test_ipv6_brackets_stripped(self):
        assert parse_address("[::1]:7071") == ("::1", 7071)

    def test_missing_port_rejected(self):
        with pytest.raises(ChannelError):
            parse_address("localhost")

    def test_non_integer_port_rejected(self):
        with pytest.raises(ChannelError):
            parse_address("localhost:http")

    def test_empty_host_rejected(self):
        with pytest.raises(ChannelError):
            parse_address(":7071")


class _Recorder:
    kind = "fake"
    calls = 0

    @classmethod
    def encode_cycle(cls, arrivals, expirations):
        cls.calls += 1
        return ("payload", cls.calls), _Handle(), 7


class _Handle:
    def __init__(self):
        self.closed = 0

    def close(self):
        self.closed += 1


class TestPreparedCycle:
    def test_encode_once_per_kind(self):
        _Recorder.calls = 0
        prepared = prepare_cycle([_Recorder(), _Recorder()], [], [])
        assert _Recorder.calls == 1
        assert prepared.payload_for("fake") == ("payload", 1)
        assert prepared.shared_bytes == 7

    def test_close_is_idempotent(self):
        handle = _Handle()
        prepared = PreparedCycle({"fake": None}, [handle], 0)
        prepared.close()
        prepared.close()
        assert handle.closed == 1


# ----------------------------------------------------------------------
# Thread-hosted fake shard hosts (deterministic failure injection)
# ----------------------------------------------------------------------


@contextlib.contextmanager
def fake_host(handler):
    """One loopback listener whose first session runs ``handler``."""
    server = socket.create_server(("127.0.0.1", 0), backlog=1)
    address = "127.0.0.1:%d" % server.getsockname()[1]
    failures = []

    def run():
        try:
            conn, _peer = server.accept()
        except OSError:
            return
        try:
            handler(conn)
        except (ChannelClosed, OSError):
            pass
        except Exception as exc:  # pragma: no cover - test debugging
            failures.append(exc)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        yield address
    finally:
        server.close()
        thread.join(timeout=10)
        assert not failures, failures


def accept_handshake(channel):
    command, _payload = channel.receive()
    assert command == "configure"
    channel.reply_ok(
        {
            "protocol": SHARD_PROTOCOL_VERSION,
            "algorithm": "tma",
            "pid": 0,
        }
    )


def handshake_then_die(conn):
    """Configure normally, then vanish — a shard killed mid-cycle."""
    channel = TcpServerChannel(conn)
    accept_handshake(channel)
    channel.receive()  # swallow the next request, then drop the link
    channel.close()


def handshake_then_silence(conn):
    """Configure normally, then accept requests without ever replying."""
    channel = TcpServerChannel(conn)
    accept_handshake(channel)
    while True:
        channel.receive()


def reject_handshake(conn):
    channel = TcpServerChannel(conn)
    channel.receive()
    channel.reply_error("RuntimeError: no such algorithm here")


def real_shard(conn):
    from repro.cluster.shard import serve_session

    serve_session(conn)


def connect(address, timeout=10.0):
    return TcpChannel.connect(
        address,
        algorithm="tma",
        dims=2,
        cells_per_axis=4,
        options={},
        timeout=timeout,
    )


class TestTcpChannelFailures:
    def test_connect_refused_is_channel_error(self):
        probe = socket.create_server(("127.0.0.1", 0))
        dead = "127.0.0.1:%d" % probe.getsockname()[1]
        probe.close()
        with pytest.raises(ChannelError, match="cannot connect"):
            connect(dead)

    def test_handshake_rejection_carries_remote_error(self):
        with fake_host(reject_handshake) as address:
            with pytest.raises(WorkerFailure, match="no such algorithm"):
                connect(address)

    def test_peer_death_mid_request_is_channel_closed(self):
        with fake_host(handshake_then_die) as address:
            channel = connect(address)
            try:
                channel.request("ping")
                with pytest.raises(
                    ChannelClosed, match="closed the connection"
                ):
                    channel.response(timeout=10.0)
            finally:
                channel.terminate()

    def test_reply_silence_is_channel_timeout(self):
        with fake_host(handshake_then_silence) as address:
            channel = connect(address)
            try:
                channel.request("ping")
                with pytest.raises(ChannelTimeout, match="no reply"):
                    channel.response(timeout=0.3)
            finally:
                channel.terminate()

    def test_terminate_is_idempotent_and_final(self):
        with fake_host(real_shard) as address:
            channel = connect(address)
            assert channel.is_alive()
            channel.terminate()
            channel.terminate()
            assert not channel.is_alive()
            with pytest.raises(ChannelClosed, match="already closed"):
                channel.request("ping")

    def test_response_without_request_rejected(self):
        with fake_host(real_shard) as address:
            channel = connect(address)
            try:
                with pytest.raises(ChannelError, match="no outstanding"):
                    channel.response(timeout=1.0)
            finally:
                channel.terminate()


class TestCoordinatorFailureModes:
    """Satellite: remote failures surface as descriptive StreamErrors,
    promptly, and teardown stays idempotent."""

    def test_shard_killed_mid_cycle_is_descriptive_not_a_hang(self):
        with fake_host(handshake_then_die) as address:
            algo = ShardedMonitorAlgorithm("tma", 2, shards=[address])
            with pytest.raises(StreamError, match="died mid-request"):
                algo.process_cycle([], [])
            # the pool terminated itself; close is a cheap no-op now
            algo.close()

    def test_ping_barrier_times_out_cleanly(self):
        with fake_host(handshake_then_silence) as address:
            algo = ShardedMonitorAlgorithm("tma", 2, shards=[address])
            algo._timeout = 0.5
            with pytest.raises(StreamError, match="did not reply within"):
                algo.ping()
            algo.close()

    def test_handshake_rejection_names_the_host(self):
        with fake_host(reject_handshake) as address:
            with pytest.raises(
                StreamError, match="rejected the configure handshake"
            ):
                ShardedMonitorAlgorithm("tma", 2, shards=[address])

    def test_connect_failure_names_the_address(self):
        probe = socket.create_server(("127.0.0.1", 0))
        dead = "127.0.0.1:%d" % probe.getsockname()[1]
        probe.close()
        with pytest.raises(StreamError, match="cannot bring up"):
            ShardedMonitorAlgorithm("tma", 2, shards=[dead])

    def test_close_is_idempotent_with_remote_shards(self):
        with fake_host(real_shard) as address:
            algo = ShardedMonitorAlgorithm("tma", 2, shards=[address])
            assert algo.ping()
            algo.close()
            algo.close()

    def test_thread_hosted_shard_round_trip(self):
        """A real serve-loop behind TCP: queries, cycles, stats, bytes."""
        from repro.core.queries import TopKQuery
        from repro.core.scoring import LinearFunction
        from repro.core.tuples import StreamRecord

        with fake_host(real_shard) as address:
            algo = ShardedMonitorAlgorithm(
                "tma", 2, shards=[address], cells_per_axis=4
            )
            try:
                assert algo.transport == "tcp"
                query = TopKQuery(LinearFunction([0.5, 0.5]), k=2)
                query.qid = 0
                algo.register(query)
                records = [
                    StreamRecord(rid, (0.1 * rid, 0.5), 0.0)
                    for rid in range(3)
                ]
                report = algo.process_cycle(records, [])
                assert report[0].top_ids() == [2, 1]
                stats = algo.transport_stats()
                assert stats["transport"] == "tcp"
                assert stats["cycles"] == 1
                assert stats["last_cycle"]["wire_bytes"] > 0
                assert stats["last_cycle"]["shared_bytes"] == 0
            finally:
                algo.close()
