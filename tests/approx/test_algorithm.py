"""ApproxTopKAlgorithm behaviour: contracts, bounds, coexistence."""

import random

import pytest

from repro.approx import Accuracy
from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow

from tests.conftest import brute_top_k, make_records, random_rows


def make_monitor(algorithm="approx", capacity=120, dims=2, cells=8):
    return StreamMonitor(
        dims,
        CountBasedWindow(capacity),
        algorithm=algorithm,
        cells_per_axis=cells,
    )


def drive(monitor, rng, cycles=20, rate=15, dims=2, capacity=120):
    """Feed random cycles; yield (held_records, report) per cycle."""
    held = []
    next_id = 0
    for cycle in range(cycles):
        rows = random_rows(rng, rate, dims)
        records = make_records(rows, start_id=next_id, time=float(cycle))
        next_id += rate
        report = monitor.process(records)
        held.extend(records)
        if len(held) > capacity:
            held = held[-capacity:]
        yield held, report


class TestContractRouting:
    def test_exact_algorithm_rejects_contract(self):
        monitor = make_monitor(algorithm="tma")
        with pytest.raises(QueryError):
            monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=2),
                accuracy=Accuracy(epsilon=0.05),
            )

    def test_constrained_query_rejects_contract(self):
        from repro.core.queries import ConstrainedTopKQuery
        from repro.core.regions import Rectangle

        monitor = make_monitor()
        query = ConstrainedTopKQuery(
            LinearFunction([1.0, 1.0]),
            k=2,
            constraint=Rectangle((0.0, 0.0), (0.5, 0.5)),
        )
        with pytest.raises(QueryError):
            monitor.add_query(query, accuracy=Accuracy(epsilon=0.05))

    def test_contract_is_optional(self):
        monitor = make_monitor()
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
        assert monitor.result(qid) == []


class TestCertifiedBounds:
    def test_bound_holds_cycle_by_cycle(self, rng):
        """Every report's certified bound covers the true kth score."""
        epsilon = 0.1
        monitor = make_monitor()
        query = TopKQuery(LinearFunction([0.7, 0.3]), k=5)
        qid = monitor.add_query(query, accuracy=Accuracy(epsilon=epsilon))
        for held, _ in drive(monitor, rng):
            got = monitor.result(qid)
            exact = brute_top_k(held, query)
            assert len(got) == len(exact)
            if not got:
                continue
            bound = monitor.algorithm.result_bounds()[qid]
            assert 0.0 <= bound <= epsilon + 1e-12
            assert exact[-1].score <= got[-1].score * (1.0 + bound) + 1e-12

    def test_changes_annotated_approx_with_bound(self, rng):
        monitor = make_monitor()
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=3)
        qid = monitor.add_query(query, accuracy=Accuracy(epsilon=0.05))
        saw_change = False
        for _, report in drive(monitor, rng, cycles=12):
            change = report.changes.get(qid)
            if change is None or not change.changed:
                continue
            saw_change = True
            assert change.cause == "approx"
            assert change.bound is not None
            assert 0.0 <= change.bound <= 0.05 + 1e-12
        assert saw_change

    def test_exact_queries_unannotated(self, rng):
        monitor = make_monitor()
        qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=3))
        saw_change = False
        for _, report in drive(monitor, rng, cycles=8):
            change = report.changes.get(qid)
            if change is None or not change.changed:
                continue
            saw_change = True
            assert change.cause == "cycle"
            assert change.bound is None
        assert saw_change


class TestCoexistence:
    def test_exact_tier_bitwise_equals_plain_tma(self, rng):
        """Uncontracted queries on 'approx' match 'tma' exactly."""
        approx = make_monitor()
        plain = make_monitor(algorithm="tma")
        query_a = TopKQuery(LinearFunction([1.0, 1.0]), k=4)
        query_b = TopKQuery(LinearFunction([1.0, 1.0]), k=4)
        contracted = TopKQuery(LinearFunction([0.2, 0.8]), k=4)
        qid_a = approx.add_query(query_a)
        approx.add_query(contracted, accuracy=Accuracy(epsilon=0.1))
        qid_b = plain.add_query(query_b)
        seed = rng.random()
        for (_, _), (_, _) in zip(
            drive(approx, random.Random(seed)),
            drive(plain, random.Random(seed)),
        ):
            left = [
                (entry.score.hex(), entry.rid)
                for entry in approx.result(qid_a)
            ]
            right = [
                (entry.score.hex(), entry.rid)
                for entry in plain.result(qid_b)
            ]
            assert left == right

    def test_result_state_sizes_include_buffers(self, rng):
        monitor = make_monitor()
        qid = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=3),
            accuracy=Accuracy(epsilon=0.1),
        )
        for _ in drive(monitor, rng, cycles=5):
            pass
        sizes = monitor.algorithm.result_state_sizes()
        assert sizes[int(qid.qid)] >= 3


class TestLifecycle:
    def test_unregister_contracted_query(self, rng):
        monitor = make_monitor()
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=3),
            accuracy=Accuracy(epsilon=0.1),
        )
        for _ in drive(monitor, rng, cycles=3):
            pass
        monitor.remove_query(handle)
        with pytest.raises(QueryError):
            monitor.result(handle)
        assert monitor.algorithm.result_bounds() == {}

    def test_update_query_reanchors(self, rng):
        monitor = make_monitor()
        query = TopKQuery(LinearFunction([1.0, 1.0]), k=3)
        handle = monitor.add_query(query, accuracy=Accuracy(epsilon=0.1))
        held = []
        for held, _ in drive(monitor, rng, cycles=6):
            pass
        entries = monitor.algorithm.update_query(int(handle.qid), k=7)
        assert len(entries) == min(7, len(held))
        exact = brute_top_k(held, query)
        bound = monitor.algorithm.result_bounds()[int(handle.qid)]
        assert exact[-1].score <= entries[-1].score * (1.0 + bound) + 1e-12

    def test_accuracies_exposed(self):
        monitor = make_monitor()
        contract = Accuracy(epsilon=0.07, delta=0.001)
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2), accuracy=contract
        )
        assert monitor.algorithm.accuracies() == {
            int(handle.qid): contract
        }
