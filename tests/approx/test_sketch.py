"""Unit tests for the sliding-window cell-population sketch."""

import random

import pytest

from repro.approx.sketch import (
    CellMapper,
    CellSketch,
    ExponentialHistogram,
    cycle_delta,
)
from repro.core.tuples import RecordFactory
from repro.grid.grid import Grid


def make_records(count, dims=3, seed=1, lo=0.0, hi=1.0):
    rng = random.Random(seed)
    factory = RecordFactory()
    return [
        factory.make(tuple(rng.uniform(lo, hi) for _ in range(dims)))
        for _ in range(count)
    ]


class TestCellMapper:
    def test_matches_grid_coords(self):
        """flat_of must reproduce Grid's clamped row-major indexing."""
        grid = Grid(3, 6)
        mapper = CellMapper(3, 6)
        for record in make_records(200, seed=2, lo=-0.2, hi=1.2):
            coords = grid.coords_of(record.attrs)
            flat = 0
            for index in coords:
                flat = flat * 6 + index
            assert mapper.flat_of(record.attrs) == flat

    def test_columns_match_flat_of(self):
        """The batched column reduction equals the scalar loop."""
        mapper = CellMapper(4, 5)
        records = make_records(300, dims=4, seed=3, lo=-0.1, hi=1.1)
        cells, counts = mapper.columns_of(records)
        tally = {}
        for record in records:
            flat = mapper.flat_of(record.attrs)
            tally[flat] = tally.get(flat, 0) + 1
        assert cells == sorted(tally)
        assert counts == [tally[cell] for cell in cells]
        assert sum(counts) == len(records)

    def test_empty_batch(self):
        assert CellMapper(2, 4).columns_of([]) == ([], [])


class TestCycleDelta:
    def test_empty_cycle_is_none(self):
        assert cycle_delta(CellMapper(2, 4), [], []) is None

    def test_canonical_shape(self):
        mapper = CellMapper(2, 4)
        arrivals = make_records(20, dims=2, seed=4)
        expirations = make_records(7, dims=2, seed=5)
        delta = cycle_delta(mapper, arrivals, expirations)
        assert delta["tick"] == 20
        assert delta["add_cells"] == sorted(delta["add_cells"])
        assert delta["drop_cells"] == sorted(delta["drop_cells"])
        assert sum(delta["add_counts"]) == 20
        assert sum(delta["drop_counts"]) == 7


class TestExponentialHistogram:
    def test_total_conserved(self):
        histogram = ExponentialHistogram(cap=3)
        inserted = 0
        rng = random.Random(6)
        for tick in range(1, 40):
            count = rng.randrange(1, 9)
            histogram.insert(tick, count)
            inserted += count
        assert histogram.total == inserted
        assert sum(size for _, size in histogram.buckets) == inserted

    def test_cap_invariant(self):
        """After every insert, at most cap buckets of each size."""
        histogram = ExponentialHistogram(cap=2)
        rng = random.Random(7)
        for tick in range(1, 60):
            histogram.insert(tick, rng.randrange(1, 12))
            by_size = {}
            sizes = [size for _, size in histogram.buckets]
            for size in sizes:
                by_size[size] = by_size.get(size, 0) + 1
            assert all(count <= 2 for count in by_size.values())
            # oldest-first, sizes non-increasing toward the newest end
            assert sizes == sorted(sizes, reverse=True)

    def test_expire_drops_old_buckets(self):
        histogram = ExponentialHistogram(cap=3)
        for tick in range(1, 11):
            histogram.insert(tick, 1)
        histogram.expire(5)
        assert all(ts > 5 for ts, _ in histogram.buckets)
        assert histogram.total == sum(s for _, s in histogram.buckets)

    def test_estimate_error_bound(self):
        """estimate() is within its relative error of the true count."""
        epsilon = 0.25
        cap = -(-1 // (2.0 * epsilon)).__trunc__() + 1
        rng = random.Random(8)
        histogram = ExponentialHistogram(cap)
        arrivals = []  # timestamps of unit arrivals
        tick = 0
        for _ in range(400):
            tick += 1
            count = rng.randrange(0, 4)
            if count:
                histogram.insert(tick, count)
                arrivals.extend([tick] * count)
            if rng.random() < 0.25:
                horizon = tick - rng.randrange(20, 120)
                histogram.expire(horizon)
                arrivals = [t for t in arrivals if t > horizon]
                exact = len(arrivals)
                estimate = histogram.estimate()
                assert abs(estimate - exact) <= max(1, epsilon * exact)


class TestCellSketch:
    def feed(self, sketch, seed=9, cycles=25, rate=30, window=200):
        mapper = CellMapper(3, 5)
        rng = random.Random(seed)
        factory = RecordFactory()
        held = []
        for _ in range(cycles):
            arrivals = [
                factory.make(tuple(rng.random() for _ in range(3)))
                for _ in range(rate)
            ]
            held.extend(arrivals)
            expired = []
            while len(held) > window:
                expired.append(held.pop(0))
            sketch.apply_delta(cycle_delta(mapper, arrivals, expired))
        return held

    def test_window_mode_population(self):
        sketch = CellSketch(epsilon=0.25)
        sketch.bind_window(200)
        held = self.feed(sketch)
        population = sketch.estimated_population()
        # all arrivals of a cycle share the closing tick, so expiry can
        # lag by at most one cycle's worth of records on top of the EH
        # bound
        assert len(held) * 0.7 <= population <= len(held) * 1.5

    def test_exact_mode_population(self):
        sketch = CellSketch(epsilon=0.25)
        held = self.feed(sketch)
        assert sketch.estimated_population() == len(held)

    def test_deterministic_state(self):
        first = CellSketch(epsilon=0.25)
        first.bind_window(200)
        second = CellSketch(epsilon=0.25)
        second.bind_window(200)
        self.feed(first)
        self.feed(second)
        assert first.state() == second.state()

    def test_state_is_canonical_jsonable(self):
        import json

        sketch = CellSketch(epsilon=0.25)
        sketch.bind_window(200)
        self.feed(sketch)
        state = sketch.state()
        assert state["mode"] == "window"
        assert state == json.loads(json.dumps(state))

    def test_space_words_counts_cells_and_buckets(self):
        sketch = CellSketch(epsilon=0.25)
        sketch.bind_window(200)
        self.feed(sketch)
        assert sketch.space_words() == (
            2 * sketch.tracked_cells() + 2 * sketch.bucket_count()
        )
        assert sketch.space_words() > 0

    def test_bind_window_after_data_rejected(self):
        sketch = CellSketch(epsilon=0.25)
        self.feed(sketch)
        with pytest.raises(ValueError):
            sketch.bind_window(100)

    @pytest.mark.parametrize("epsilon", [0.0, -0.5, 1.5])
    def test_bad_epsilon_rejected(self, epsilon):
        with pytest.raises(ValueError):
            CellSketch(epsilon=epsilon)
