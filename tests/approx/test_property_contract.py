"""Property test: the (ε,δ) contract holds on random streams.

ISSUE 9's acceptance property — draw random streams and assert the
observed rank error stays within ε at confidence at least 1−δ. The
scheme is deterministic (no hashing, no sampling), so the δ budget is
never spent: we assert the stronger statement that *every* report of
*every* stream satisfies its certified bound, and that the certified
bound never exceeds the contracted ε.
"""

import random

import pytest

from repro.approx import Accuracy
from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction, ProductFunction
from repro.core.window import CountBasedWindow

from tests.conftest import brute_top_k, make_records, random_rows


def observed_error(exact, got):
    """Relative rank error of a report against the exact oracle."""
    if not exact or exact[-1].score <= 0.0:
        return 0.0
    return max(0.0, (exact[-1].score - got[-1].score) / exact[-1].score)


def run_stream(seed, epsilon, dims=3, cells=6, capacity=150, cycles=30):
    rng = random.Random(seed)
    monitor = StreamMonitor(
        dims,
        CountBasedWindow(capacity),
        algorithm="approx",
        cells_per_axis=cells,
    )
    queries = []
    for index in range(4):
        weights = [rng.uniform(0.1, 1.0) for _ in range(dims)]
        function = (
            LinearFunction(weights)
            if index % 2 == 0
            else ProductFunction(weights)
        )
        query = TopKQuery(function, k=rng.randrange(1, 12))
        handle = monitor.add_query(
            query, accuracy=Accuracy(epsilon=epsilon, delta=0.01)
        )
        queries.append((int(handle.qid), query))

    held = []
    next_id = 0
    reports = 0
    for cycle in range(cycles):
        rate = rng.randrange(5, 25)
        records = make_records(
            random_rows(rng, rate, dims), start_id=next_id, time=float(cycle)
        )
        next_id += rate
        monitor.process(records)
        held.extend(records)
        if len(held) > capacity:
            held = held[-capacity:]

        bounds = monitor.algorithm.result_bounds()
        for qid, query in queries:
            got = monitor.result(qid)
            exact = brute_top_k(held, query)
            assert len(got) == len(exact)
            if not got:
                continue
            reports += 1
            bound = bounds[qid]
            # The contract: certified bound within ε, observed error
            # within the certified bound (hence within ε).
            assert 0.0 <= bound <= epsilon + 1e-12
            assert observed_error(exact, got) <= bound + 1e-9
            assert exact[-1].score <= got[-1].score * (1.0 + bound) + 1e-12
    return reports


@pytest.mark.parametrize("epsilon", [0.02, 0.05, 0.2])
def test_contract_holds_on_random_streams(epsilon):
    total_reports = 0
    for seed in range(6):
        total_reports += run_stream(seed, epsilon)
    # confidence 1 - δ means at most δ·reports violations were allowed;
    # we observed zero across every stream (asserted inline above).
    assert total_reports > 200


def test_churny_stream_with_tiny_window():
    """Deep churn: window barely larger than k forces refresh traffic."""
    for seed in range(3):
        run_stream(seed + 100, epsilon=0.1, capacity=20, cycles=40)
