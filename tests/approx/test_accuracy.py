"""Accuracy contract value object."""

import pytest

from repro.approx import Accuracy


class TestValidation:
    def test_defaults(self):
        contract = Accuracy(epsilon=0.05)
        assert contract.epsilon == 0.05
        assert contract.delta == 0.01

    @pytest.mark.parametrize("epsilon", [0.0, -0.1])
    def test_bad_epsilon_rejected(self, epsilon):
        with pytest.raises(ValueError):
            Accuracy(epsilon=epsilon)

    @pytest.mark.parametrize("delta", [-0.1, 1.0, 2.0])
    def test_bad_delta_rejected(self, delta):
        with pytest.raises(ValueError):
            Accuracy(epsilon=0.05, delta=delta)

    def test_zero_delta_allowed(self):
        # The deterministic scheme honours even a zero confidence
        # budget outright.
        assert Accuracy(epsilon=0.05, delta=0.0).delta == 0.0

    def test_frozen(self):
        contract = Accuracy(epsilon=0.05)
        with pytest.raises(AttributeError):
            contract.epsilon = 0.1


class TestSerialisation:
    def test_round_trip(self):
        contract = Accuracy(epsilon=0.02, delta=0.001)
        assert Accuracy.from_dict(contract.as_dict()) == contract

    def test_as_dict_shape(self):
        assert Accuracy(epsilon=0.1).as_dict() == {
            "epsilon": 0.1,
            "delta": 0.01,
        }
