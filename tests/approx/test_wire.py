"""Wire shapes of the approximate tier: protocol and shard codec."""

import pytest

from repro.approx import Accuracy
from repro.core.queries import TopKQuery
from repro.core.results import ResultChange, ResultEntry
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.service.protocol import (
    ProtocolError,
    change_from_wire,
    change_to_wire,
    query_from_wire,
    query_to_wire,
)
from repro.transport import codec


class TestServiceProtocol:
    def test_query_accuracy_round_trip(self):
        query = TopKQuery(LinearFunction([0.25, 0.75]), k=3)
        query.accuracy = Accuracy(epsilon=0.05, delta=0.001)
        spec = query_to_wire(query)
        assert spec["accuracy"] == {"epsilon": 0.05, "delta": 0.001}
        back = query_from_wire(spec)
        assert back.accuracy == query.accuracy
        assert back.k == 3

    def test_uncontracted_query_keeps_v1_shape(self):
        spec = query_to_wire(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
        assert "accuracy" not in spec
        assert query_from_wire(spec).accuracy is None

    def test_change_bound_round_trip(self):
        record = RecordFactory().make((0.5, 0.5))
        entry = ResultEntry(1.0, record)
        change = ResultChange(
            qid=4, added=[entry], top=[entry], cause="approx", bound=0.0125
        )
        spec = change_to_wire(change)
        assert spec["bound"] == 0.0125
        back = change_from_wire(spec)
        assert back.cause == "approx"
        assert back.bound == 0.0125

    def test_exact_change_omits_bound(self):
        change = ResultChange(qid=4, cause="cycle")
        spec = change_to_wire(change)
        assert "bound" not in spec
        assert change_from_wire(spec).bound is None


def sample_delta():
    return {
        "tick": 5,
        "add_cells": [0, 3, 7],
        "add_counts": [2, 1, 2],
        "drop_cells": [1],
        "drop_counts": [3],
    }


class TestShardCodec:
    def test_protocol_revision(self):
        # Revision 2 added the sketch delta + sketch introspection op;
        # revision 3 the optional per-cycle "metrics" reply key.
        assert codec.SHARD_PROTOCOL_VERSION == 3

    def test_cycle_with_sketch_round_trip(self):
        arrivals_cols = ([1], [0.0], [[0.5, 0.5]])
        expirations_cols = ([], [], [])
        payload = ("cols", arrivals_cols, expirations_cols, sample_delta())
        command, decoded = codec.decode_request(
            codec.encode_request("cycle", payload)
        )
        assert command == "cycle"
        assert decoded[0] == "cols"
        assert decoded[3] == sample_delta()

    def test_cycle_without_sketch_keeps_v1_shape(self):
        payload = ("cols", ([], [], []), ([], [], []))
        message = codec.encode_request("cycle", payload)
        assert "sketch" not in message
        command, decoded = codec.decode_request(message)
        assert command == "cycle"
        assert len(decoded) == 3

    def test_encode_cycle_request_frame(self):
        factory = RecordFactory()
        arrivals = [factory.make((0.1, 0.9))]
        frame = codec.encode_cycle_request(arrivals, [], sample_delta())
        body = frame[4:]
        message = codec.decode_body(body)
        command, decoded = codec.decode_request(message)
        assert command == "cycle"
        assert decoded[3] == sample_delta()

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda d: d.pop("tick"),
            lambda d: d.pop("add_counts"),
            lambda d: d.__setitem__("add_counts", [1]),
            lambda d: d.__setitem__("drop_counts", []),
            lambda d: d.__setitem__("tick", "soon"),
        ],
    )
    def test_malformed_sketch_delta_rejected(self, corrupt):
        message = codec.encode_request(
            "cycle", ("cols", ([], [], []), ([], [], []), sample_delta())
        )
        corrupt(message["sketch"])
        with pytest.raises(codec.ProtocolError):
            codec.decode_request(message)

    def test_sketch_op_is_bare(self):
        assert "sketch" in codec._BARE_OPS
        assert codec.decode_request(
            codec.encode_request("sketch", None)
        ) == ("sketch", None)

    def test_sketch_reply_round_trip(self):
        state = {
            "mode": "window",
            "tick": 12,
            "window": 80,
            "cells": [[3, [[10, 2], [12, 1]]]],
        }
        reply = codec.encode_reply("sketch", state)
        status, decoded = codec.decode_reply("sketch", reply)
        assert status == "ok"
        assert decoded == state

    def test_configure_round_trip(self):
        command, decoded = codec.decode_request(
            codec.encode_request("configure", {"window_capacity": 96})
        )
        assert command == "configure"
        assert decoded == {"window_capacity": 96}

    def test_contracted_query_round_trip(self):
        query = TopKQuery(LinearFunction([0.5, 0.5]), k=2)
        query.accuracy = Accuracy(epsilon=0.1)
        query.qid = 7
        spec = codec.shard_query_to_wire(query)
        back = codec.shard_query_from_wire(spec)
        assert back.qid == 7
        assert back.accuracy == query.accuracy
