"""Sharded (pipe and TCP) approximate tier ≡ single process, bit for bit.

ISSUE 9's parity property: the sketch state, approximate results, and
certified bounds of a sharded ``algorithm="approx"`` pool — over pipe
channels and over real TCP shard hosts — must be identical to the
single-process algorithm fed the same stream. The sketch delta is
derived once by the coordinator and shipped on the wire, so worker
sketches match byte for byte by construction; this suite pins that.
Bounds cross the wire only inside change reports, so they are compared
through each cycle's report signature (cause and bound included).
"""

import random

from repro.approx import Accuracy
from repro.cluster import local_shard_hosts
from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow

DIMS = 2
WINDOW = 80
CELLS = 5


def exact_keys(entries):
    return [(entry.score.hex(), entry.rid) for entry in entries]


def change_signature(report):
    return {
        qid: (
            exact_keys(change.added),
            exact_keys(change.removed),
            exact_keys(change.top),
            change.cause,
            None if change.bound is None else change.bound.hex(),
        )
        for qid, change in report.changes.items()
    }


def make_monitor(shards=None):
    return StreamMonitor(
        DIMS,
        CountBasedWindow(WINDOW),
        algorithm="approx",
        cells_per_axis=CELLS,
        shards=shards,
    )


def add_mixed_queries(monitor, seed):
    """Half the queries contracted, half exact, on one pool."""
    rng = random.Random(seed)
    queries = [
        TopKQuery(
            LinearFunction(
                [rng.uniform(0.1, 1.0) for _ in range(DIMS)]
            ),
            k=rng.choice([2, 4, 6]),
        )
        for _ in range(6)
    ]
    exact_qids = monitor.add_queries(queries[:3])
    approx_qids = monitor.add_queries(
        queries[3:], accuracy=Accuracy(epsilon=0.1)
    )
    return [int(qid) for qid in exact_qids] + [
        int(qid) for qid in approx_qids
    ]


def drive_parity(monitors, seed, cycles=12):
    """Feed one stream to every monitor; assert bitwise agreement.

    ``monitors`` maps names to StreamMonitors; the "mono" entry is the
    single-process reference the sharded pools must match.
    """
    names = sorted(monitors)
    qids = {
        name: add_mixed_queries(monitor, seed)
        for name, monitor in monitors.items()
    }
    for name in names:
        assert qids[name] == qids["mono"]
    sharded = [name for name in names if name != "mono"]

    rng = random.Random(seed * 17 + 3)
    approx_changes = 0
    for cycle in range(cycles):
        rows = [
            [rng.random() for _ in range(DIMS)] for _ in range(10)
        ]
        reports = {
            name: monitor.process(
                monitor.make_records(rows, time_=float(cycle))
            )
            for name, monitor in monitors.items()
        }
        want_changes = change_signature(reports["mono"])
        approx_changes += sum(
            1
            for signature in want_changes.values()
            if signature[3] == "approx"
        )
        want_results = {
            qid: exact_keys(monitors["mono"].result(qid))
            for qid in qids["mono"]
        }
        want_sketch = monitors["mono"].algorithm.sketch_state()
        assert want_sketch["tick"] == (cycle + 1) * 10
        for name in sharded:
            monitor = monitors[name]
            assert change_signature(reports[name]) == want_changes, (
                f"cycle {cycle}: {name} change reports"
            )
            got = {
                qid: exact_keys(monitor.result(qid))
                for qid in qids["mono"]
            }
            assert got == want_results, f"cycle {cycle}: {name} results"
            for shard, state in enumerate(
                monitor.algorithm.shard_sketch_states()
            ):
                assert state == want_sketch, (
                    f"cycle {cycle}: {name} shard {shard} sketch"
                )
    # The stream must actually exercise the approximate change path.
    assert approx_changes > 0


def test_pipe_parity():
    monitors = {
        "mono": make_monitor(),
        "pipe": make_monitor(shards=2),
    }
    try:
        drive_parity(monitors, seed=11)
    finally:
        monitors["pipe"].close()


def test_tcp_parity():
    with local_shard_hosts(2, once=False) as addresses:
        monitors = {
            "mono": make_monitor(),
            "tcp": make_monitor(shards=addresses),
        }
        try:
            assert monitors["tcp"].algorithm.transport == "tcp"
            drive_parity(monitors, seed=23, cycles=8)
        finally:
            monitors["tcp"].close()
