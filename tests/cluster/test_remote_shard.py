"""The remote shard host end to end: real subprocesses, real sockets.

``python -m repro.cluster.shard`` hosts brought up on loopback via
:func:`repro.cluster.local_shard_hosts`, driven by a
``StreamMonitor(shards=[...])`` coordinator — the full distributed
stack, including the failure path where the host *process* is killed
mid-stream.
"""

import contextlib
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.cluster import local_shard_hosts
from repro.core.engine import StreamMonitor
from repro.core.errors import StreamError
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction, QuadraticFunction
from repro.core.window import CountBasedWindow
from repro.service.protocol import ProtocolError


def make_query(weights, k=2):
    return TopKQuery(LinearFunction(weights), k=k)


class TestLocalShardHosts:
    def test_zero_hosts_rejected(self):
        with pytest.raises(ValueError):
            with local_shard_hosts(0):
                pass

    def test_hosts_come_up_and_tear_down(self):
        with local_shard_hosts(2) as addresses:
            assert len(addresses) == 2
            for address in addresses:
                host, port = address.rsplit(":", 1)
                with socket.create_connection(
                    (host, int(port)), timeout=10
                ):
                    pass
        # teardown: the ports are free again (hosts exited)
        for address in addresses:
            host, port = address.rsplit(":", 1)
            with pytest.raises(OSError):
                socket.create_connection((host, int(port)), timeout=1)


class TestRemoteMonitor:
    def test_end_to_end_with_byte_accounting(self):
        with local_shard_hosts(2) as addresses:
            with StreamMonitor(
                2,
                CountBasedWindow(8),
                algorithm="tma",
                cells_per_axis=4,
                shards=addresses,
            ) as monitor:
                qids = monitor.add_queries(
                    [make_query([1.0, 1.0]), make_query([0.9, 0.1])]
                )
                monitor.process(
                    monitor.make_records([[0.5, 0.5], [0.9, 0.2]])
                )
                assert [e.rid for e in monitor.result(qids[0])] == [1, 0]
                stats = monitor.stats()
                transport = stats["transport"]
                assert transport["transport"] == "tcp"
                assert transport["shards"] == 2
                assert transport["cycles"] == 1
                assert transport["bytes_sent"] > 0
                assert transport["bytes_received"] > 0
                assert transport["last_cycle"]["wire_bytes"] > 0
                # TCP cycles are wholly wire-borne, never shared memory
                assert transport["last_cycle"]["shared_bytes"] == 0
                assert transport["cycle_shared_bytes_total"] == 0

    def test_single_address_shorthand(self):
        with local_shard_hosts(1) as addresses:
            with StreamMonitor(
                2,
                CountBasedWindow(4),
                algorithm="sma",
                cells_per_axis=4,
                shards=addresses[0],
            ) as monitor:
                assert monitor.algorithm.shards == 1
                assert monitor.algorithm.transport == "tcp"
                qid = monitor.add_query(make_query([0.5, 0.5]))
                monitor.process(monitor.make_records([[0.3, 0.8]]))
                assert [e.rid for e in monitor.result(qid)] == [0]

    def test_non_wire_serialisable_query_rejected_before_send(self):
        with local_shard_hosts(1) as addresses:
            with StreamMonitor(
                2,
                CountBasedWindow(4),
                algorithm="tma",
                cells_per_axis=4,
                shards=addresses,
            ) as monitor:
                with pytest.raises(ProtocolError, match="LinearFunction"):
                    monitor.add_query(
                        TopKQuery(QuadraticFunction([0.5, 0.5]), k=2)
                    )

    def test_host_killed_mid_stream_is_descriptive_not_a_hang(self):
        """SIGKILL the shard host between cycles: the next cycle must
        raise a StreamError naming the endpoint, promptly."""
        with _one_observable_host() as (proc, address):
            monitor = StreamMonitor(
                2,
                CountBasedWindow(8),
                algorithm="tma",
                cells_per_axis=4,
                shards=[address],
            )
            try:
                monitor.add_query(make_query([0.5, 0.5]))
                monitor.process(monitor.make_records([[0.5, 0.5]]))
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)
                started = time.monotonic()
                with pytest.raises(StreamError, match="died mid-request"):
                    for cycle in range(3):
                        monitor.process(
                            monitor.make_records(
                                [[0.4, 0.6]], time_=float(cycle + 1)
                            )
                        )
                assert time.monotonic() - started < 30
            finally:
                monitor.close()
                monitor.close()  # idempotent even after shard death


class TestHostProcess:
    def test_once_host_exits_after_first_session(self):
        with _one_observable_host() as (proc, address):
            with StreamMonitor(
                2,
                CountBasedWindow(4),
                algorithm="tma",
                cells_per_axis=4,
                shards=[address],
            ) as monitor:
                monitor.process(monitor.make_records([[0.5, 0.5]]))
            assert proc.wait(timeout=10) == 0

    def test_bad_listen_address_rejected(self):
        from repro.cluster.shard import main

        with pytest.raises(Exception):
            main(["--listen", "no-port-here"])


@contextlib.contextmanager
def _one_observable_host():
    """One loopback host whose Popen handle the test can signal."""
    from repro.cluster import _read_banner, _repro_src_root

    env = dict(os.environ)
    src_root = _repro_src_root()
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster.shard",
            "--listen",
            "127.0.0.1:0",
            "--once",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        yield proc, _read_banner(proc)
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        if proc.stdout is not None:
            proc.stdout.close()
