"""The Section-7 extensions folded into the unified StreamMonitor facade.

Threshold queries register through the ordinary ``add_query`` on any
algorithm (and any shard count); the explicit-deletion stream model is
``StreamMonitor(..., stream_model="update")``; the legacy extension
monitors are thin shims over the same facade. Close/idempotency and
descriptive-error semantics are pinned here too, in-process and
sharded alike.
"""

import random

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError, StreamError
from repro.core.queries import ThresholdQuery, TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.core.window import CountBasedWindow
from repro.extensions.constrained import constrained_query
from repro.extensions.threshold import ThresholdMonitor
from repro.extensions.update_model import UpdateStreamMonitor
from repro.streams.generators import Independent
from repro.streams.update_stream import UpdateStreamDriver

from tests.conftest import brute_top_k


class TestThresholdViaFacade:
    @pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl", "brute"])
    def test_threshold_query_on_any_algorithm(self, algorithm):
        rng = random.Random(11)
        monitor = StreamMonitor(
            2,
            CountBasedWindow(50),
            algorithm=algorithm,
            cells_per_axis=5,
        )
        query = ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.3)
        handle = monitor.add_query(query)
        window = []
        for cycle in range(10):
            batch = monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(8)],
                time_=float(cycle),
            )
            window.extend(batch)
            window = window[-50:]
            monitor.process(batch)
            got = sorted(entry.rid for entry in handle.result())
            expected = sorted(
                record.rid
                for record in window
                if query.score(record.attrs) > 1.3
            )
            assert got == expected

    def test_mixed_query_kinds_share_one_monitor(self):
        """Top-k, constrained and threshold queries in one engine."""
        rng = random.Random(12)
        monitor = StreamMonitor(
            2, CountBasedWindow(60), algorithm="tma", cells_per_axis=5
        )
        severity = LinearFunction([2.0, 1.0])
        top = monitor.add_query(TopKQuery(severity, k=3))
        band = monitor.add_query(
            constrained_query(severity, k=3, ranges=[None, (0.3, 0.7)])
        )
        alarm = monitor.add_query(
            ThresholdQuery(severity, threshold=2.4)
        )
        window = []
        for cycle in range(8):
            batch = monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(12)],
                time_=float(cycle),
            )
            window.extend(batch)
            window = window[-60:]
            monitor.process(batch)
            assert [e.key for e in top.result()] == [
                e.key for e in brute_top_k(window, top.query)
            ]
            assert [e.key for e in band.result()] == [
                e.key for e in brute_top_k(window, band.query)
            ]
            expected = sorted(
                record.rid
                for record in window
                if severity.score(record.attrs) > 2.4
            )
            assert sorted(e.rid for e in alarm.result()) == expected

    def test_threshold_query_sharded(self):
        rng = random.Random(13)
        solo = StreamMonitor(
            2, CountBasedWindow(40), algorithm="tma", cells_per_axis=4
        )
        with StreamMonitor(
            2,
            CountBasedWindow(40),
            algorithm="tma",
            cells_per_axis=4,
            shards=2,
        ) as sharded:
            specs = [
                TopKQuery(LinearFunction([1.0, 0.5]), k=3),
                ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.4),
                ThresholdQuery(LinearFunction([0.5, 1.5]), threshold=1.2),
            ]

            def clones():
                return [
                    TopKQuery(LinearFunction([1.0, 0.5]), k=3),
                    ThresholdQuery(
                        LinearFunction([1.0, 1.0]), threshold=1.4
                    ),
                    ThresholdQuery(
                        LinearFunction([0.5, 1.5]), threshold=1.2
                    ),
                ]

            solo_handles = solo.add_queries(clones())
            sharded_handles = sharded.add_queries(clones())
            for cycle in range(6):
                rows = [
                    (rng.random(), rng.random()) for _ in range(10)
                ]
                solo.process(
                    solo.make_records(rows, time_=float(cycle))
                )
                sharded.process(
                    sharded.make_records(rows, time_=float(cycle))
                )
                for mine, theirs in zip(solo_handles, sharded_handles):
                    assert [e.key for e in mine.result()] == [
                        e.key for e in theirs.result()
                    ]

    def test_threshold_dimension_mismatch_is_query_error(self):
        monitor = StreamMonitor(
            2, CountBasedWindow(10), algorithm="tma", cells_per_axis=4
        )
        with pytest.raises(QueryError):
            monitor.add_query(
                ThresholdQuery(LinearFunction([1.0]), threshold=0.5)
            )
        # A failed registration leaves no zombie in the query table.
        assert len(monitor.query_table) == 0

    def test_legacy_threshold_monitor_is_a_shim(self):
        monitor = ThresholdMonitor(
            2, CountBasedWindow(10), cells_per_axis=4
        )
        assert isinstance(monitor.monitor, StreamMonitor)
        handle = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.0)
        )
        factory = RecordFactory()
        hot = factory.make((0.9, 0.9))
        report = monitor.process([hot])
        assert [e.rid for e in report.changes[handle].added] == [hot.rid]
        # The facade's handle surface is available through the shim.
        received = []
        handle.subscribe(received.append)
        monitor.process([factory.make((0.95, 0.97))])
        assert len(received) == 1


class TestUpdateModelViaFacade:
    def test_stream_model_update_monitors_explicit_deletions(self):
        driver = UpdateStreamDriver(
            Independent(2), rate=6, min_lifetime=1, max_lifetime=8, seed=5
        )
        monitor = StreamMonitor(
            2, algorithm="tma", cells_per_axis=4, stream_model="update"
        )
        handle = monitor.add_query(
            TopKQuery(LinearFunction([0.7, 0.7]), k=3)
        )
        live = {}
        for batch in driver.batches(15):
            for record in batch.insertions:
                live[record.rid] = record
            for record in batch.deletions:
                del live[record.rid]
            monitor.process(
                batch.insertions, deletions=batch.deletions
            )
            assert monitor.live_count == len(live)
            assert [e.key for e in handle.result()] == [
                e.key
                for e in brute_top_k(list(live.values()), handle.query)
            ]

    def test_update_model_refuses_sma_and_windows(self):
        with pytest.raises(StreamError):
            StreamMonitor(
                2,
                algorithm="sma",
                cells_per_axis=4,
                stream_model="update",
            )
        with pytest.raises(StreamError):
            StreamMonitor(
                2,
                CountBasedWindow(10),
                algorithm="tma",
                cells_per_axis=4,
                stream_model="update",
            )
        with pytest.raises(StreamError):
            StreamMonitor(2, algorithm="tma", cells_per_axis=4)

    def test_window_model_rejects_deletions(self):
        monitor = StreamMonitor(
            2, CountBasedWindow(10), algorithm="tma", cells_per_axis=4
        )
        factory = RecordFactory()
        with pytest.raises(StreamError):
            monitor.process([], deletions=[factory.make((0.5, 0.5))])

    def test_legacy_update_monitor_is_a_shim(self):
        monitor = UpdateStreamMonitor(2, algorithm="tma", cells_per_axis=4)
        assert isinstance(monitor, StreamMonitor)
        assert monitor.stream_model == "update"
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        factory = RecordFactory()
        first = factory.make((0.9, 0.9))
        second = factory.make((0.5, 0.5))
        monitor.process([first, second], [])
        assert [e.rid for e in handle.result()] == [first.rid, second.rid]
        monitor.process([], [first])
        assert [e.rid for e in handle.result()] == [second.rid]

    def test_update_model_handles_and_subscriptions(self):
        monitor = StreamMonitor(
            2, algorithm="tma", cells_per_axis=4, stream_model="update"
        )
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        stream = handle.changes()
        factory = RecordFactory()
        records = [factory.make((0.2 + 0.1 * i, 0.5)) for i in range(5)]
        monitor.process(records, deletions=[])
        monitor.process([], deletions=[records[-1]])
        causes = [change.cause for change in stream]
        assert causes == ["cycle", "cycle"]
        handle.update(k=1)
        assert [change.cause for change in stream] == ["update"]


class TestSharedRegistrationPath:
    """One registration/accounting path for every query kind."""

    def test_setup_seconds_accounts_threshold_registrations(self):
        monitor = StreamMonitor(
            2, CountBasedWindow(10), algorithm="tma", cells_per_axis=4
        )
        monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.0)
        )
        assert len(monitor.setup_seconds) == 1

    def test_mixed_burst_registration(self):
        monitor = StreamMonitor(
            2,
            CountBasedWindow(30),
            algorithm="tma",
            cells_per_axis=4,
            grouped=True,
        )
        monitor.process(
            monitor.make_records([[0.8, 0.9], [0.4, 0.2], [0.9, 0.7]])
        )
        handles = monitor.add_queries(
            [
                TopKQuery(LinearFunction([1.0, 1.0]), k=2),
                ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.4),
                TopKQuery(LinearFunction([1.01, 1.0]), k=2),
            ]
        )
        assert [e.rid for e in handles[0].result()] == [0, 2]
        assert sorted(e.rid for e in handles[1].result()) == [0, 2]
        assert len(monitor.setup_seconds) == 1


class TestCloseSemanticsSharded:
    """Satellite regression: double-close and use-after-close on a
    sharded monitor."""

    def test_double_close_and_use_after_close(self):
        monitor = StreamMonitor(
            2,
            CountBasedWindow(20),
            algorithm="tma",
            cells_per_axis=4,
            shards=2,
        )
        handle = monitor.add_query(
            TopKQuery(LinearFunction([1.0, 1.0]), k=2)
        )
        other = monitor.add_query(
            TopKQuery(LinearFunction([0.5, 1.0]), k=2)
        )
        monitor.process(monitor.make_records([[0.5, 0.5]]))
        monitor.close()
        monitor.close()  # idempotent: no error, no hang
        assert monitor.closed
        assert handle.closed and other.closed
        with pytest.raises(QueryError) as excinfo:
            handle.result()
        assert "closed" in str(excinfo.value)
        with pytest.raises(StreamError):
            monitor.process(monitor.make_records([[0.5, 0.5]]))
        with pytest.raises(StreamError):
            monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=1))

    def test_context_manager_marks_handles(self):
        with StreamMonitor(
            2,
            CountBasedWindow(20),
            algorithm="sma",
            cells_per_axis=4,
            shards=2,
        ) as monitor:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=1)
            )
        assert handle.closed


class TestDescriptiveErrorsEverywhere:
    """Satellite: unknown/cancelled qids raise a descriptive
    QueryError — with the qid and monitor state — identically for
    in-process and sharded monitors."""

    @pytest.mark.parametrize("shards", [None, 2])
    def test_unknown_and_cancelled_qids(self, shards):
        monitor = StreamMonitor(
            2,
            CountBasedWindow(20),
            algorithm="tma",
            cells_per_axis=4,
            shards=shards,
        )
        try:
            handle = monitor.add_query(
                TopKQuery(LinearFunction([1.0, 1.0]), k=1)
            )
            for operation in (
                lambda: monitor.result(99),
                lambda: monitor.remove_query(99),
                lambda: monitor.pause_query(99),
                lambda: monitor.resume_query(99),
                lambda: monitor.update_query(99, k=2),
                lambda: monitor.subscribe(99, lambda change: None),
                lambda: monitor.changes(99),
            ):
                with pytest.raises(QueryError) as excinfo:
                    operation()
                message = str(excinfo.value)
                assert "99" in message
                assert "monitor" in message
                assert "1 live queries" in message
            monitor.remove_query(handle)
            with pytest.raises(QueryError) as excinfo:
                monitor.result(handle)
            assert "0 live queries" in str(excinfo.value)
        finally:
            monitor.close()
