"""Integration tests for the Section 7 extensions."""

import random

import pytest

from repro.core.engine import StreamMonitor
from repro.core.errors import QueryError, StreamError
from repro.core.queries import ThresholdQuery, TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.core.window import CountBasedWindow
from repro.extensions.constrained import constrained_query
from repro.extensions.threshold import ThresholdMonitor
from repro.extensions.update_model import UpdateStreamMonitor
from repro.streams.generators import Independent
from repro.streams.update_stream import UpdateStreamDriver

from tests.conftest import brute_top_k


class TestConstrainedMonitoring:
    @pytest.mark.parametrize("algorithm", ["tma", "sma"])
    def test_constrained_vs_oracle(self, algorithm):
        rng = random.Random(8)
        monitor = StreamMonitor(
            2,
            CountBasedWindow(60),
            algorithm=algorithm,
            cells_per_axis=5,
        )
        query = constrained_query(
            LinearFunction([1.0, 2.0]),
            k=3,
            ranges=[(0.2, 0.7), (0.1, 0.9)],
        )
        qid = monitor.add_query(query)
        window = []
        for _ in range(15):
            batch = monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(8)]
            )
            window.extend(batch)
            window = window[-60:]
            monitor.process(batch)
            got = [e.rid for e in monitor.result(qid)]
            expected = [e.rid for e in brute_top_k(window, query)]
            assert got == expected

    def test_constrained_query_builder_validation(self):
        f = LinearFunction([1.0, 1.0])
        with pytest.raises(QueryError):
            constrained_query(f, 1, ranges=[(0.2, 0.7)])  # wrong arity
        with pytest.raises(QueryError):
            constrained_query(f, 1, ranges=[(0.7, 0.2), None])
        query = constrained_query(f, 1, ranges=[None, (0.25, 0.75)])
        assert query.constraint.lower == (0.0, 0.25)
        assert query.constraint.upper == (1.0, 0.75)

    def test_figure12_example(self):
        """Figure 12: p1 outside R is skipped; p2 inside is the result."""
        monitor = StreamMonitor(
            2, CountBasedWindow(10), algorithm="tma", cells_per_axis=7
        )
        query = constrained_query(
            LinearFunction([1.0, 2.0]),
            k=1,
            ranges=[(3 / 7, 6 / 7), (4 / 7, 6 / 7)],
        )
        qid = monitor.add_query(query)
        batch = monitor.make_records(
            [
                (0.55, 0.95),  # p1: better score but outside R
                (0.62, 0.70),  # p2: inside R
            ]
        )
        monitor.process(batch)
        assert [e.rid for e in monitor.result(qid)] == [batch[1].rid]


class TestThresholdMonitoring:
    def test_threshold_vs_oracle(self):
        rng = random.Random(9)
        factory = RecordFactory()
        monitor = ThresholdMonitor(
            2, CountBasedWindow(50), cells_per_axis=5
        )
        query = ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.4)
        qid = monitor.add_query(query)
        window = []
        for _ in range(12):
            batch = [
                factory.make((rng.random(), rng.random())) for _ in range(7)
            ]
            window.extend(batch)
            window = window[-50:]
            monitor.process(batch)
            got = sorted(e.rid for e in monitor.result(qid))
            expected = sorted(
                record.rid
                for record in window
                if query.score(record.attrs) > 1.4
            )
            assert got == expected

    def test_initial_result_includes_existing_points(self):
        factory = RecordFactory()
        monitor = ThresholdMonitor(2, CountBasedWindow(10), cells_per_axis=4)
        hot = factory.make((0.9, 0.9))
        cold = factory.make((0.1, 0.1))
        monitor.process([hot, cold])
        qid = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.0)
        )
        assert [e.rid for e in monitor.result(qid)] == [hot.rid]

    def test_change_reports(self):
        factory = RecordFactory()
        monitor = ThresholdMonitor(2, CountBasedWindow(2), cells_per_axis=4)
        qid = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.0)
        )
        hot = factory.make((0.8, 0.8))
        report = monitor.process([hot])
        assert [e.rid for e in report.changes[qid].added] == [hot.rid]
        # Overflow the window: hot expires.
        report = monitor.process(
            [factory.make((0.1, 0.1)), factory.make((0.2, 0.2))]
        )
        assert [e.rid for e in report.changes[qid].removed] == [hot.rid]

    def test_remove_query_scrubs_lists(self):
        monitor = ThresholdMonitor(2, CountBasedWindow(5), cells_per_axis=4)
        qid = monitor.add_query(
            ThresholdQuery(LinearFunction([1.0, 1.0]), threshold=1.5)
        )
        monitor.remove_query(qid)
        assert all(
            qid not in cell.influence for cell in monitor.grid.cells()
        )
        with pytest.raises(QueryError):
            monitor.result(qid)


class TestUpdateStreamMonitoring:
    def test_sma_rejected(self):
        with pytest.raises(StreamError):
            UpdateStreamMonitor(2, algorithm="sma", cells_per_axis=4)

    def test_update_stream_vs_oracle(self):
        driver = UpdateStreamDriver(
            Independent(2), rate=6, min_lifetime=1, max_lifetime=8, seed=4
        )
        monitor = UpdateStreamMonitor(2, algorithm="tma", cells_per_axis=4)
        query = TopKQuery(LinearFunction([0.8, 0.6]), k=3)
        qid = monitor.add_query(query)
        live = {}
        for batch in driver.batches(20):
            for record in batch.insertions:
                live[record.rid] = record
            for record in batch.deletions:
                del live[record.rid]
            monitor.process(batch.insertions, batch.deletions)
            assert monitor.live_count == len(live)
            got = [e.rid for e in monitor.result(qid)]
            expected = [
                e.rid for e in brute_top_k(list(live.values()), query)
            ]
            assert got == expected

    def test_deletions_are_not_fifo(self):
        """The generated update stream interleaves deletion order."""
        driver = UpdateStreamDriver(
            Independent(2), rate=5, min_lifetime=1, max_lifetime=10, seed=1
        )
        deleted = []
        for batch in driver.batches(25):
            deleted.extend(record.rid for record in batch.deletions)
        assert deleted != sorted(deleted)

    def test_double_insert_rejected(self):
        monitor = UpdateStreamMonitor(2, algorithm="brute")
        factory = RecordFactory()
        record = factory.make((0.5, 0.5))
        monitor.process([record], [])
        with pytest.raises(StreamError):
            monitor.process([record], [])

    def test_unknown_delete_rejected(self):
        monitor = UpdateStreamMonitor(2, algorithm="brute")
        factory = RecordFactory()
        record = factory.make((0.5, 0.5))
        with pytest.raises(StreamError):
            monitor.process([], [record])
