"""Push/pull parity: delivered deltas replay to the pull API's results.

The acceptance contract of the handle/subscription redesign: for every
algorithm × shard count, the concatenated deltas delivered through
``subscribe`` / ``changes()`` reconstruct *exactly* the results the
pull API reports after every cycle — including across ``update()``
mutations and pause/resume churn, and with sharded monitors (whose
deltas are dispatched from the coordinator's merged report).

Replay discipline: start from the query's result at subscribe time,
apply each delta's ``removed`` then ``added``; after each cycle the
replayed set, ordered canonically, must equal the pull result
bitwise — and the delta's own ``top`` must agree.
"""

import random
import time

import pytest

from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.results import entries_best_first
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow

ALGORITHMS = ["tma", "sma", "tsl"]
SHARD_COUNTS = [1, 2, 4]


class _Replayer:
    """Reconstructs one query's result from its delivered deltas."""

    def __init__(self, handle):
        self.handle = handle
        self.entries = {
            entry.rid: entry for entry in handle.result()
        }
        self.deltas = 0

    def apply(self, change):
        assert change.qid == self.handle.qid
        self.deltas += 1
        for entry in change.removed:
            assert self.entries.pop(entry.rid, None) is not None, (
                f"delta removed rid {entry.rid} that was never present"
            )
        for entry in change.added:
            assert entry.rid not in self.entries, (
                f"delta re-added rid {entry.rid}"
            )
            self.entries[entry.rid] = entry
        # The delta's own top must be the replayed state.
        assert entries_best_first(self.entries.values()) == list(
            change.top
        )

    def assert_matches(self, pulled):
        assert entries_best_first(self.entries.values()) == list(pulled)


def run_monitor(algorithm, shards, churn):
    rng = random.Random(17)
    monitor = StreamMonitor(
        2,
        CountBasedWindow(120),
        algorithm=algorithm,
        cells_per_axis=4,
        shards=shards if shards > 1 else None,
    )
    try:
        handles = monitor.add_queries(
            [
                TopKQuery(
                    LinearFunction(
                        [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
                    ),
                    k=rng.choice([1, 3, 5]),
                )
                for _ in range(5)
            ]
        )
        replayers = {handle.qid: _Replayer(handle) for handle in handles}
        for handle in handles:
            replayer = replayers[handle.qid]
            handle.subscribe(replayer.apply)
        fanin_counts = {handle.qid: 0 for handle in handles}
        monitor.subscribe_all(
            lambda change: fanin_counts.__setitem__(
                change.qid, fanin_counts.get(change.qid, 0) + 1
            )
        )

        paused_qids = set()
        for cycle in range(12):
            batch = monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(25)],
                time_=float(cycle),
            )
            monitor.process(batch)
            for handle in handles:
                if handle.qid in paused_qids:
                    continue
                replayers[handle.qid].assert_matches(handle.result())

            if not churn:
                continue
            # Deterministic churn: update one handle, toggle a pause.
            if cycle % 3 == 1:
                target = handles[cycle % len(handles)]
                if target.qid not in paused_qids:
                    new_k = 2 if target.query.k != 2 else 4
                    target.update(k=new_k)
                    replayers[target.qid].assert_matches(target.result())
            if cycle % 4 == 2:
                target = handles[(cycle + 1) % len(handles)]
                if target.qid in paused_qids:
                    target.resume()
                    paused_qids.discard(target.qid)
                else:
                    target.pause()
                    paused_qids.add(target.qid)
                replayers[target.qid].assert_matches(target.result())

        for handle in handles:
            if handle.qid in paused_qids:
                handle.resume()
            replayers[handle.qid].assert_matches(handle.result())
        # Every replayer saw deltas, and the fan-in subscriber saw at
        # least as many per query as the per-query subscribers.
        assert all(
            replayer.deltas > 0 for replayer in replayers.values()
        )
        for qid, replayer in replayers.items():
            assert fanin_counts[qid] == replayer.deltas
    finally:
        monitor.close()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_push_deltas_replay_to_pull_results(algorithm, shards):
    run_monitor(algorithm, shards, churn=False)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_push_pull_parity_under_churn(algorithm, shards):
    run_monitor(algorithm, shards, churn=True)


# ----------------------------------------------------------------------
# Async delivery parity: every overflow policy must hand subscribers a
# delta sequence that replays to the pull API's exact result — even
# when the consumer falls behind and the policy has to intervene
# (coalesce collapses the backlog into resync deltas; block applies
# backpressure; drop_oldest is exercised below its loss threshold,
# since a drop by design voids replay and is surfaced via counters).
# ----------------------------------------------------------------------

POLICIES = ["block", "drop_oldest", "coalesce"]

#: queue bounds chosen so block/coalesce genuinely overflow while the
#: consumer is held, and drop_oldest never loses a delta.
_POLICY_MAXLEN = {"block": 2, "drop_oldest": 4096, "coalesce": 2}


class _ThreadSafeReplayer:
    """Replays deltas on delivery consumer threads; asserts the same
    invariants as _Replayer but defers raising to the main thread."""

    def __init__(self, handle):
        self.qid = handle.qid
        self.entries = {entry.rid: entry for entry in handle.result()}
        self.deltas = 0
        self.resyncs = 0
        self.failures = []

    def __call__(self, change, enqueued_at):
        try:
            assert change.qid == self.qid
            self.deltas += 1
            if change.cause == "resync":
                self.resyncs += 1
            for entry in change.removed:
                assert self.entries.pop(entry.rid, None) is not None, (
                    f"delta removed rid {entry.rid} never present"
                )
            for entry in change.added:
                assert entry.rid not in self.entries, (
                    f"delta re-added rid {entry.rid}"
                )
                self.entries[entry.rid] = entry
            assert entries_best_first(self.entries.values()) == list(
                change.top
            )
        except AssertionError as exc:  # pragma: no cover - diagnostics
            self.failures.append(str(exc))

    def state(self):
        return entries_best_first(self.entries.values())


def run_policy_monitor(algorithm, shards, policy):
    from repro.service import DeliveryHub

    rng = random.Random(23)
    monitor = StreamMonitor(
        2,
        CountBasedWindow(100),
        algorithm=algorithm,
        cells_per_axis=4,
        shards=shards if shards > 1 else None,
    )
    hub = DeliveryHub(monitor)
    try:
        handles = monitor.add_queries(
            [
                TopKQuery(
                    LinearFunction(
                        [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
                    ),
                    k=rng.choice([2, 3, 5]),
                )
                for _ in range(4)
            ]
        )
        replayers = {}
        deliveries = {}
        for handle in handles:
            replayer = _ThreadSafeReplayer(handle)
            replayers[handle.qid] = replayer
            if policy == "block":
                # Backpressure builds against a genuinely slow (but
                # never parked) consumer — parking one would block
                # the producer forever, which is exactly the policy's
                # contract.
                def callback(change, at, _replayer=replayer):
                    time.sleep(0.003)
                    _replayer(change, at)
            else:
                callback = replayer
            deliveries[handle.qid] = hub.deliver(
                callback,
                qid=handle.qid,
                policy=policy,
                maxlen=_POLICY_MAXLEN[policy],
            )

        holdable = policy != "block"
        for cycle in range(10):
            # Mid-run, park every consumer for three cycles so a real
            # backlog builds and the policy has to act.
            if cycle == 3 and holdable:
                for delivery in deliveries.values():
                    delivery.hold()
            if cycle == 6 and holdable:
                for delivery in deliveries.values():
                    delivery.release()
            batch = monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(25)],
                time_=float(cycle),
            )
            monitor.process(batch)
            # Deterministic churn so update/resume deltas also ride
            # the async path.
            if cycle == 5:
                handles[0].update(k=4)
            if cycle == 7:
                handles[1].pause()
            if cycle == 8:
                handles[1].resume()

        assert hub.flush(timeout=30), "delivery queues failed to drain"
        for handle in handles:
            replayer = replayers[handle.qid]
            assert not replayer.failures, replayer.failures[:3]
            assert replayer.deltas > 0
            assert replayer.state() == list(handle.result()), (
                f"{algorithm} x{shards} {policy}: replayed state "
                f"diverged for qid {handle.qid}"
            )
        if policy == "coalesce":
            # The held consumers overflowed their 2-deep queues: the
            # backlog really was collapsed, and losslessly so.
            assert any(
                delivery.coalesced > 0
                for delivery in deliveries.values()
            )
            assert all(
                delivery.dropped == 0
                for delivery in deliveries.values()
            )
        if policy == "drop_oldest":
            assert all(
                delivery.dropped == 0
                for delivery in deliveries.values()
            ), "capacity was sized to avoid losses"
        if policy == "block":
            assert all(
                delivery.dropped == 0 and delivery.coalesced == 0
                for delivery in deliveries.values()
            )
            assert all(
                delivery.high_watermark <= _POLICY_MAXLEN["block"]
                for delivery in deliveries.values()
            )
    finally:
        hub.close()
        monitor.close()


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_async_delivery_policy_parity(algorithm, shards, policy):
    run_policy_monitor(algorithm, shards, policy)


@pytest.mark.parametrize("shards", [1, 2])
def test_blocked_stream_terminates_on_close(shards):
    """Regression (in-process and sharded): a consumer thread blocked
    on ``changes(block=True)`` iteration must end cleanly when the
    monitor closes, instead of blocking forever."""
    import threading

    rng = random.Random(31)
    monitor = StreamMonitor(
        2,
        CountBasedWindow(60),
        algorithm="tma",
        cells_per_axis=4,
        shards=shards if shards > 1 else None,
    )
    handle = monitor.add_query(
        TopKQuery(LinearFunction([1.0, 0.7]), k=3)
    )
    stream = handle.changes(block=True)
    seen = []
    done = threading.Event()

    def consume():
        for change in stream:
            seen.append(change)
        done.set()

    thread = threading.Thread(target=consume, daemon=True)
    thread.start()
    for cycle in range(3):
        monitor.process(
            monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(20)],
                time_=float(cycle),
            )
        )
    monitor.close()
    assert done.wait(timeout=10), (
        f"stream iterator hung across close (shards={shards})"
    )
    thread.join(timeout=5)
    assert stream.closed
    assert seen, "consumer saw no deltas before close"
