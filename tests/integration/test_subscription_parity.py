"""Push/pull parity: delivered deltas replay to the pull API's results.

The acceptance contract of the handle/subscription redesign: for every
algorithm × shard count, the concatenated deltas delivered through
``subscribe`` / ``changes()`` reconstruct *exactly* the results the
pull API reports after every cycle — including across ``update()``
mutations and pause/resume churn, and with sharded monitors (whose
deltas are dispatched from the coordinator's merged report).

Replay discipline: start from the query's result at subscribe time,
apply each delta's ``removed`` then ``added``; after each cycle the
replayed set, ordered canonically, must equal the pull result
bitwise — and the delta's own ``top`` must agree.
"""

import random

import pytest

from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.results import entries_best_first
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow

ALGORITHMS = ["tma", "sma", "tsl"]
SHARD_COUNTS = [1, 2, 4]


class _Replayer:
    """Reconstructs one query's result from its delivered deltas."""

    def __init__(self, handle):
        self.handle = handle
        self.entries = {
            entry.rid: entry for entry in handle.result()
        }
        self.deltas = 0

    def apply(self, change):
        assert change.qid == self.handle.qid
        self.deltas += 1
        for entry in change.removed:
            assert self.entries.pop(entry.rid, None) is not None, (
                f"delta removed rid {entry.rid} that was never present"
            )
        for entry in change.added:
            assert entry.rid not in self.entries, (
                f"delta re-added rid {entry.rid}"
            )
            self.entries[entry.rid] = entry
        # The delta's own top must be the replayed state.
        assert entries_best_first(self.entries.values()) == list(
            change.top
        )

    def assert_matches(self, pulled):
        assert entries_best_first(self.entries.values()) == list(pulled)


def run_monitor(algorithm, shards, churn):
    rng = random.Random(17)
    monitor = StreamMonitor(
        2,
        CountBasedWindow(120),
        algorithm=algorithm,
        cells_per_axis=4,
        shards=shards if shards > 1 else None,
    )
    try:
        handles = monitor.add_queries(
            [
                TopKQuery(
                    LinearFunction(
                        [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
                    ),
                    k=rng.choice([1, 3, 5]),
                )
                for _ in range(5)
            ]
        )
        replayers = {handle.qid: _Replayer(handle) for handle in handles}
        for handle in handles:
            replayer = replayers[handle.qid]
            handle.subscribe(replayer.apply)
        fanin_counts = {handle.qid: 0 for handle in handles}
        monitor.subscribe_all(
            lambda change: fanin_counts.__setitem__(
                change.qid, fanin_counts.get(change.qid, 0) + 1
            )
        )

        paused_qids = set()
        for cycle in range(12):
            batch = monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(25)],
                time_=float(cycle),
            )
            monitor.process(batch)
            for handle in handles:
                if handle.qid in paused_qids:
                    continue
                replayers[handle.qid].assert_matches(handle.result())

            if not churn:
                continue
            # Deterministic churn: update one handle, toggle a pause.
            if cycle % 3 == 1:
                target = handles[cycle % len(handles)]
                if target.qid not in paused_qids:
                    new_k = 2 if target.query.k != 2 else 4
                    target.update(k=new_k)
                    replayers[target.qid].assert_matches(target.result())
            if cycle % 4 == 2:
                target = handles[(cycle + 1) % len(handles)]
                if target.qid in paused_qids:
                    target.resume()
                    paused_qids.discard(target.qid)
                else:
                    target.pause()
                    paused_qids.add(target.qid)
                replayers[target.qid].assert_matches(target.result())

        for handle in handles:
            if handle.qid in paused_qids:
                handle.resume()
            replayers[handle.qid].assert_matches(handle.result())
        # Every replayer saw deltas, and the fan-in subscriber saw at
        # least as many per query as the per-query subscribers.
        assert all(
            replayer.deltas > 0 for replayer in replayers.values()
        )
        for qid, replayer in replayers.items():
            assert fanin_counts[qid] == replayer.deltas
    finally:
        monitor.close()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_push_deltas_replay_to_pull_results(algorithm, shards):
    run_monitor(algorithm, shards, churn=False)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_push_pull_parity_under_churn(algorithm, shards):
    run_monitor(algorithm, shards, churn=True)
