"""Sharded execution ≡ single-process execution, end to end.

The tentpole contract of the sharded maintenance engine
(:mod:`repro.parallel`): a ``StreamMonitor(..., shards=N)`` must
produce *bitwise-identical* per-cycle change reports, results and
influence-list totals to the in-process engine — for every shard
count, for TMA and SMA, with grouping on and off, under mid-stream
query churn, and on both batch backends. The replays below drive a
single-process twin and a sharded monitor through identical streams
and compare cycle by cycle.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction, QuadraticFunction
from repro.core.window import CountBasedWindow


def make_query_factory(seed, dims=2, similar=True):
    rng = random.Random(seed)
    base = [rng.uniform(0.3, 0.9) for _ in range(dims)]

    def make_spec():
        if similar and rng.random() < 0.7:
            weights = [
                max(0.05, value + rng.uniform(-0.08, 0.08))
                for value in base
            ]
            function = LinearFunction(weights)
        elif rng.random() < 0.5:
            function = LinearFunction(
                [rng.uniform(0.05, 1.0) for _ in range(dims)]
            )
        else:
            function = QuadraticFunction(
                [rng.uniform(0.1, 1.0) for _ in range(dims)]
            )
        return function, rng.choice([1, 3, 5])

    return make_spec


def change_signature(report):
    return {
        qid: (
            [entry.key for entry in change.added],
            [entry.key for entry in change.removed],
            [entry.key for entry in change.top],
        )
        for qid, change in report.changes.items()
    }


def run_parity_stream(
    seed,
    shards,
    algorithm="tma",
    grouped=False,
    cycles=12,
    dims=2,
    window=70,
    rate=9,
    num_queries=10,
    churn=False,
):
    """Drive twin monitors (in-process vs sharded) on one stream."""
    make_spec = make_query_factory(seed, dims)
    options = {"grouped": True} if grouped else {}
    mono = StreamMonitor(
        dims,
        CountBasedWindow(window),
        algorithm=algorithm,
        cells_per_axis=5,
        **options,
    )
    sharded = StreamMonitor(
        dims,
        CountBasedWindow(window),
        algorithm=algorithm,
        cells_per_axis=5,
        shards=shards,
        **options,
    )
    try:
        rng = random.Random(seed * 31 + 7)

        def add_burst(count):
            specs = [make_spec() for _ in range(count)]
            qids = mono.add_queries(
                [TopKQuery(fn, k) for fn, k in specs]
            )
            qids_sharded = sharded.add_queries(
                [TopKQuery(fn, k) for fn, k in specs]
            )
            assert qids == qids_sharded
            return qids

        live = set(add_burst(num_queries))
        for qid in sorted(live):
            assert [entry.key for entry in mono.result(qid)] == [
                entry.key for entry in sharded.result(qid)
            ], f"initial result diverged for query {qid}"

        for cycle in range(cycles):
            if churn and cycle % 3 == 1 and live:
                victim = rng.choice(sorted(live))
                mono.remove_query(victim)
                sharded.remove_query(victim)
                live.discard(victim)
                live.update(add_burst(2))
            rows = [
                [rng.random() for _ in range(dims)] for _ in range(rate)
            ]
            report_mono = mono.process(
                mono.make_records(rows, time_=float(cycle))
            )
            report_sharded = sharded.process(
                sharded.make_records(rows, time_=float(cycle))
            )
            assert change_signature(report_mono) == change_signature(
                report_sharded
            ), f"cycle {cycle} change reports diverged (seed {seed})"
            for qid in sorted(live):
                assert [entry.key for entry in mono.result(qid)] == [
                    entry.key for entry in sharded.result(qid)
                ], f"cycle {cycle} result diverged for query {qid}"

        mono_entries = getattr(
            mono.algorithm, "influence_list_entries", None
        )
        if mono_entries is not None:  # grid algorithms only
            assert (
                mono_entries()
                == sharded.algorithm.influence_list_entries()
            ), "influence-list totals diverged"
        for field in (
            "recomputations",
            "topk_computations",
            "arrivals",
            "expirations",
            "influence_checks",
            "top_list_updates",
            "skyband_insertions",
            # Replica-ingestion counter: every shard performs it, but
            # the merge must count it once (TSL regression guard).
            "sorted_list_updates",
            "view_insertions",
        ):
            assert getattr(mono.counters, field) == getattr(
                sharded.counters, field
            ), f"counter {field} diverged"
        assert (
            mono.algorithm.result_state_sizes()
            == sharded.algorithm.result_state_sizes()
        )
    finally:
        mono.close()
        sharded.close()


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("algorithm", ["tma", "sma"])
def test_shard_counts(shards, algorithm):
    run_parity_stream(17, shards, algorithm=algorithm)


@pytest.mark.parametrize("algorithm", ["tma", "sma"])
def test_grouped_sharding(algorithm):
    run_parity_stream(23, 2, algorithm=algorithm, grouped=True)


@pytest.mark.parametrize("shards", [2, 3])
def test_query_churn_mid_stream(shards):
    run_parity_stream(41, shards, algorithm="tma", churn=True)


def test_grouped_churn():
    run_parity_stream(43, 2, algorithm="sma", grouped=True, churn=True)


def test_more_shards_than_queries():
    run_parity_stream(47, 4, algorithm="tma", num_queries=2, cycles=8)


def test_tsl_sharded_parity():
    """Sharding is algorithm-agnostic: the TSL baseline partitions too."""
    run_parity_stream(53, 2, algorithm="tsl", cycles=8)


def test_python_backend_parity_subprocess():
    """Sharded parity must hold under the pure-Python backend too
    (pickled-columns snapshot path). REPRO_BATCH_BACKEND is read at
    import time, so this runs in a subprocess like the other
    backend-override tests."""
    code = (
        "import os, sys\n"
        "sys.path.insert(0, os.environ['REPRO_TEST_DIR'])\n"
        "from repro.core import batch\n"
        "assert batch.BACKEND == 'python', batch.BACKEND\n"
        "from test_sharded_parity import run_parity_stream\n"
        "run_parity_stream(61, 2, algorithm='tma', grouped=True)\n"
        "run_parity_stream(67, 2, algorithm='sma', churn=True, cycles=8)\n"
        "print('ok')\n"
    )
    here = os.path.dirname(os.path.abspath(__file__))
    src = os.path.abspath(os.path.join(here, "..", "..", "src"))
    env = dict(os.environ, REPRO_BATCH_BACKEND="python")
    env["REPRO_TEST_DIR"] = here
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
