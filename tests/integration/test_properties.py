"""Deep property tests: invariants that must hold through any stream.

These go beyond result equality: they pin down the book-keeping
invariants the paper's correctness argument rests on, replayed under
randomized (hypothesis-driven) streams.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_algorithm
from repro.core.queries import TopKQuery
from repro.core.results import diff_results
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory

from tests.conftest import brute_top_k

# One hypothesis-driven stream: a list of per-cycle arrival batches,
# each batch a list of integer-lattice points (ties on purpose).
streams = st.lists(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=12,
)


def lattice_records(factory, batch):
    return [factory.make((x / 8.0, y / 8.0)) for x, y in batch]


class TestChangeReportSoundness:
    """Reports must be exactly the diff of consecutive oracle results."""

    @pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl"])
    @settings(max_examples=20, deadline=None)
    @given(stream=streams, k=st.integers(1, 4))
    def test_reports_equal_oracle_diffs(self, algorithm, stream, k):
        factory = RecordFactory()
        algo = make_algorithm(algorithm, 2, cells_per_axis=4)
        query = TopKQuery(LinearFunction([1.0, 1.0]), k)
        query.qid = 0
        algo.register(query)
        window = []
        previous = []
        for batch in stream:
            arrivals = lattice_records(factory, batch)
            window.extend(arrivals)
            expired = []
            while len(window) > 25:
                expired.append(window.pop(0))
            changes = algo.process_cycle(arrivals, expired)
            current = brute_top_k(window, query)
            expected = diff_results(0, previous, current)
            if expected.changed:
                assert 0 in changes, "change not reported"
                got = changes[0]
                assert [e.rid for e in got.added] == [
                    e.rid for e in expected.added
                ]
                assert [e.rid for e in got.removed] == [
                    e.rid for e in expected.removed
                ]
                assert got.top_ids() == [e.rid for e in current]
            else:
                assert 0 not in changes, "spurious change report"
            previous = current


class TestInfluenceCoverageInvariant:
    """Every cell that could host a result-changing update lists q.

    Formally: after any cycle, every cell whose (region-clipped)
    maxscore is >= the query's current kth score must carry the query
    in its influence list — otherwise a future arrival there could be
    missed. This is the safety half of the lazy-cleanup argument.
    """

    @pytest.mark.parametrize("algorithm", ["tma", "sma"])
    @pytest.mark.parametrize("seed", range(3))
    def test_coverage_holds_through_stream(self, algorithm, seed):
        rng = random.Random(seed)
        factory = RecordFactory()
        algo = make_algorithm(algorithm, 2, cells_per_axis=5)
        query = TopKQuery(
            LinearFunction([rng.uniform(0.3, 1), rng.uniform(0.3, 1)]), 3
        )
        query.qid = 0
        algo.register(query)
        window = []
        for _ in range(25):
            arrivals = [
                factory.make((rng.random(), rng.random()))
                for _ in range(6)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 30:
                expired.append(window.pop(0))
            algo.process_cycle(arrivals, expired)

            result = algo.current_result(0)
            if len(result) < query.k:
                continue
            threshold = result[-1].score
            grid = algo.grid
            for x in range(5):
                for y in range(5):
                    if grid.maxscore((x, y), query.function) > threshold:
                        cell = grid.peek_cell((x, y))
                        assert cell is not None and 0 in cell.influence, (
                            f"uncovered cell {(x, y)}"
                        )


class TestMemberCellInvariant:
    """Result members always live in cells that list their query —
    the property TMA's expiry detection depends on."""

    @pytest.mark.parametrize("seed", range(3))
    def test_tma_members_discoverable(self, seed):
        rng = random.Random(100 + seed)
        factory = RecordFactory()
        algo = make_algorithm("tma", 2, cells_per_axis=5)
        query = TopKQuery(LinearFunction([0.9, 0.8]), 4)
        query.qid = 0
        algo.register(query)
        window = []
        for _ in range(25):
            arrivals = [
                factory.make((rng.random(), rng.random()))
                for _ in range(5)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 30:
                expired.append(window.pop(0))
            algo.process_cycle(arrivals, expired)
            for entry in algo.current_result(0):
                cell = algo.grid.locate(entry.record)
                assert 0 in cell.influence
                assert entry.record.rid in cell.points


class TestSkybandAgreesWithPrediction:
    """With arrivals frozen, SMA's live evolution must match the
    offline prediction from the score–time skyband (Section 3.1)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_drain_matches_prediction(self, seed):
        from repro.skyband.prediction import predict_future_results

        rng = random.Random(200 + seed)
        factory = RecordFactory()
        algo = make_algorithm("sma", 2, cells_per_axis=4)
        window = [
            factory.make((rng.random(), rng.random())) for _ in range(25)
        ]
        algo.process_cycle(list(window), [])
        query = TopKQuery(LinearFunction([0.7, 0.6]), 3)
        query.qid = 0
        algo.register(query)

        timeline = predict_future_results(window, query)
        predicted = {
            change.expiring_rid: [e.rid for e in change.top]
            for change in timeline
        }
        assert [e.rid for e in algo.current_result(0)] == predicted[-1]

        while window:
            expiring = window.pop(0)
            algo.process_cycle([], [expiring])
            live = [e.rid for e in algo.current_result(0)]
            if expiring.rid in predicted:
                assert live == predicted[expiring.rid]
            # Between predicted change points the result is stable and
            # always oracle-exact:
            assert live == [
                e.rid for e in brute_top_k(window, query)
            ]
