"""Remote TCP shards ≡ pipe shards ≡ single process, bit for bit.

The acceptance contract of the transport layer: a
``StreamMonitor(shards=["host:port", ...])`` pointed at real
``repro.cluster.shard`` subprocesses must produce per-cycle change
reports, results, counters and influence totals *bitwise identical*
to both the in-process engine and the pipe-sharded pool — across
algorithms (TMA, SMA, TSL), shard counts, grouping, and mid-stream
query churn. Scores are compared through ``float.hex`` so even
sign-of-zero drift would fail.

Only linear preference functions appear here: quadratic ones are not
wire-serialisable by design (the codec rejects them locally; see
``tests/cluster/test_remote_shard.py``).
"""

import os
import random
import subprocess
import sys

import pytest

from repro.cluster import local_shard_hosts
from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow


def make_linear_query_factory(seed, dims=2, similar=True):
    """Like the sharded-parity factory, but linear-only (the codec's
    wire-serialisable subset)."""
    rng = random.Random(seed)
    base = [rng.uniform(0.3, 0.9) for _ in range(dims)]

    def make_spec():
        if similar and rng.random() < 0.7:
            weights = [
                max(0.05, value + rng.uniform(-0.08, 0.08))
                for value in base
            ]
        else:
            weights = [rng.uniform(0.05, 1.0) for _ in range(dims)]
        return LinearFunction(weights), rng.choice([1, 3, 5])

    return make_spec


def exact_keys(entries):
    return [(entry.score.hex(), entry.rid) for entry in entries]


def change_signature(report):
    return {
        qid: (
            exact_keys(change.added),
            exact_keys(change.removed),
            exact_keys(change.top),
        )
        for qid, change in report.changes.items()
    }


def run_remote_parity_stream(
    seed,
    shards,
    algorithm="tma",
    grouped=False,
    cycles=10,
    dims=2,
    window=60,
    rate=8,
    num_queries=8,
    churn=False,
):
    """Drive triplet monitors (in-process / pipe / TCP-remote) on one
    stream and require bitwise-equal behavior every cycle."""
    make_spec = make_linear_query_factory(seed, dims)
    options = {"grouped": True} if grouped else {}
    with local_shard_hosts(shards) as addresses:
        monitors = {
            "mono": StreamMonitor(
                dims,
                CountBasedWindow(window),
                algorithm=algorithm,
                cells_per_axis=5,
                **options,
            ),
            "pipe": StreamMonitor(
                dims,
                CountBasedWindow(window),
                algorithm=algorithm,
                cells_per_axis=5,
                shards=shards,
                **options,
            ),
            "tcp": StreamMonitor(
                dims,
                CountBasedWindow(window),
                algorithm=algorithm,
                cells_per_axis=5,
                shards=addresses,
                **options,
            ),
        }
        try:
            assert monitors["tcp"].algorithm.transport == "tcp"
            rng = random.Random(seed * 31 + 7)

            def add_burst(count):
                specs = [make_spec() for _ in range(count)]
                per_monitor = {
                    name: monitor.add_queries(
                        [TopKQuery(fn, k) for fn, k in specs]
                    )
                    for name, monitor in monitors.items()
                }
                assert (
                    per_monitor["mono"]
                    == per_monitor["pipe"]
                    == per_monitor["tcp"]
                )
                return per_monitor["mono"]

            def assert_results_equal(live, context):
                for qid in sorted(live):
                    want = exact_keys(monitors["mono"].result(qid))
                    for name in ("pipe", "tcp"):
                        got = exact_keys(monitors[name].result(qid))
                        assert got == want, (
                            f"{context}: query {qid} diverged on "
                            f"{name} (seed {seed})"
                        )

            live = set(add_burst(num_queries))
            assert_results_equal(live, "initial registration")

            for cycle in range(cycles):
                if churn and cycle % 3 == 1 and live:
                    victim = rng.choice(sorted(live))
                    for monitor in monitors.values():
                        monitor.remove_query(victim)
                    live.discard(victim)
                    live.update(add_burst(2))
                rows = [
                    [rng.random() for _ in range(dims)]
                    for _ in range(rate)
                ]
                reports = {
                    name: monitor.process(
                        monitor.make_records(rows, time_=float(cycle))
                    )
                    for name, monitor in monitors.items()
                }
                want = change_signature(reports["mono"])
                for name in ("pipe", "tcp"):
                    assert change_signature(reports[name]) == want, (
                        f"cycle {cycle}: change reports diverged on "
                        f"{name} (seed {seed})"
                    )
                assert_results_equal(live, f"cycle {cycle}")

            mono_entries = getattr(
                monitors["mono"].algorithm, "influence_list_entries", None
            )
            if mono_entries is not None:  # grid algorithms only
                want_total = mono_entries()
                for name in ("pipe", "tcp"):
                    assert (
                        monitors[name].algorithm.influence_list_entries()
                        == want_total
                    ), f"influence totals diverged on {name}"
            for field in (
                "recomputations",
                "topk_computations",
                "arrivals",
                "expirations",
                "influence_checks",
                "top_list_updates",
                "skyband_insertions",
                "sorted_list_updates",
                "view_insertions",
            ):
                want_value = getattr(monitors["mono"].counters, field)
                for name in ("pipe", "tcp"):
                    assert (
                        getattr(monitors[name].counters, field)
                        == want_value
                    ), f"counter {field} diverged on {name}"
            want_sizes = monitors["mono"].algorithm.result_state_sizes()
            for name in ("pipe", "tcp"):
                assert (
                    monitors[name].algorithm.result_state_sizes()
                    == want_sizes
                )
            # remote cycles moved real bytes, none via shared memory
            transport = monitors["tcp"].algorithm.transport_stats()
            assert transport["cycles"] == cycles
            assert transport["cycle_wire_bytes_total"] > 0
            assert transport["cycle_shared_bytes_total"] == 0
        finally:
            for monitor in monitors.values():
                monitor.close()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_tma_shard_counts(shards):
    run_remote_parity_stream(171, shards, algorithm="tma")


@pytest.mark.parametrize("algorithm", ["sma", "tsl"])
def test_other_algorithms(algorithm):
    run_remote_parity_stream(173, 2, algorithm=algorithm, cycles=8)


@pytest.mark.parametrize("algorithm", ["tma", "sma"])
def test_grouped_remote_sharding(algorithm):
    run_remote_parity_stream(179, 2, algorithm=algorithm, grouped=True)


def test_query_churn_mid_stream():
    run_remote_parity_stream(181, 2, algorithm="tma", churn=True)


def test_grouped_churn():
    run_remote_parity_stream(
        191, 2, algorithm="sma", grouped=True, churn=True, cycles=8
    )


def test_python_backend_parity_subprocess():
    """Remote parity must hold under the pure-Python batch backend too
    (both coordinator and shard hosts inherit it via the environment).
    REPRO_BATCH_BACKEND is read at import time, so this runs in a
    subprocess like the other backend-override tests."""
    code = (
        "import os, sys\n"
        "sys.path.insert(0, os.environ['REPRO_TEST_DIR'])\n"
        "from repro.core import batch\n"
        "assert batch.BACKEND == 'python', batch.BACKEND\n"
        "from test_remote_parity import run_remote_parity_stream\n"
        "run_remote_parity_stream(193, 2, algorithm='tma', cycles=6)\n"
        "run_remote_parity_stream(197, 2, algorithm='tsl', cycles=6)\n"
        "print('ok')\n"
    )
    here = os.path.dirname(os.path.abspath(__file__))
    src = os.path.abspath(os.path.join(here, "..", "..", "src"))
    env = dict(os.environ, REPRO_BATCH_BACKEND="python")
    env["REPRO_TEST_DIR"] = here
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
