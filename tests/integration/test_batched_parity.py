"""Regression: batched cycle paths match brute force cycle-by-cycle.

The tentpole optimisation (PR 1) vectorized every hot path — TSL's
arrival scoring and TA refills, TMA/SMA's arrival pre-scoring and grid
batches, and the traversal's per-cell kernel scans. This suite replays
randomized streams (plus a tie-saturated lattice stream) through all
three maintained algorithms and asserts per-cycle result equality with
the brute-force oracle — the same check ``repro.bench selfcheck``
performs, pinned here so plain pytest exercises it on every run.
"""

import random

import pytest

from repro.algorithms import make_algorithm
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction, ProductFunction
from repro.core.tuples import RecordFactory

MAINTAINED = ("tsl", "tma", "sma")


def run_stream(make_attrs, make_function, seed, cycles=12, dims=2,
               window=60, rate=8, num_queries=3):
    rng = random.Random(seed)
    factory = RecordFactory()
    algorithms = {
        name: make_algorithm(name, dims, cells_per_axis=4)
        for name in ("brute",) + MAINTAINED
    }
    queries = []
    for qid in range(num_queries):
        query = TopKQuery(make_function(rng), k=rng.choice([1, 3, 7]))
        query.qid = qid
        for algorithm in algorithms.values():
            algorithm.register(query)
        queries.append(query)

    window_records = []
    for cycle in range(cycles):
        arrivals = [
            factory.make(make_attrs(rng)) for _ in range(rate)
        ]
        window_records.extend(arrivals)
        expired = []
        while len(window_records) > window:
            expired.append(window_records.pop(0))
        outcomes = {}
        for name, algorithm in algorithms.items():
            algorithm.process_cycle(list(arrivals), list(expired))
            outcomes[name] = {
                query.qid: [
                    (entry.score, entry.rid)
                    for entry in algorithm.current_result(query.qid)
                ]
                for query in queries
            }
        for name in MAINTAINED:
            assert outcomes[name] == outcomes["brute"], (
                f"{name} diverged from brute at cycle {cycle} (seed {seed})"
            )


@pytest.mark.parametrize("seed", range(5))
def test_random_continuous_stream(seed):
    run_stream(
        make_attrs=lambda rng: (rng.random(), rng.random()),
        make_function=lambda rng: LinearFunction(
            [rng.uniform(0.05, 1.0), rng.uniform(0.05, 1.0)]
        ),
        seed=seed,
    )


@pytest.mark.parametrize("seed", range(3))
def test_tie_saturated_lattice_stream(seed):
    """Attributes on a 5-point lattice: scores collide constantly, so
    any last-bit divergence between batched and scalar scoring would
    flip the (score, rid) order and fail the comparison."""
    run_stream(
        make_attrs=lambda rng: (
            rng.randrange(5) / 4.0,
            rng.randrange(5) / 4.0,
        ),
        make_function=lambda rng: LinearFunction(
            [rng.choice([0.25, 0.5, 1.0]), rng.choice([0.25, 0.5, 1.0])]
        ),
        seed=seed + 100,
    )


@pytest.mark.parametrize("seed", range(2))
def test_mixed_directions_and_product_functions(seed):
    def make_function(rng):
        if rng.random() < 0.5:
            return LinearFunction(
                [rng.uniform(-1.0, 1.0) or 0.3, rng.uniform(-1.0, 1.0) or -0.4]
            )
        return ProductFunction([rng.uniform(0.0, 0.5), rng.uniform(0.0, 0.5)])

    run_stream(
        make_attrs=lambda rng: (rng.random(), rng.random()),
        make_function=make_function,
        seed=seed + 200,
    )
