"""Queries arriving and terminating mid-stream (the paper's workload).

Monitoring systems never have a static query set: this suite registers
and removes queries while the stream runs and checks that (i) results
stay oracle-exact throughout and (ii) terminated queries leave no
influence-list residue that could corrupt later maintenance.
"""

import random

import pytest

from repro.algorithms import make_algorithm
from repro.core.engine import StreamMonitor
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.core.window import CountBasedWindow

from tests.conftest import brute_top_k


@pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl"])
def test_churn_against_oracle(algorithm):
    rng = random.Random(77)
    factory = RecordFactory()
    algo = make_algorithm(algorithm, 2, cells_per_axis=4)
    window = []
    active = {}
    next_qid = 0

    for cycle in range(25):
        # Maybe add a query.
        if len(active) < 4 and rng.random() < 0.5:
            query = TopKQuery(
                LinearFunction(
                    [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
                ),
                k=rng.choice([1, 3, 5]),
            )
            query.qid = next_qid
            next_qid += 1
            algo.register(query)
            active[query.qid] = query
            # Registration must return the oracle-exact result already.
            got = [e.rid for e in algo.current_result(query.qid)]
            expected = [e.rid for e in brute_top_k(window, query)]
            assert got == expected
        # Maybe remove one.
        if active and rng.random() < 0.25:
            victim = rng.choice(sorted(active))
            algo.unregister(victim)
            del active[victim]

        arrivals = [
            factory.make((rng.random(), rng.random())) for _ in range(6)
        ]
        window.extend(arrivals)
        expired = []
        while len(window) > 40:
            expired.append(window.pop(0))
        algo.process_cycle(arrivals, expired)

        for qid, query in active.items():
            got = [e.rid for e in algo.current_result(qid)]
            expected = [e.rid for e in brute_top_k(window, query)]
            assert got == expected, f"{algorithm} qid={qid} cycle={cycle}"


@pytest.mark.parametrize("algorithm", ["tma", "sma"])
def test_unregister_leaves_no_influence_residue(algorithm):
    rng = random.Random(5)
    factory = RecordFactory()
    algo = make_algorithm(algorithm, 2, cells_per_axis=5)
    records = [
        factory.make((rng.random(), rng.random())) for _ in range(50)
    ]
    algo.process_cycle(records, [])
    qids = []
    for qid in range(5):
        query = TopKQuery(
            LinearFunction([rng.uniform(0.1, 1), rng.uniform(0.1, 1)]), 3
        )
        query.qid = qid
        algo.register(query)
        qids.append(qid)
    for qid in qids:
        algo.unregister(qid)
    for cell in algo.grid.cells():
        assert not cell.influence


def test_engine_level_churn():
    monitor = StreamMonitor(
        2, CountBasedWindow(30), algorithm="sma", cells_per_axis=4
    )
    rng = random.Random(11)
    qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 1.0]), k=2))
    for _ in range(5):
        monitor.process(
            monitor.make_records(
                [(rng.random(), rng.random()) for _ in range(5)]
            )
        )
    second = monitor.add_query(TopKQuery(LinearFunction([0.2, 0.9]), k=3))
    assert len(monitor.result(second)) == 3
    monitor.remove_query(qid)
    # Continued processing must not touch the removed query.
    report = monitor.process(
        monitor.make_records(
            [(rng.random(), rng.random()) for _ in range(5)], time_=10.0
        )
    )
    assert qid not in report.changes
