"""Validates the Section 3.1 reduction: future top-k results ⇔ k-skyband.

The paper's key theorem: with no further arrivals, the records that
appear in *some* future top-k result are exactly the k-skyband of the
valid records in the (score, expiration-time) space. We replay windows
to exhaustion and compare against the BNL oracle.
"""

import random

import pytest

from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory
from repro.skyband.skyline import k_skyband

from tests.conftest import brute_top_k


def future_result_union(records, query):
    """Drain the window FIFO; collect every record ever in the top-k."""
    live = list(records)
    seen = set()
    while live:
        for entry in brute_top_k(live, query):
            seen.add(entry.rid)
        live.pop(0)  # oldest expires
    return seen


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("k", [1, 2, 4])
def test_future_results_equal_score_time_skyband(seed, k):
    rng = random.Random(seed)
    factory = RecordFactory()
    records = [
        factory.make((rng.random(), rng.random(), rng.random()))
        for _ in range(40)
    ]
    query = TopKQuery(
        LinearFunction([rng.uniform(0.1, 1.0) for _ in range(3)]), k
    )

    union = future_result_union(records, query)

    # k-skyband in the 2-D score-time plane: dimensions (score, rid),
    # both increasingly preferable (larger rid = expires later).
    score_time_points = [
        (query.score(record.attrs), float(record.rid)) for record in records
    ]
    band = {
        records[index].rid
        for index in k_skyband(score_time_points, k, (1, 1))
    }
    assert union == band


@pytest.mark.parametrize("seed", range(3))
def test_reduction_is_dimensionality_independent(seed):
    """The skyband is always 2-D regardless of the attribute count."""
    rng = random.Random(100 + seed)
    factory = RecordFactory()
    dims = 5
    records = [
        factory.make(tuple(rng.random() for _ in range(dims)))
        for _ in range(30)
    ]
    query = TopKQuery(LinearFunction([1.0] * dims), 3)
    union = future_result_union(records, query)
    score_time_points = [
        (query.score(record.attrs), float(record.rid)) for record in records
    ]
    band = {
        records[index].rid
        for index in k_skyband(score_time_points, 3, (1, 1))
    }
    assert union == band


def test_tie_breaking_matches_dominance():
    """Equal scores: the later-expiring record dominates the earlier.

    With two identical records and k=1, only the newer can appear in
    any result, and only the newer is in the 1-skyband under our
    canonical order.
    """
    factory = RecordFactory()
    older = factory.make((0.5, 0.5))
    newer = factory.make((0.5, 0.5))
    query = TopKQuery(LinearFunction([1.0, 1.0]), 1)
    union = future_result_union([older, newer], query)
    assert union == {newer.rid}
