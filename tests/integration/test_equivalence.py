"""The gold test: TMA ≡ SMA ≡ TSL ≡ brute force, cycle by cycle.

Randomized streams are replayed against all four algorithms; after
*every* processing cycle, every query's result must be identical under
the canonical rank order. Sweeps cover both data distributions, both
window types, several dimensionalities, ks, and all three function
families of the paper (plus mixed monotonicity directions).
"""

import random

import pytest

from repro.algorithms import make_algorithm
from repro.core.queries import TopKQuery
from repro.core.scoring import (
    LinearFunction,
    ProductFunction,
    QuadraticFunction,
)
from repro.core.tuples import RecordFactory

ALGORITHMS = ("brute", "tsl", "tma", "sma")


def replay(
    dims,
    make_function,
    ks,
    seed,
    cycles=10,
    rate=8,
    capacity=60,
    cells=4,
):
    """Drive all four algorithms over one stream; compare every cycle."""
    rng = random.Random(seed)
    factory = RecordFactory()
    algorithms = {
        name: make_algorithm(name, dims, cells_per_axis=cells)
        for name in ALGORITHMS
    }
    queries = {}
    for index, k in enumerate(ks):
        function = make_function(rng)
        for name, algo in algorithms.items():
            query = TopKQuery(function, k)
            query.qid = index
            if name == list(algorithms)[0]:
                queries[index] = query
            algo.register(query)

    window = []
    for cycle in range(cycles):
        arrivals = [
            factory.make(tuple(rng.random() for _ in range(dims)))
            for _ in range(rate)
        ]
        window.extend(arrivals)
        expired = []
        while len(window) > capacity:
            expired.append(window.pop(0))

        results = {}
        for name, algo in algorithms.items():
            algo.process_cycle(list(arrivals), list(expired))
            results[name] = {
                qid: [e.rid for e in algo.current_result(qid)]
                for qid in queries
            }
        reference = results["brute"]
        for name in ALGORITHMS[1:]:
            assert results[name] == reference, (
                f"{name} diverged from brute at cycle {cycle} (seed {seed})"
            )


class TestLinearFunctions:
    @pytest.mark.parametrize("seed", range(4))
    def test_2d(self, seed):
        replay(
            2,
            lambda rng: LinearFunction(
                [rng.uniform(0.05, 1.0) for _ in range(2)]
            ),
            ks=(1, 3, 7),
            seed=seed,
        )

    @pytest.mark.parametrize("seed", range(2))
    def test_3d(self, seed):
        replay(
            3,
            lambda rng: LinearFunction(
                [rng.uniform(0.05, 1.0) for _ in range(3)]
            ),
            ks=(2, 5),
            seed=10 + seed,
            cells=3,
        )

    def test_4d(self):
        replay(
            4,
            lambda rng: LinearFunction(
                [rng.uniform(0.05, 1.0) for _ in range(4)]
            ),
            ks=(4,),
            seed=42,
            cells=3,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_directions(self, seed):
        def make(rng):
            return LinearFunction(
                [
                    rng.uniform(0.05, 1.0) * rng.choice([-1, 1])
                    for _ in range(2)
                ]
            )

        replay(2, make, ks=(1, 4), seed=20 + seed)


class TestNonLinearFunctions:
    @pytest.mark.parametrize("seed", range(2))
    def test_product(self, seed):
        replay(
            2,
            lambda rng: ProductFunction(
                [rng.uniform(0.0, 1.0) for _ in range(2)]
            ),
            ks=(1, 5),
            seed=30 + seed,
        )

    @pytest.mark.parametrize("seed", range(2))
    def test_quadratic(self, seed):
        replay(
            2,
            lambda rng: QuadraticFunction(
                [rng.uniform(0.05, 1.0) for _ in range(2)]
            ),
            ks=(2, 6),
            seed=40 + seed,
        )

    def test_quadratic_mixed_directions(self):
        replay(
            2,
            lambda rng: QuadraticFunction([0.8, -0.6]),
            ks=(3,),
            seed=50,
        )


class TestAntiCorrelatedData:
    @pytest.mark.parametrize("seed", range(3))
    def test_ant_stream(self, seed):
        """ANT data crowds the frontier — the stress case for skybands."""
        from repro.streams.generators import AntiCorrelated

        rng = random.Random(60 + seed)
        distribution = AntiCorrelated(2)
        factory = RecordFactory()
        algorithms = {
            name: make_algorithm(name, 2, cells_per_axis=4)
            for name in ALGORITHMS
        }
        function = LinearFunction([0.9, 0.7])
        for name, algo in algorithms.items():
            query = TopKQuery(function, 5)
            query.qid = 0
            algo.register(query)
        window = []
        for cycle in range(12):
            arrivals = [
                factory.make(distribution.sample(rng)) for _ in range(8)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 50:
                expired.append(window.pop(0))
            outcomes = {}
            for name, algo in algorithms.items():
                algo.process_cycle(list(arrivals), list(expired))
                outcomes[name] = [
                    e.rid for e in algo.current_result(0)
                ]
            assert (
                outcomes["tma"]
                == outcomes["sma"]
                == outcomes["tsl"]
                == outcomes["brute"]
            ), f"cycle {cycle}"


class TestTieHeavyStreams:
    @pytest.mark.parametrize("seed", range(3))
    def test_discrete_attribute_grid(self, seed):
        """Integer-lattice attributes force constant score ties."""
        rng = random.Random(70 + seed)

        class LatticeFactory:
            def __init__(self):
                self.factory = RecordFactory()

            def make(self):
                return self.factory.make(
                    (rng.randrange(4) / 4.0, rng.randrange(4) / 4.0)
                )

        lattice = LatticeFactory()
        algorithms = {
            name: make_algorithm(name, 2, cells_per_axis=4)
            for name in ALGORITHMS
        }
        function = LinearFunction([1.0, 1.0])
        for name, algo in algorithms.items():
            query = TopKQuery(function, 3)
            query.qid = 0
            algo.register(query)
        window = []
        for cycle in range(12):
            arrivals = [lattice.make() for _ in range(6)]
            window.extend(arrivals)
            expired = []
            while len(window) > 30:
                expired.append(window.pop(0))
            outcomes = {}
            for name, algo in algorithms.items():
                algo.process_cycle(list(arrivals), list(expired))
                outcomes[name] = [e.rid for e in algo.current_result(0)]
            reference = outcomes["brute"]
            for name in ALGORITHMS[1:]:
                assert outcomes[name] == reference, f"{name} @ {cycle}"
