"""Soak test: long runs must not leak state or drift from the oracle.

Continuous monitors run for days; the invariants here are the ones
that silently rot in long-running systems — structure sizes staying
bounded, book-keeping matching the window exactly, and correctness
holding after hundreds of cycles and query churn.
"""

import random

import pytest

from repro.algorithms import make_algorithm
from repro.analysis.memory import estimate_space
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory

from tests.conftest import brute_top_k

CYCLES = 150
WINDOW = 400
RATE = 40  # 10% churn per cycle


@pytest.mark.parametrize("algorithm", ["tma", "sma", "tsl"])
def test_long_run_invariants(algorithm):
    rng = random.Random(0xABCDEF)
    factory = RecordFactory()
    algo = make_algorithm(algorithm, 2, cells_per_axis=5)
    queries = []
    for qid in range(5):
        query = TopKQuery(
            LinearFunction([rng.uniform(0.1, 1), rng.uniform(0.1, 1)]),
            k=rng.choice([1, 5, 10]),
        )
        query.qid = qid
        algo.register(query)
        queries.append(query)

    window = []
    max_state = 0
    for cycle in range(CYCLES):
        arrivals = [
            factory.make((rng.random(), rng.random()))
            for _ in range(RATE)
        ]
        window.extend(arrivals)
        expired = []
        while len(window) > WINDOW:
            expired.append(window.pop(0))
        algo.process_cycle(arrivals, expired)

        sizes = algo.result_state_sizes()
        max_state = max(max_state, max(sizes.values()))

        if cycle % 25 == 0 or cycle == CYCLES - 1:
            for query in queries:
                got = [e.rid for e in algo.current_result(query.qid)]
                expected = [e.rid for e in brute_top_k(window, query)]
                assert got == expected, f"cycle {cycle} q{query.qid}"

    # No state leak: per-query structures stay within their bounds.
    for query in queries:
        size = algo.result_state_sizes()[query.qid]
        if algorithm == "tma":
            assert size == query.k
        elif algorithm == "sma":
            # The skyband is the k-skyband of the valid records above
            # the frozen gate: with ~15 window turnovers between
            # recomputations it grows like k·ln(m/k) (m = records
            # above the gate), not unboundedly. 8k+16 comfortably
            # covers that envelope while still catching a real leak.
            assert query.k <= size <= 8 * query.k + 16
        else:  # tsl: k <= k' <= kmax
            assert query.k <= size

    # Index book-keeping matches the window exactly.
    if algorithm in ("tma", "sma"):
        assert algo.grid.point_count() == len(window)
    else:
        assert algo.sorted_list_entries() == 2 * len(window)

    # Space accounting stays finite and window-proportional.
    space = estimate_space(algo)
    assert space.total_mb < 5.0


@pytest.mark.parametrize("algorithm", ["tma", "sma"])
def test_long_run_with_query_churn_leaves_clean_grid(algorithm):
    rng = random.Random(0xFEED)
    factory = RecordFactory()
    algo = make_algorithm(algorithm, 2, cells_per_axis=4)
    window = []
    qid_counter = 0
    active = {}
    for cycle in range(100):
        if rng.random() < 0.3 and len(active) < 6:
            query = TopKQuery(
                LinearFunction(
                    [rng.uniform(0.1, 1), rng.uniform(0.1, 1)]
                ),
                k=rng.choice([1, 4]),
            )
            query.qid = qid_counter
            qid_counter += 1
            algo.register(query)
            active[query.qid] = query
        if active and rng.random() < 0.25:
            victim = rng.choice(sorted(active))
            algo.unregister(victim)
            del active[victim]
        arrivals = [
            factory.make((rng.random(), rng.random())) for _ in range(10)
        ]
        window.extend(arrivals)
        expired = []
        while len(window) > 120:
            expired.append(window.pop(0))
        algo.process_cycle(arrivals, expired)

    # Influence lists only reference live queries.
    live = set(active)
    for cell in algo.grid.cells():
        assert cell.influence <= live, (
            f"dead query residue in {cell}: {cell.influence - live}"
        )
    for qid, query in active.items():
        got = [e.rid for e in algo.current_result(qid)]
        expected = [e.rid for e in brute_top_k(window, query)]
        assert got == expected
