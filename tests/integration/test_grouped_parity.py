"""Grouped recomputation ≡ per-query recomputation, end to end.

The tentpole contract of the grouped-traversal subsystem: running
TMA/SMA with ``grouped=True`` must produce bitwise-identical results —
same ``(score, rid)`` per cycle per query — and identical influence
lists to the per-query path, under query churn and on both batch
backends. The stream replay below also keeps the brute-force oracle in
the loop, so a grouped bug cannot hide behind a matching plain-path
bug.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.algorithms import make_algorithm
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction, QuadraticFunction
from repro.core.tuples import RecordFactory

PAIRS = (("tma", "tma-grouped"), ("sma", "sma-grouped"))


def make_similar_function(rng, base, jitter):
    return LinearFunction(
        [max(0.05, value + rng.uniform(-jitter, jitter)) for value in base]
    )


def influence_map(algorithm):
    return {
        cell.coords: frozenset(cell.influence)
        for cell in algorithm.grid.cells()
        if cell.influence
    }


def run_parity_stream(
    seed,
    cycles=18,
    dims=2,
    window=70,
    rate=9,
    num_queries=12,
    make_function=None,
    churn=False,
):
    rng = random.Random(seed)
    factory = RecordFactory()
    if make_function is None:
        base = [rng.uniform(0.3, 0.9) for _ in range(dims)]
        make_function = lambda rng: make_similar_function(rng, base, 0.08)  # noqa: E731
    algorithms = {"brute": make_algorithm("brute", dims)}
    for name in ("tma", "tma-grouped", "sma", "sma-grouped"):
        algorithms[name] = make_algorithm(name, dims, cells_per_axis=5)

    next_qid = 0
    queries = {}

    def add_query():
        nonlocal next_qid
        query = TopKQuery(make_function(rng), k=rng.choice([1, 3, 5]))
        query.qid = next_qid
        next_qid += 1
        for algorithm in algorithms.values():
            algorithm.register(query)
        queries[query.qid] = query

    def remove_query(qid):
        for algorithm in algorithms.values():
            algorithm.unregister(qid)
        del queries[qid]

    for _ in range(num_queries):
        add_query()

    window_records = []
    for cycle in range(cycles):
        if churn and cycle % 3 == 1:
            # Mid-stream churn: drop a random query, add two fresh
            # ones — the group registry must invalidate and regroup.
            remove_query(rng.choice(sorted(queries)))
            add_query()
            add_query()
        arrivals = [factory.make(tuple(rng.random() for _ in range(dims)))
                    for _ in range(rate)]
        window_records.extend(arrivals)
        expired = []
        while len(window_records) > window:
            expired.append(window_records.pop(0))
        outcomes = {}
        for name, algorithm in algorithms.items():
            algorithm.process_cycle(list(arrivals), list(expired))
            outcomes[name] = {
                qid: [
                    (entry.score, entry.rid)
                    for entry in algorithm.current_result(qid)
                ]
                for qid in queries
            }
        for plain, grouped in PAIRS:
            assert outcomes[grouped] == outcomes[plain], (
                f"{grouped} diverged from {plain} at cycle {cycle} "
                f"(seed {seed})"
            )
            assert outcomes[plain] == outcomes["brute"], (
                f"{plain} diverged from brute at cycle {cycle} (seed {seed})"
            )
    for plain, grouped in PAIRS:
        assert influence_map(algorithms[grouped]) == influence_map(
            algorithms[plain]
        ), f"{grouped} influence lists diverged from {plain}"
    return algorithms


@pytest.mark.parametrize("seed", range(4))
def test_similar_query_families(seed):
    algorithms = run_parity_stream(seed)
    # The similar workload must actually exercise the grouped sweep.
    assert algorithms["tma-grouped"].counters.grouped_queries_served > 0


@pytest.mark.parametrize("seed", range(3))
def test_query_churn_mid_stream(seed):
    run_parity_stream(seed + 40, churn=True)


@pytest.mark.parametrize("size", [1, 2, 8, 32])
def test_group_sizes_to_32(size):
    run_parity_stream(
        700 + size, num_queries=size, cycles=10, window=50, rate=8
    )


def test_mixed_families_group_only_the_linear_members():
    """Non-linear queries ride along ungrouped; results stay exact."""

    def make_function(rng):
        if rng.random() < 0.3:
            return QuadraticFunction(
                [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
            )
        return LinearFunction([0.6, 0.4])

    run_parity_stream(9000, make_function=make_function, churn=True)


def test_dissimilar_queries_fall_back_to_singletons():
    def make_function(rng):
        return LinearFunction(
            [rng.uniform(0.05, 1.0), rng.uniform(0.05, 1.0)]
        )

    run_parity_stream(9100, make_function=make_function)


def test_python_backend_parity_subprocess():
    """The grouped sweep must stay exact under the pure-Python backend
    (REPRO_BATCH_BACKEND=python picks the fallback at import time, so
    this runs in a subprocess like the other backend-override tests)."""
    code = (
        "import random\n"
        "from repro.core import batch\n"
        "assert batch.BACKEND == 'python', batch.BACKEND\n"
        "from repro.algorithms import make_algorithm\n"
        "from repro.core.queries import TopKQuery\n"
        "from repro.core.scoring import LinearFunction\n"
        "from repro.core.tuples import RecordFactory\n"
        "rng = random.Random(5)\n"
        "factory = RecordFactory()\n"
        "names = ('brute', 'tma', 'tma-grouped', 'sma', 'sma-grouped')\n"
        "algos = {n: make_algorithm(n, 2, cells_per_axis=4) for n in names}\n"
        "for qid in range(10):\n"
        "    w = [max(0.05, 0.6 + rng.uniform(-0.1, 0.1)),\n"
        "         max(0.05, 0.4 + rng.uniform(-0.1, 0.1))]\n"
        "    q = TopKQuery(LinearFunction(w), k=rng.choice([1, 3, 5]))\n"
        "    q.qid = qid\n"
        "    for a in algos.values():\n"
        "        a.register(q)\n"
        "window = []\n"
        "for cycle in range(14):\n"
        "    arrivals = [factory.make((rng.random(), rng.random()))\n"
        "                for _ in range(8)]\n"
        "    window.extend(arrivals)\n"
        "    expired = []\n"
        "    while len(window) > 50:\n"
        "        expired.append(window.pop(0))\n"
        "    outs = {}\n"
        "    for n, a in algos.items():\n"
        "        a.process_cycle(list(arrivals), list(expired))\n"
        "        outs[n] = {qid: [(e.score, e.rid)\n"
        "                   for e in a.current_result(qid)]\n"
        "                   for qid in range(10)}\n"
        "    assert outs['tma-grouped'] == outs['tma'] == outs['brute'], cycle\n"
        "    assert outs['sma-grouped'] == outs['sma'], cycle\n"
        "assert algos['tma-grouped'].counters.grouped_queries_served > 0\n"
        "print('ok')\n"
    )
    env = dict(os.environ, REPRO_BATCH_BACKEND="python")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
