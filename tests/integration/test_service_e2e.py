"""End-to-end serving acceptance: N concurrent socket clients, replay
parity over the wire, stalled-subscriber isolation, sharded backends.

The acceptance contract of the serving runtime (ISSUE 5): concurrent
clients register queries over TCP, receive cause-tagged deltas, and
every client's replayed state matches the pull ``result()`` bitwise;
a deliberately-stalled subscriber does not increase the other
subscribers' cycle or delivery latency.
"""

import random
import socket
import statistics
import threading
import time

import pytest

from repro.core.engine import StreamMonitor
from repro.core.results import entries_best_first
from repro.core.window import CountBasedWindow
from repro.service import MonitorClient, MonitorServer, protocol


def rows(rng, count):
    return [(rng.random(), rng.random()) for _ in range(count)]


def build_served(algorithm="tma", shards=None, **server_kwargs):
    monitor = StreamMonitor(
        2,
        CountBasedWindow(80),
        algorithm=algorithm,
        cells_per_axis=4,
        shards=shards,
    )
    server = MonitorServer(monitor, **server_kwargs)
    server.start()
    return monitor, server


class _RemoteReplayer:
    """Replays one remote stream into a state dict, on its own
    thread, until the stream closes."""

    def __init__(self, handle, stream):
        self.handle = handle
        self.stream = stream
        self.entries = {entry.rid: entry for entry in handle.result()}
        self.causes = []
        self.failures = []
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        for change in self.stream:  # blocks until the stream closes
            try:
                self.causes.append(change.cause)
                for entry in change.removed:
                    assert self.entries.pop(entry.rid, None) is not None
                for entry in change.added:
                    assert entry.rid not in self.entries
                    self.entries[entry.rid] = entry
                assert entries_best_first(
                    self.entries.values()
                ) == list(change.top)
            except AssertionError as exc:  # pragma: no cover
                self.failures.append(str(exc))

    def state(self):
        # Tolerate a concurrent apply: retry the snapshot rather than
        # blow up on "dict changed size during iteration".
        for _ in range(100):
            try:
                return entries_best_first(list(self.entries.values()))
            except RuntimeError:  # pragma: no cover - timing dependent
                time.sleep(0.001)
        return entries_best_first(list(self.entries.values()))


@pytest.mark.parametrize(
    "algorithm,shards",
    [("tma", None), ("sma", None), ("tsl", None), ("tma", 2)],
)
def test_concurrent_clients_replay_parity_over_sockets(algorithm, shards):
    rng = random.Random(41)
    monitor, server = build_served(algorithm=algorithm, shards=shards)
    clients, replayers = [], []
    try:
        host, port = server.address
        driver = MonitorClient(host, port)
        clients.append(driver)
        driver.process(rows(rng, 40), now=0.0)

        for index in range(3):
            client = MonitorClient(host, port)
            clients.append(client)
            handle = client.add_query(
                weights=[1.0, 0.3 + index * 0.5],
                k=3 + index,
                label=f"client{index}",
            )
            stream = handle.subscribe(policy="coalesce", maxlen=64)
            replayers.append(_RemoteReplayer(handle, stream))

        for cycle in range(1, 9):
            driver.process(rows(rng, 20), now=float(cycle))
        # Churn rides the same wire: one update, one pause/resume.
        replayers[0].handle.update(k=2)
        replayers[1].handle.pause()
        driver.process(rows(rng, 20), now=9.0)
        replayers[1].handle.resume()
        driver.process(rows(rng, 20), now=10.0)

        assert server.hub.flush(timeout=30)
        # Server queues are drained, but frames may still be in socket
        # transit (or popped-but-unapplied in a replayer thread); wait
        # until every replayed state has converged on the pull result.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and any(
            replayer.state() != replayer.handle.result()
            for replayer in replayers
        ):
            time.sleep(0.05)

        for replayer in replayers:
            assert not replayer.failures, replayer.failures[:3]
            assert replayer.causes, "no deltas delivered"
            # Bitwise: every float crossed JSON twice and still
            # matches the engine's pull result exactly.
            assert replayer.state() == replayer.handle.result()
            assert set(replayer.causes) <= {
                "cycle",
                "update",
                "resume",
                "resync",
            }
    finally:
        for client in clients:
            client.close()
        for replayer in replayers:
            replayer.thread.join(timeout=5)
        server.stop()
        monitor.close()


def test_stalled_subscriber_does_not_slow_others():
    """One subscriber that never reads its socket: the healthy
    subscriber's cycle and delivery latency stay flat, losses land
    only on the stalled delivery's counters."""
    rng = random.Random(43)
    monitor, server = build_served(default_maxlen=4)
    healthy = None
    stalled_socket = None
    try:
        host, port = server.address
        healthy = MonitorClient(host, port)
        handle = healthy.add_query(weights=[1.0, 1.0], k=3)
        stream = handle.subscribe(policy="coalesce", maxlen=8)

        def run_cycles(count, start):
            cycle_times, latencies = [], []
            for cycle in range(count):
                started = time.perf_counter()
                healthy.process(
                    rows(rng, 25), now=float(start + cycle)
                )
                cycle_times.append(time.perf_counter() - started)
                event = stream.get_event(timeout=5.0)
                if event is not None and event[1] is not None:
                    change, ts, received_at = event
                    latencies.append(received_at - ts)
            return cycle_times, latencies

        # Phase 1: healthy subscriber alone.
        base_cycles, base_latency = run_cycles(8, start=0)

        # Phase 2: add a subscriber that never reads its socket (it
        # subscribes to *every* query with a tiny drop_oldest queue).
        stalled_socket = socket.create_connection((host, port))
        stalled_socket.sendall(
            protocol.encode_line(
                {
                    "id": 1,
                    "op": "subscribe",
                    "policy": "drop_oldest",
                    "maxlen": 2,
                }
            )
        )
        time.sleep(0.3)  # subscription lands; reader never drains
        stall_cycles, stall_latency = run_cycles(8, start=8)

        assert base_latency and stall_latency
        # The stalled subscriber must not add meaningful latency to
        # the healthy one. Generous bounds (CI noise), but a blocking
        # regression would overshoot them by orders of magnitude.
        assert statistics.median(stall_latency) < max(
            0.25, 10 * max(0.005, statistics.median(base_latency))
        )
        assert max(stall_cycles) < 2.0
        # Losses are confined to the stalled delivery.
        hub_stats = server.hub.stats()
        deliveries = {
            delivery.name: delivery.stats()
            for delivery in server.hub.deliveries()
        }
        healthy_drops = sum(
            stats["dropped"]
            for name, stats in deliveries.items()
            if "sub1@" in name or name.startswith("q")
        )
        assert healthy_drops == 0
        assert hub_stats["errors"] == 0
    finally:
        if stalled_socket is not None:
            stalled_socket.close()
        if healthy is not None:
            healthy.close()
        server.stop()
        monitor.close()


def test_server_over_sharded_monitor_with_process_many_embedder():
    """The embedder drives pipelined cycles (process_many) while the
    server pushes deltas from the same merged reports."""
    rng = random.Random(47)
    monitor, server = build_served(algorithm="tma", shards=2)
    client = None
    try:
        host, port = server.address
        client = MonitorClient(host, port)
        handle = client.add_query(weights=[0.8, 1.2], k=4)
        stream = handle.subscribe()

        # Embedder-side pipelined ingestion under the engine lock.
        with server._lock:
            batches = [
                monitor.make_records(rows(rng, 20), time_=float(cycle))
                for cycle in range(6)
            ]
            monitor.process_many(batches)

        assert server.hub.flush(timeout=30)
        state = {entry.rid: entry for entry in []}
        first = handle.result()  # may already include post-cycle state
        # Replay from scratch using the stream's deltas only.
        replayed = {}
        while True:
            change = stream.get(timeout=1.0)
            if change is None:
                break
            for entry in change.removed:
                replayed.pop(entry.rid, None)
            for entry in change.added:
                replayed[entry.rid] = entry
        assert entries_best_first(replayed.values()) == handle.result()
        assert first == handle.result()
        assert not state
    finally:
        if client is not None:
            client.close()
        server.stop()
        monitor.close()
