"""Intrusive doubly-linked FIFO list with O(1) removal by handle.

The paper stores *all* valid records in a single first-in-first-out
list: "The new arrivals are placed at the end of the list, and the
tuples that fall out of the window are discarded from the head"
(Section 4.1). The update-stream extension (Section 7) additionally
needs O(1) removal of an arbitrary record when an explicit deletion
arrives — hence handles.

``append`` returns a :class:`FifoNode`; keep it to ``remove`` the value
later without scanning. All operations are O(1).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class FifoNode:
    """Linked-list node handle. Treat as opaque outside this module."""

    __slots__ = ("value", "prev", "next", "_list")

    def __init__(self, value: Any) -> None:
        self.value = value
        self.prev: Optional[FifoNode] = None
        self.next: Optional[FifoNode] = None
        self._list: Optional["FifoList"] = None


class FifoList:
    """Doubly-linked FIFO list of values."""

    __slots__ = ("_head", "_tail", "_size")

    def __init__(self) -> None:
        self._head: Optional[FifoNode] = None
        self._tail: Optional[FifoNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Any]:
        """Yield values oldest-first."""
        node = self._head
        while node is not None:
            yield node.value
            node = node.next

    def append(self, value: Any) -> FifoNode:
        """Add ``value`` at the tail (most recent); return its handle."""
        node = FifoNode(value)
        node._list = self
        if self._tail is None:
            self._head = self._tail = node
        else:
            node.prev = self._tail
            self._tail.next = node
            self._tail = node
        self._size += 1
        return node

    def popleft(self) -> Any:
        """Remove and return the oldest value.

        Raises:
            IndexError: if the list is empty.
        """
        if self._head is None:
            raise IndexError("popleft from an empty FifoList")
        node = self._head
        self._unlink(node)
        return node.value

    def peekleft(self) -> Any:
        """Return the oldest value without removing it."""
        if self._head is None:
            raise IndexError("peekleft on an empty FifoList")
        return self._head.value

    def peekright(self) -> Any:
        """Return the newest value without removing it."""
        if self._tail is None:
            raise IndexError("peekright on an empty FifoList")
        return self._tail.value

    def remove(self, node: FifoNode) -> Any:
        """Remove a node previously returned by :meth:`append`.

        Raises:
            ValueError: if the node does not belong to this list (for
                example if it was already removed).
        """
        if node._list is not self:
            raise ValueError("node does not belong to this FifoList")
        self._unlink(node)
        return node.value

    def _unlink(self, node: FifoNode) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None
        node._list = None
        self._size -= 1
