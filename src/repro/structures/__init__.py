"""Substrate data structures used by the monitoring algorithms.

These are the in-memory building blocks the paper's system relies on:

- :class:`~repro.structures.heap.BinaryMaxHeap` — the cell heap of the
  top-k computation module (Section 4.2).
- :class:`~repro.structures.ostree.OrderStatisticTree` — the balanced
  tree ``BT`` used by SMA to compute dominance counters in
  ``O(k log k)`` time (Section 5).
- :class:`~repro.structures.sorted_list.SortedKeyList` — the sorted
  attribute lists maintained by the TSL baseline (Section 3.2) and the
  ordered top-lists / skybands of the monitoring algorithms.
- :class:`~repro.structures.fifo.FifoList` — the single list of valid
  records with O(1) append/evict and O(1) removal by node handle
  (Section 4.1).

Everything here is pure Python with no third-party dependencies so the
operation counts measured by the benchmarks reflect the paper's cost
model rather than vectorisation artefacts.
"""

from repro.structures.fifo import FifoList, FifoNode
from repro.structures.heap import BinaryMaxHeap
from repro.structures.ostree import OrderStatisticTree
from repro.structures.sorted_list import SortedKeyList

__all__ = [
    "BinaryMaxHeap",
    "FifoList",
    "FifoNode",
    "OrderStatisticTree",
    "SortedKeyList",
]
