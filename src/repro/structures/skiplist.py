"""An indexable skip list — the pointer-based sorted-list alternative.

TSL (Section 3.2) maintains one sorted list per dimension under
r insertions + r deletions per cycle. Two classic main-memory
implementations compete:

- a **sorted array** (:class:`repro.structures.sorted_list.SortedKeyList`):
  O(log n) search but O(n) memmove per update — in CPython the memmove
  runs in C and wins for surprisingly large n;
- a **skip list** (this module): expected O(log n) search *and*
  update, the structure a C implementation (as in the paper's era)
  would typically use.

The skip list is *indexable*: each forward pointer carries the width
(number of elements it skips), so positional access — which TA's
round-robin sorted access needs — is also O(log n).

``benchmarks/test_ablation_sorted_structures.py`` measures the
trade-off; both implementations expose the same interface, so TSL can
be constructed with either (``list_impl="array" | "skiplist"``).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator, List, Optional, Sequence

_MAX_LEVEL = 32
_P = 0.5


class _Node:
    __slots__ = ("item", "key", "forward", "width")

    def __init__(self, item: Any, key: Any, level: int) -> None:
        self.item = item
        self.key = key
        self.forward: List[Optional["_Node"]] = [None] * level
        self.width: List[int] = [1] * level


class IndexableSkipList:
    """Ordered multiset with O(log n) add/remove/position operations.

    Drop-in compatible with the slice of
    :class:`~repro.structures.sorted_list.SortedKeyList` that TSL and
    TA use: ``add``, ``remove``, ``discard``, ``__getitem__`` (by
    index), ``__len__``, iteration in key order, ``count_key_less`` /
    ``count_key_greater``.

    Elements with equal keys are kept in insertion order relative to
    each other (new duplicates are placed after existing ones).
    """

    def __init__(
        self,
        iterable: Optional[Sequence[Any]] = None,
        key: Optional[Callable[[Any], Any]] = None,
        seed: int = 0xC0DE,
    ) -> None:
        self._key = key if key is not None else lambda item: item
        self._rng = random.Random(seed)
        self._level = 1
        self._head = _Node(None, None, _MAX_LEVEL)
        self._size = 0
        if iterable:
            for item in iterable:
                self.add(item)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Any]:
        node = self._head.forward[0]
        while node is not None:
            yield node.item
            node = node.forward[0]

    def __getitem__(self, index: int) -> Any:
        """Positional access in O(log n) via pointer widths."""
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(index)
        node = self._head
        remaining = index + 1
        for level in range(self._level - 1, -1, -1):
            while (
                node.forward[level] is not None
                and node.width[level] <= remaining
            ):
                remaining -= node.width[level]
                node = node.forward[level]
        assert node is not self._head
        return node.item

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def add(self, item: Any) -> int:
        """Insert ``item``; return the index it landed at."""
        item_key = self._key(item)
        update: List[_Node] = [self._head] * _MAX_LEVEL
        rank: List[int] = [0] * (_MAX_LEVEL + 1)
        node = self._head
        for level in range(self._level - 1, -1, -1):
            rank[level] = rank[level + 1] if level + 1 < self._level else 0
            while node.forward[level] is not None and not (
                item_key < node.forward[level].key
            ):
                rank[level] += node.width[level]
                node = node.forward[level]
            update[level] = node

        new_level = self._random_level()
        if new_level > self._level:
            for level in range(self._level, new_level):
                rank[level] = 0
                update[level] = self._head
                self._head.width[level] = self._size + 1
            self._level = new_level

        new_node = _Node(item, item_key, new_level)
        position = rank[0]  # elements strictly before the new node
        for level in range(new_level):
            new_node.forward[level] = update[level].forward[level]
            update[level].forward[level] = new_node
            new_node.width[level] = (
                update[level].width[level] - (position - rank[level])
            )
            update[level].width[level] = position - rank[level] + 1
        for level in range(new_level, self._level):
            update[level].width[level] += 1
        self._size += 1
        return position

    def remove(self, item: Any) -> int:
        """Remove ``item`` (matched by key then equality/identity).

        Returns the index it occupied; raises ValueError if absent.
        """
        index = self._find_index(item)
        if index is None:
            raise ValueError(f"{item!r} not in IndexableSkipList")
        self._remove_at(index)
        return index

    def discard(self, item: Any) -> bool:
        index = self._find_index(item)
        if index is None:
            return False
        self._remove_at(index)
        return True

    def count_key_less(self, key: Any) -> int:
        node = self._head
        count = 0
        for level in range(self._level - 1, -1, -1):
            while (
                node.forward[level] is not None
                and node.forward[level].key < key
            ):
                count += node.width[level]
                node = node.forward[level]
        return count

    def count_key_greater(self, key: Any) -> int:
        node = self._head
        count = 0
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and not (
                key < node.forward[level].key
            ):
                count += node.width[level]
                node = node.forward[level]
        return self._size - count

    def _find_index(self, item: Any) -> Optional[int]:
        item_key = self._key(item)
        index = self.count_key_less(item_key)
        while index < self._size:
            candidate = self[index]
            if self._key(candidate) != item_key:
                return None
            if candidate is item or candidate == item:
                return index
            index += 1
        return None

    def _remove_at(self, index: int) -> None:
        update: List[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        remaining = index  # number of elements to leave before target
        for level in range(self._level - 1, -1, -1):
            while (
                node.forward[level] is not None
                and node.width[level] <= remaining
            ):
                remaining -= node.width[level]
                node = node.forward[level]
            update[level] = node
        target = update[0].forward[0]
        assert target is not None
        for level in range(self._level):
            if update[level].forward[level] is target:
                update[level].width[level] += target.width[level] - 1
                update[level].forward[level] = target.forward[level]
            else:
                update[level].width[level] -= 1
        while (
            self._level > 1
            and self._head.forward[self._level - 1] is None
        ):
            self._level -= 1
        self._size -= 1

    def bulk_add(self, items: Sequence[Any]) -> None:
        """Interface parity with SortedKeyList; inserts one by one
        (a skip list has no cheaper bulk path without rebuild)."""
        for item in items:
            self.add(item)

    def add_many(self, items: Sequence[Any]) -> None:
        """Interface parity with SortedKeyList's batched merge.

        Pointer insertion is already O(log n) per item with no memmove,
        so the batched form is the same per-item loop as bulk_add.
        """
        self.bulk_add(items)

    def remove_many(self, items: Sequence[Any]) -> None:
        """Interface parity with SortedKeyList's batched removal."""
        for item in items:
            self.remove(item)
