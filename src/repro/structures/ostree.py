"""Order-statistic balanced tree (treap with subtree sizes).

SMA initialises the dominance counters of a freshly computed skyband by
scanning the entries in descending score order and asking, for each
entry, *how many already-seen entries expire after it* (paper Section 5:
"an internal node in BT contains the cardinality of the sub-tree rooted
at that node so that the computation of dominance counters takes in
total O(k log k) time").

A treap gives expected O(log n) insert/delete/rank with a tiny, fully
auditable implementation — no rebalancing case analysis. Priorities come
from a dedicated :class:`random.Random` seeded per-tree, so behaviour is
reproducible and independent of global random state.

Keys must be mutually comparable. Duplicate keys are allowed and counted
with multiplicity (ranks treat duplicates as distinct elements).
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional


class _Node:
    __slots__ = ("key", "priority", "left", "right", "size", "count")

    def __init__(self, key: Any, priority: float) -> None:
        self.key = key
        self.priority = priority
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.size = 1  # total multiplicity in this subtree
        self.count = 1  # multiplicity of this key

    def update(self) -> None:
        self.size = self.count
        if self.left is not None:
            self.size += self.left.size
        if self.right is not None:
            self.size += self.right.size


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


class OrderStatisticTree:
    """Multiset with O(log n) rank/selection queries.

    Example:
        >>> tree = OrderStatisticTree()
        >>> for value in (5, 1, 9, 5):
        ...     tree.insert(value)
        >>> tree.count_greater(5)
        1
        >>> tree.count_less(5)
        1
        >>> tree.kth(0), tree.kth(3)
        (1, 9)
    """

    def __init__(self, seed: int = 0x5EED) -> None:
        self._root: Optional[_Node] = None
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return _size(self._root)

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return True
        return False

    def insert(self, key: Any) -> None:
        """Insert ``key`` (duplicates increase multiplicity)."""
        self._root = self._insert(self._root, key)

    def remove(self, key: Any) -> None:
        """Remove one occurrence of ``key``.

        Raises:
            KeyError: if ``key`` is not present.
        """
        if key not in self:
            raise KeyError(key)
        self._root = self._remove(self._root, key)

    def count_greater(self, key: Any) -> int:
        """Number of stored elements strictly greater than ``key``."""
        total = 0
        node = self._root
        while node is not None:
            if key < node.key:
                # node and its right subtree are all strictly greater.
                total += node.count + _size(node.right)
                node = node.left
            else:
                # node.key <= key: only the right subtree can qualify.
                node = node.right
        return total

    def count_less(self, key: Any) -> int:
        """Number of stored elements strictly less than ``key``."""
        total = 0
        node = self._root
        while node is not None:
            if node.key < key:
                total += node.count + _size(node.left)
                node = node.right
            else:
                node = node.left
        return total

    def count_greater_equal(self, key: Any) -> int:
        """Number of stored elements greater than or equal to ``key``."""
        return len(self) - self.count_less(key)

    def kth(self, index: int) -> Any:
        """Return the ``index``-th smallest element (0-based).

        Raises:
            IndexError: if ``index`` is out of range.
        """
        if index < 0 or index >= len(self):
            raise IndexError(index)
        node = self._root
        while node is not None:
            left = _size(node.left)
            if index < left:
                node = node.left
            elif index < left + node.count:
                return node.key
            else:
                index -= left + node.count
                node = node.right
        raise AssertionError("tree invariant violated")  # pragma: no cover

    def __iter__(self) -> Iterator[Any]:
        """Yield elements in ascending order with multiplicity."""
        stack: List[Any] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            for _ in range(node.count):
                yield node.key
            node = node.right

    def _insert(self, node: Optional[_Node], key: Any) -> _Node:
        if node is None:
            return _Node(key, self._rng.random())
        if key < node.key:
            node.left = self._insert(node.left, key)
            if node.left.priority > node.priority:
                node = self._rotate_right(node)
        elif node.key < key:
            node.right = self._insert(node.right, key)
            if node.right.priority > node.priority:
                node = self._rotate_left(node)
        else:
            node.count += 1
        node.update()
        return node

    def _remove(self, node: Optional[_Node], key: Any) -> Optional[_Node]:
        if node is None:  # pragma: no cover - guarded by caller
            return None
        if key < node.key:
            node.left = self._remove(node.left, key)
        elif node.key < key:
            node.right = self._remove(node.right, key)
        else:
            if node.count > 1:
                node.count -= 1
            else:
                if node.left is None:
                    return node.right
                if node.right is None:
                    return node.left
                if node.left.priority > node.right.priority:
                    node = self._rotate_right(node)
                    node.right = self._remove(node.right, key)
                else:
                    node = self._rotate_left(node)
                    node.left = self._remove(node.left, key)
        node.update()
        return node

    @staticmethod
    def _rotate_right(node: _Node) -> _Node:
        pivot = node.left
        assert pivot is not None
        node.left = pivot.right
        pivot.right = node
        node.update()
        pivot.update()
        return pivot

    @staticmethod
    def _rotate_left(node: _Node) -> _Node:
        pivot = node.right
        assert pivot is not None
        node.right = pivot.left
        pivot.left = node
        node.update()
        pivot.update()
        return pivot
