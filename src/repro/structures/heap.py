"""A binary max-heap with explicit keys.

The top-k computation module (paper Figure 6) de-heaps grid cells in
descending ``maxscore`` order. Python's :mod:`heapq` is a min-heap over
naturally-ordered items; wrapping it everywhere with negated, tie-broken
tuples obscures the algorithm, so the heap used throughout the library
lives here with the exact interface the traversal needs:

- ``push(key, item)`` / ``pop() -> (key, item)`` in O(log n);
- ``peek_key()`` to test the paper's termination condition *"while next
  entry has key > q.top_score"* without removing the entry;
- ``drain()`` to collect the entries that remain after termination —
  TMA's lazy influence-list cleanup starts from exactly those cells
  (Figure 9, line 14).

Keys may be any mutually-comparable values; ties are broken by insertion
order so heap behaviour is deterministic even when items themselves are
not comparable (grid cells are not).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple


class BinaryMaxHeap:
    """Array-backed binary max-heap keyed by an explicit sort key."""

    __slots__ = ("_entries", "_counter")

    def __init__(self) -> None:
        # Each entry is [key, seq, item]; seq gives FIFO tie-breaking and
        # keeps comparisons away from arbitrary item types.
        self._entries: List[List[Any]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, key: Any, item: Any) -> None:
        """Insert ``item`` with priority ``key`` in O(log n)."""
        self._counter += 1
        self._entries.append([key, -self._counter, item])
        self._sift_up(len(self._entries) - 1)

    def pop(self) -> Tuple[Any, Any]:
        """Remove and return ``(key, item)`` with the largest key.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._entries:
            raise IndexError("pop from an empty heap")
        entries = self._entries
        top = entries[0]
        last = entries.pop()
        if entries:
            entries[0] = last
            self._sift_down(0)
        return top[0], top[2]

    def peek_key(self) -> Any:
        """Return the largest key without removing its entry.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._entries:
            raise IndexError("peek on an empty heap")
        return self._entries[0][0]

    def peek_item(self) -> Any:
        """Return the item with the largest key without removing it."""
        if not self._entries:
            raise IndexError("peek on an empty heap")
        return self._entries[0][2]

    def drain(self) -> List[Any]:
        """Remove and return all remaining items (arbitrary order)."""
        items = [entry[2] for entry in self._entries]
        self._entries.clear()
        return items

    def items(self) -> Iterator[Any]:
        """Iterate over contained items without consuming them."""
        return (entry[2] for entry in self._entries)

    def _greater(self, a: List[Any], b: List[Any]) -> bool:
        return (a[0], a[1]) > (b[0], b[1])

    def _sift_up(self, index: int) -> None:
        entries = self._entries
        entry = entries[index]
        while index > 0:
            parent = (index - 1) >> 1
            if self._greater(entry, entries[parent]):
                entries[index] = entries[parent]
                index = parent
            else:
                break
        entries[index] = entry

    def _sift_down(self, index: int) -> None:
        entries = self._entries
        size = len(entries)
        entry = entries[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._greater(entries[right], entries[child]):
                child = right
            if self._greater(entries[child], entry):
                entries[index] = entries[child]
                index = child
            else:
                break
        entries[index] = entry
