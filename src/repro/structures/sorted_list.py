"""A list kept sorted by an explicit key function.

Used in three places that the paper describes as ordered containers:

- the d *sorted attribute lists* of the TSL baseline (Section 3.2) —
  one per dimension, ordered by preference so TA's sorted access walks
  them from index 0;
- each query's ``top_list`` in TMA (Section 4.1, "with a red-black tree
  implementation an update costs O(log k)");
- each query's ``skyband`` in SMA (Section 5, kept in descending score
  order).

Search is O(log n) via :mod:`bisect`; insertion and deletion pay an
O(n) memmove which is performed in C and, for the list sizes the
algorithms maintain (k..kmax entries, or N/d per attribute list at the
scaled-down workloads), is faster in CPython than any pointer-based
balanced tree written in Python. The asymptotic accounting in
``repro.analysis.cost_model`` follows the paper's O(log) figures.

Duplicate keys are permitted; elements with equal keys are further
ordered by their ``tiebreak`` (default: insertion is positioned after
existing equals, removal requires identity match scan within the equal
range).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort_right
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple


class SortedKeyList:
    """Sequence kept in ascending key order.

    Args:
        key: callable mapping an element to its sort key. Defaults to
            the identity.
        iterable: optional initial elements (sorted on construction).
    """

    __slots__ = ("_key", "_keys", "_items")

    def __init__(
        self,
        iterable: Optional[Sequence[Any]] = None,
        key: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self._key = key if key is not None else lambda item: item
        items = sorted(iterable, key=self._key) if iterable else []
        self._items: List[Any] = items
        self._keys: List[Any] = [self._key(item) for item in items]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __reversed__(self) -> Iterator[Any]:
        return reversed(self._items)

    def __getitem__(self, index: Any) -> Any:
        return self._items[index]

    def __contains__(self, item: Any) -> bool:
        return self._find(item) is not None

    def add(self, item: Any) -> int:
        """Insert ``item`` keeping order; return its index."""
        item_key = self._key(item)
        index = bisect_right(self._keys, item_key)
        self._keys.insert(index, item_key)
        self._items.insert(index, item)
        return index

    def bulk_add(self, items: Sequence[Any]) -> None:
        """Insert many items at once in O((n+m)·log(n+m)).

        Bulk loading (window warm-up, TA refill preparation) would pay
        m·O(n) memmoves via :meth:`add`; extending and re-sorting is
        asymptotically and practically cheaper for large batches, and
        Timsort exploits the existing order.
        """
        self._items.extend(items)
        self._items.sort(key=self._key)
        self._keys = [self._key(item) for item in self._items]

    def remove(self, item: Any) -> int:
        """Remove ``item`` (matched by key, then identity/equality).

        Returns:
            The index the item occupied.

        Raises:
            ValueError: if the item is not present.
        """
        index = self._find(item)
        if index is None:
            raise ValueError(f"{item!r} not in SortedKeyList")
        del self._keys[index]
        del self._items[index]
        return index

    def discard(self, item: Any) -> bool:
        """Remove ``item`` if present; return whether a removal happened."""
        index = self._find(item)
        if index is None:
            return False
        del self._keys[index]
        del self._items[index]
        return True

    def pop(self, index: int = -1) -> Any:
        """Remove and return the element at ``index``."""
        item = self._items.pop(index)
        self._keys.pop(index)
        return item

    def index_of_key(self, key: Any) -> int:
        """Leftmost index whose key is >= ``key`` (bisect_left)."""
        return bisect_left(self._keys, key)

    def count_key_greater(self, key: Any) -> int:
        """Number of elements with key strictly greater than ``key``."""
        return len(self._keys) - bisect_right(self._keys, key)

    def count_key_less(self, key: Any) -> int:
        """Number of elements with key strictly less than ``key``."""
        return bisect_left(self._keys, key)

    def clear(self) -> None:
        self._items.clear()
        self._keys.clear()

    def _find(self, item: Any) -> Optional[int]:
        item_key = self._key(item)
        lo = bisect_left(self._keys, item_key)
        hi = bisect_right(self._keys, item_key)
        for index in range(lo, hi):
            candidate = self._items[index]
            if candidate is item or candidate == item:
                return index
        return None


def insort_unique(
    values: List[Tuple[Any, Any]], entry: Tuple[Any, Any]
) -> None:
    """Insert ``(key, payload)`` into a plain sorted list of pairs.

    Small helper for call sites that keep a raw list of ``(key, item)``
    tuples instead of a :class:`SortedKeyList` (cheaper when the list
    never exceeds a few dozen entries).
    """
    insort_right(values, entry)
