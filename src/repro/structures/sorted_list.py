"""A list kept sorted by an explicit key function.

Used in three places that the paper describes as ordered containers:

- the d *sorted attribute lists* of the TSL baseline (Section 3.2) —
  one per dimension, ordered by preference so TA's sorted access walks
  them from index 0;
- each query's ``top_list`` in TMA (Section 4.1, "with a red-black tree
  implementation an update costs O(log k)");
- each query's ``skyband`` in SMA (Section 5, kept in descending score
  order).

Search is O(log n) via :mod:`bisect`; insertion and deletion pay an
O(n) memmove which is performed in C and, for the list sizes the
algorithms maintain (k..kmax entries, or N/d per attribute list at the
scaled-down workloads), is faster in CPython than any pointer-based
balanced tree written in Python. The asymptotic accounting in
``repro.analysis.cost_model`` follows the paper's O(log) figures.

Duplicate keys are permitted; elements with equal keys are further
ordered by their ``tiebreak`` (default: insertion is positioned after
existing equals, removal requires identity match scan within the equal
range).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort_right
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core import batch


class SortedKeyList:
    """Sequence kept in ascending key order.

    Args:
        key: callable mapping an element to its sort key. Defaults to
            the identity.
        iterable: optional initial elements (sorted on construction).
    """

    __slots__ = ("_key", "_keys", "_items")

    def __init__(
        self,
        iterable: Optional[Sequence[Any]] = None,
        key: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self._key = key if key is not None else lambda item: item
        items = sorted(iterable, key=self._key) if iterable else []
        self._items: List[Any] = items
        self._keys: List[Any] = [self._key(item) for item in items]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __reversed__(self) -> Iterator[Any]:
        return reversed(self._items)

    def __getitem__(self, index: Any) -> Any:
        return self._items[index]

    def __contains__(self, item: Any) -> bool:
        return self._find(item) is not None

    def add(self, item: Any) -> int:
        """Insert ``item`` keeping order; return its index."""
        item_key = self._key(item)
        index = bisect_right(self._keys, item_key)
        self._keys.insert(index, item_key)
        self._items.insert(index, item)
        return index

    def bulk_add(self, items: Sequence[Any]) -> None:
        """Insert many items at once in O((n+m)·log(n+m)).

        Bulk loading (window warm-up, TA refill preparation) would pay
        m·O(n) memmoves via :meth:`add`; extending and re-sorting is
        asymptotically and practically cheaper for large batches, and
        Timsort exploits the existing order.
        """
        self._items.extend(items)
        self._items.sort(key=self._key)
        self._keys = [self._key(item) for item in self._items]

    def add_many(self, items: Sequence[Any]) -> None:
        """Merge a batch of items in one O(n + m·log n) rebuild.

        Per-item :meth:`add` pays one O(n) memmove *per insertion*; for
        a steady-state stream batch (m ≪ n) that is the dominant cost
        of the whole TSL cycle. Here the batch is sorted, each item's
        position found by bisect, and the list rebuilt once from the
        slices between consecutive insertion points — every element
        moves exactly once, in C-level slice copies.

        Equal keys: an inserted item lands after existing equals
        (``bisect_right``), matching :meth:`add`; batch members with
        equal keys keep their sorted-batch order, also matching what
        sequential :meth:`add` calls would produce.
        """
        if len(items) <= 4:
            for item in items:
                self.add(item)
            return
        # Stable sort on the key alone: items themselves may not be
        # comparable, and equal-key batch members must keep their
        # order (matching sequential add()).
        incoming = sorted(items, key=self._key)
        keys = self._keys
        old_items = self._items
        new_keys: List[Any] = []
        new_items: List[Any] = []
        start = 0
        for item in incoming:
            key = self._key(item)
            position = bisect_right(keys, key, start)
            new_keys.extend(keys[start:position])
            new_items.extend(old_items[start:position])
            new_keys.append(key)
            new_items.append(item)
            start = position
        new_keys.extend(keys[start:])
        new_items.extend(old_items[start:])
        self._keys = new_keys
        self._items = new_items

    def remove_many(self, items: Sequence[Any]) -> None:
        """Remove a batch of items in one O(n + m·log n) rebuild.

        The batched dual of :meth:`add_many`: all positions are located
        first (the list is not mutated while searching), then the
        survivors are reassembled once from the slices between dropped
        positions.

        Items must be *distinct* elements of the list (duplicates of
        the same element would resolve to one position); keys that
        embed a unique tiebreak — as every call site's do — satisfy
        this by construction.

        Raises:
            ValueError: if any item is missing; the list is left
                unchanged in that case.
        """
        if len(items) <= 4:
            # Keep the unchanged-on-error guarantee: locate every
            # position before the first deletion.
            found = [self._find(item) for item in items]
            for item, index in zip(items, found):
                if index is None:
                    raise ValueError(f"{item!r} not in SortedKeyList")
            for index in sorted(found, reverse=True):
                del self._keys[index]
                del self._items[index]
            return
        positions: List[int] = []
        for item in items:
            index = self._find(item)
            if index is None:
                raise ValueError(f"{item!r} not in SortedKeyList")
            positions.append(index)
        positions.sort()
        keys = self._keys
        old_items = self._items
        new_keys: List[Any] = []
        new_items: List[Any] = []
        previous = 0
        for position in positions:
            new_keys.extend(keys[previous:position])
            new_items.extend(old_items[previous:position])
            previous = position + 1
        new_keys.extend(keys[previous:])
        new_items.extend(old_items[previous:])
        self._keys = new_keys
        self._items = new_items

    def remove(self, item: Any) -> int:
        """Remove ``item`` (matched by key, then identity/equality).

        Returns:
            The index the item occupied.

        Raises:
            ValueError: if the item is not present.
        """
        index = self._find(item)
        if index is None:
            raise ValueError(f"{item!r} not in SortedKeyList")
        del self._keys[index]
        del self._items[index]
        return index

    def discard(self, item: Any) -> bool:
        """Remove ``item`` if present; return whether a removal happened."""
        index = self._find(item)
        if index is None:
            return False
        del self._keys[index]
        del self._items[index]
        return True

    def pop(self, index: int = -1) -> Any:
        """Remove and return the element at ``index``."""
        item = self._items.pop(index)
        self._keys.pop(index)
        return item

    def index_of_key(self, key: Any) -> int:
        """Leftmost index whose key is >= ``key`` (bisect_left)."""
        return bisect_left(self._keys, key)

    def count_key_greater(self, key: Any) -> int:
        """Number of elements with key strictly greater than ``key``."""
        return len(self._keys) - bisect_right(self._keys, key)

    def count_key_less(self, key: Any) -> int:
        """Number of elements with key strictly less than ``key``."""
        return bisect_left(self._keys, key)

    def clear(self) -> None:
        self._items.clear()
        self._keys.clear()

    def _find(self, item: Any) -> Optional[int]:
        item_key = self._key(item)
        lo = bisect_left(self._keys, item_key)
        hi = bisect_right(self._keys, item_key)
        for index in range(lo, hi):
            candidate = self._items[index]
            if candidate is item or candidate == item:
                return index
        return None


class AttributeSortedList:
    """Columnar sorted list keyed by one float attribute (NumPy-backed).

    The vectorized counterpart of :class:`SortedKeyList` for TSL's
    per-dimension attribute lists: keys live in a ``float64`` array, so
    position lookups are ``np.searchsorted`` (vectorized across a whole
    batch) and batched merges/removals move the key column in single C
    passes instead of one interpreted tuple-compare bisect per record.

    Keys are the bare attribute values — no rid tiebreak. Elements
    with equal keys are ordered by insertion instead of by rid, which
    TA provably tolerates: its threshold τ depends only on attribute
    values, so any scan order within an equal-value run yields the
    same exact result. Removal stays deterministic because the
    equal-key range is scanned for the requested element itself.

    Requires the NumPy batch backend;
    :class:`~repro.algorithms.tsl.ThresholdSortedListAlgorithm` falls
    back to :class:`SortedKeyList` under the pure-Python backend.
    """

    __slots__ = ("_key", "_keys", "_items")

    def __init__(
        self,
        iterable: Optional[Sequence[Any]] = None,
        key: Optional[Callable[[Any], float]] = None,
    ) -> None:
        if batch.np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError(
                "AttributeSortedList requires the NumPy batch backend"
            )
        self._key = key if key is not None else lambda item: item
        items = sorted(iterable, key=self._key) if iterable else []
        self._items: List[Any] = items
        self._keys = batch.np.asarray(
            [self._key(item) for item in items], dtype=batch.np.float64
        )

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __reversed__(self) -> Iterator[Any]:
        return reversed(self._items)

    def __getitem__(self, index: Any) -> Any:
        return self._items[index]

    def __contains__(self, item: Any) -> bool:
        return self._find(item) is not None

    def add(self, item: Any) -> int:
        """Insert ``item`` keeping order; return its index."""
        np = batch.np
        item_key = self._key(item)
        index = int(np.searchsorted(self._keys, item_key, side="right"))
        self._keys = np.insert(self._keys, index, item_key)
        self._items.insert(index, item)
        return index

    def bulk_add(self, items: Sequence[Any]) -> None:
        """Extend and re-sort — the warm-up load path (stable order)."""
        np = batch.np
        self._items.extend(items)
        keys = np.asarray(
            [self._key(item) for item in self._items], dtype=np.float64
        )
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        items_before = self._items
        self._items = [items_before[index] for index in order.tolist()]

    def add_many(self, items: Sequence[Any]) -> None:
        """Merge a batch: one vectorized position lookup, one rebuild."""
        if not items:
            return
        np = batch.np
        incoming = sorted(items, key=self._key)
        new_keys = np.asarray(
            [self._key(item) for item in incoming], dtype=np.float64
        )
        positions = np.searchsorted(self._keys, new_keys, side="right")
        self._keys = np.insert(self._keys, positions, new_keys)
        old_items = self._items
        merged: List[Any] = []
        previous = 0
        for position, item in zip(positions.tolist(), incoming):
            if position != previous:
                merged.extend(old_items[previous:position])
                previous = position
            merged.append(item)
        merged.extend(old_items[previous:])
        self._items = merged

    def remove(self, item: Any) -> int:
        """Remove ``item``; ValueError if absent. Returns its index."""
        index = self._find(item)
        if index is None:
            raise ValueError(f"{item!r} not in AttributeSortedList")
        self._keys = batch.np.delete(self._keys, index)
        del self._items[index]
        return index

    def discard(self, item: Any) -> bool:
        """Remove ``item`` if present; return whether a removal happened."""
        index = self._find(item)
        if index is None:
            return False
        self._keys = batch.np.delete(self._keys, index)
        del self._items[index]
        return True

    def remove_many(self, items: Sequence[Any]) -> None:
        """Remove a batch of distinct elements in one rebuild.

        All equal-key ranges are located with two vectorized
        ``searchsorted`` calls; the identity scan claims each position
        at most once so duplicate keys resolve to distinct elements.
        Like :meth:`SortedKeyList.remove_many`, a missing item raises
        ``ValueError`` with the list left unchanged.
        """
        if len(items) <= 2:
            found = [self._find(item) for item in items]
            for item, index in zip(items, found):
                if index is None:
                    raise ValueError(f"{item!r} not in AttributeSortedList")
            np_local = batch.np
            for index in sorted(found, reverse=True):
                self._keys = np_local.delete(self._keys, index)
                del self._items[index]
            return
        np = batch.np
        victim_keys = np.asarray(
            [self._key(item) for item in items], dtype=np.float64
        )
        lows = np.searchsorted(self._keys, victim_keys, side="left").tolist()
        highs = np.searchsorted(self._keys, victim_keys, side="right").tolist()
        taken: set = set()
        positions: List[int] = []
        for item, low, high in zip(items, lows, highs):
            found = None
            for index in range(low, high):
                if index in taken:
                    continue
                candidate = self._items[index]
                if candidate is item or candidate == item:
                    found = index
                    break
            if found is None:
                raise ValueError(f"{item!r} not in AttributeSortedList")
            taken.add(found)
            positions.append(found)
        positions.sort()
        self._keys = np.delete(self._keys, positions)
        old_items = self._items
        survivors: List[Any] = []
        previous = 0
        for position in positions:
            survivors.extend(old_items[previous:position])
            previous = position + 1
        survivors.extend(old_items[previous:])
        self._items = survivors

    def clear(self) -> None:
        self._items.clear()
        self._keys = batch.np.empty(0, dtype=batch.np.float64)

    def _find(self, item: Any) -> Optional[int]:
        np = batch.np
        item_key = self._key(item)
        low = int(np.searchsorted(self._keys, item_key, side="left"))
        high = int(np.searchsorted(self._keys, item_key, side="right"))
        for index in range(low, high):
            candidate = self._items[index]
            if candidate is item or candidate == item:
                return index
        return None


def insort_unique(
    values: List[Tuple[Any, Any]], entry: Tuple[Any, Any]
) -> None:
    """Insert ``(key, payload)`` into a plain sorted list of pairs.

    Small helper for call sites that keep a raw list of ``(key, item)``
    tuples instead of a :class:`SortedKeyList` (cheaper when the list
    never exceeds a few dozen entries).
    """
    insort_right(values, entry)
