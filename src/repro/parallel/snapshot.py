"""Compatibility shim: the snapshot codec moved to the transport layer.

The columnar cycle-snapshot encoding became the pipe transport's wire
format when the shard channel abstraction was extracted; it lives in
:mod:`repro.transport.snapshot` now. This module re-exports the public
surface so pre-existing imports keep working. New code (and anything
monkeypatching ``SHM_MIN_BYTES``) should import the real module.
"""

from __future__ import annotations

from repro.transport.snapshot import (
    SHM_MIN_BYTES,
    Batches,
    decode_cycle,
    encode_cycle,
)

__all__ = ["SHM_MIN_BYTES", "Batches", "decode_cycle", "encode_cycle"]
