"""Query-sharded parallel maintenance (multi-process execution).

The paper's per-query, additive cost model makes TMA/SMA maintenance
embarrassingly partitionable by query. This package supplies the
pieces:

- :class:`~repro.parallel.sharding.ShardPlanner` — query→shard
  assignment (similarity-bucket-sticky for linear top-k queries,
  round-robin otherwise);
- :mod:`~repro.parallel.snapshot` — the columnar per-cycle broadcast
  (shared memory under the NumPy backend, pickled columns otherwise);
- :mod:`~repro.parallel.worker` — the shard worker process loop;
- :class:`~repro.parallel.sharded.ShardedMonitorAlgorithm` — the
  coordinator, a drop-in
  :class:`~repro.algorithms.base.MonitorAlgorithm`.

Entry point for users: ``StreamMonitor(..., shards=N)``.
"""

from repro.parallel.sharded import ShardedMonitorAlgorithm
from repro.parallel.sharding import ShardPlanner

__all__ = ["ShardPlanner", "ShardedMonitorAlgorithm"]
