"""Coordinator of the query-sharded parallel maintenance engine.

:class:`ShardedMonitorAlgorithm` implements the
:class:`~repro.algorithms.base.MonitorAlgorithm` interface by fanning
work out to N shards behind :class:`~repro.transport.base.ShardChannel`
links (:mod:`repro.transport`). The decomposition follows the paper's
additive per-query cost model (Section 6):

- **stream state is replicated** — every shard ingests every cycle's
  arrivals/expirations into its own grid, exactly as a single-process
  run would (grid ingestion is the cheap, batched part of a cycle);
- **query state is partitioned** — each registered query lives on
  exactly one shard (:class:`~repro.parallel.sharding.ShardPlanner`),
  so the expensive part — influence checks, top-list/skyband upkeep,
  from-scratch recomputations — splits ~evenly and runs in parallel;
- **results merge by qid** — per-cycle
  :class:`~repro.core.results.ResultChange` dicts are disjoint across
  shards, and query-driven counters are additive, so the merge is a
  union plus a sum. Replica-ingestion counters (``arrivals``,
  ``expirations``, TSL's ``sorted_list_updates``) are identical on
  every shard and adopted from shard 0 alone — merged counters match
  a single-process run's.

**Transports.** ``shards=N`` spawns N worker processes on pipe
channels (:class:`~repro.transport.pipe.PipeChannel`, the
shared-memory snapshot fast path intact); ``shards=["host:port",
...]`` dials that many remote shard hosts
(:mod:`repro.cluster.shard`) over TCP channels carrying the same
messages as length-delimited JSON with columnar cycle deltas. The
coordinator sees only the channel API — no pipes, sockets, or
shared-memory names — and one pool may mix transports. Per-cycle
bytes on the wire (and bytes placed in shared memory) are recorded
and surfaced via :meth:`transport_stats`.

**Exactness.** A query's maintenance depends only on the stream (same
records, rebuilt bit-for-bit from the columnar snapshot — shared
memory and JSON wire floats are both lossless float64 round trips)
and on its own state — never on other queries. Sharding therefore
yields *bitwise-identical* results and influence lists to a
single-process run regardless of transport; the parity suites
(``tests/integration/test_sharded_parity.py``,
``tests/integration/test_remote_parity.py``) pin this across shard
counts, algorithms, grouping, churn, transports, and both batch
backends. Grouped variants keep their sweeps intact because the
planner routes whole similarity buckets to one shard.

**Pipelined broadcast.** :meth:`ShardedMonitorAlgorithm.process_cycle`
is strict lockstep (encode → send-all → recv-all → merge). The same
work is also exposed as three phases — :meth:`prepare_cycle` (encode
only), :meth:`begin_cycle` (send, don't wait) and :meth:`finish_cycle`
(completion-order receive + merge) — so
:meth:`~repro.core.engine.StreamMonitor.process_many` can build cycle
*t+1*'s snapshot while the shards still compute cycle *t*. Replies are
always collected in completion order
(:func:`repro.transport.base.wait_ready` multiplexes pipe and socket
channels in one wait), so a fast shard's report is decoded and merged
while slow shards still work. Results stay bitwise identical: workers
serve requests strictly in channel order, and at most one cycle is
ever in flight.

Worker processes are daemons; :meth:`close` shuts the pool down
gracefully (remote hosts end their session and re-listen), and
abandoning the object terminates local workers. Set
``REPRO_SHARD_START_METHOD`` (``fork``/``spawn``/``forkserver``) and
``REPRO_SHARD_TIMEOUT`` (seconds per round trip) to override the
defaults.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.algorithms.base import MonitorAlgorithm
from repro.core.errors import DimensionalityError, StreamError
from repro.core.queries import TopKQuery
from repro.core.results import ResultChange, ResultEntry
from repro.core.tuples import StreamRecord
from repro.parallel.sharding import ShardPlanner
from repro.parallel.worker import worker_main
from repro.transport.base import (
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    PreparedCycle,
    ShardChannel,
    WorkerFailure,
    prepare_cycle as encode_prepared_cycle,
    publish_channel_metrics,
    wait_ready,
)
from repro.transport.pipe import PipeChannel
from repro.transport.tcp import TcpChannel

#: counters driven purely by stream ingestion, which every worker
#: performs on its full replica: summing them across shards would
#: inflate them N-fold, so the merge adopts shard 0's values (equal on
#: every shard — replicas ingest identical batches) and skips the
#: other shards' duplicates. Everything else is query-driven and
#: partitions, so it sums.
_REPLICATED_COUNTERS = frozenset(
    {"arrivals", "expirations", "sorted_list_updates", "sketch_updates"}
)

#: per-cycle transport samples retained for stats() (oldest evicted).
_CYCLE_LOG_LIMIT = 1024


def _default_start_method() -> str:
    preferred = os.environ.get("REPRO_SHARD_START_METHOD", "").strip()
    if preferred:
        return preferred
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _rpc_timeout() -> float:
    return float(os.environ.get("REPRO_SHARD_TIMEOUT", "120"))


class ShardedMonitorAlgorithm(MonitorAlgorithm):
    """Query-sharded parallel execution of a named algorithm.

    Args:
        algorithm: factory name of the per-shard algorithm (``"tma"``,
            ``"sma"``, grouped variants, ``"tsl"``, ``"brute"`` — any
            :func:`~repro.algorithms.make_algorithm` name).
        dims: data dimensionality.
        shards: number of worker processes (>= 1), or a sequence of
            ``"host:port"`` addresses of running
            ``python -m repro.cluster.shard`` hosts — one remote
            shard per address.
        cells_per_axis: grid granularity forwarded to grid-based
            algorithms (workers resolve the same default when None).
        trace: enable per-cycle phase tracing in every worker. Each
            worker runs its own :class:`~repro.obs.trace.CycleTracer`
            over a worker-local registry and ships the registry's
            per-cycle *delta* in its cycle reply; the coordinator
            merges the deltas, so merged phase histograms measure
            pool-wide work (replicated phases like the approximate
            tier's sketch update genuinely run on every shard).
        **options: forwarded to the per-shard algorithm factory
            (e.g. ``grouped=True``). Must be JSON-serialisable when
            remote addresses are used (they cross the configure
            handshake).
    """

    name = "sharded"

    def __init__(
        self,
        algorithm: str,
        dims: int,
        shards: Union[int, Sequence[str]],
        cells_per_axis: Optional[int] = None,
        trace: bool = False,
        **options,
    ) -> None:
        from repro.algorithms import ALGORITHMS

        super().__init__(dims)
        if not isinstance(algorithm, str):
            raise TypeError(
                "sharded execution needs an algorithm factory name; "
                f"got {type(algorithm).__name__}"
            )
        key = algorithm.lower()
        if key not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}"
            )
        addresses: Optional[List[str]] = None
        if isinstance(shards, str):
            addresses = [shards]
        elif not isinstance(shards, int) and shards is not None:
            addresses = [str(address) for address in shards]
            if not addresses:
                raise ValueError(
                    "shards address list must name at least one "
                    "'host:port' shard host"
                )
        if addresses is None:
            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            count = shards
        else:
            count = len(addresses)
        self.base_algorithm = key
        self.shards = count
        self.transport = "pipe" if addresses is None else "tcp"
        self.name = f"{key}x{count}"
        #: the engine's accuracy-contract gate: sharded pools support
        #: (ε,δ) queries exactly when the per-shard algorithm does.
        self.supports_accuracy = key.split("-")[0] == "approx"
        self._cells_per_axis = cells_per_axis
        self._sketch_mapper = None
        self.trace = bool(trace)
        #: reserved key the worker factories pop before constructing
        #: the per-shard algorithm (JSON-serialisable: it crosses the
        #: TCP configure handshake verbatim).
        worker_options = dict(options)
        worker_options["_obs"] = {"trace": self.trace}
        self.planner = ShardPlanner(count)
        self._queries: Dict[int, TopKQuery] = {}
        self._results: Dict[int, List[ResultEntry]] = {}
        self._last_counters: List[Dict[str, int]] = [
            {} for _ in range(count)
        ]
        self._timeout = _rpc_timeout()
        self._channels: List[ShardChannel] = []
        #: the one in-flight pipelined cycle:
        #: (PreparedCycle, wire-bytes baseline) or None.
        self._pending = None
        self._cycle_log: deque = deque(maxlen=_CYCLE_LOG_LIMIT)
        self._cycles_recorded = 0
        self._cycle_wire_total = 0
        self._cycle_shared_total = 0
        try:
            if addresses is None:
                context = multiprocessing.get_context(
                    _default_start_method()
                )
                for shard in range(count):
                    self._channels.append(
                        PipeChannel.spawn(
                            context,
                            worker_main,
                            (key, dims, cells_per_axis, worker_options),
                            name=f"repro-shard-{shard}",
                        )
                    )
            else:
                for shard, address in enumerate(addresses):
                    try:
                        self._channels.append(
                            TcpChannel.connect(
                                address,
                                algorithm=key,
                                dims=dims,
                                cells_per_axis=cells_per_axis,
                                options=worker_options,
                                timeout=self._timeout,
                            )
                        )
                    except WorkerFailure as exc:
                        raise StreamError(
                            f"shard host {address!r} rejected the "
                            f"configure handshake:\n{exc}"
                        ) from None
                    except ChannelError as exc:
                        raise StreamError(
                            f"cannot bring up remote shard {shard} at "
                            f"{address!r}: {exc}"
                        ) from None
        except BaseException:
            self._terminate()
            raise

    # ------------------------------------------------------------------
    # Shard RPC plumbing (transport-agnostic: channels only)
    # ------------------------------------------------------------------

    def _recv(self, shard: int):
        channel = self._channels[shard]
        try:
            return channel.response(self._timeout)
        except ChannelTimeout:
            self._terminate()
            raise StreamError(
                f"shard {shard} ({self.name}) did not reply within "
                f"{self._timeout:.0f}s; worker pool terminated"
            ) from None
        except ChannelClosed as exc:
            self._terminate()
            raise StreamError(
                f"shard {shard} ({self.name}) died mid-request "
                f"[{channel.describe()}: {exc}]"
            ) from None
        except WorkerFailure as exc:
            self._terminate()
            raise StreamError(
                f"shard {shard} ({self.name}) failed:\n{exc}"
            ) from None

    def _ensure_open(self) -> None:
        if not self._channels:
            raise StreamError(
                f"worker pool of {self.name} is closed; create a new "
                "monitor (close() tears the shards down for good)"
            )

    def _send(self, shard: int, command: str, payload=None) -> None:
        try:
            self._channels[shard].request(command, payload)
        except ChannelClosed as exc:
            self._terminate()
            raise StreamError(
                f"shard {shard} ({self.name}) died mid-request "
                f"[{exc}]"
            ) from None

    def _call(self, shard: int, command: str, payload=None):
        self._ensure_open()
        self._require_no_pending(command)
        self._send(shard, command, payload)
        return self._recv(shard)

    def _broadcast(self, command: str, payload=None) -> List:
        self._ensure_open()
        self._require_no_pending(command)
        for shard in range(self.shards):
            self._send(shard, command, payload)
        return self._recv_all()

    def _recv_all(self) -> List:
        """Collect one reply per shard, in **completion order**.

        ``send-all/recv-all`` in shard order would idle the
        coordinator on shard 0 while faster shards sit with finished
        replies; waiting on whichever channel is readable
        (:func:`~repro.transport.base.wait_ready` — pipes and sockets
        in one wait set) lets the coordinator decode (and later merge)
        each reply while the stragglers still compute. Replies are
        returned indexed by shard, so callers stay
        order-deterministic.
        """
        pending: Dict[ShardChannel, int] = {
            self._channels[shard]: shard for shard in range(self.shards)
        }
        replies: List = [None] * self.shards
        deadline = time.monotonic() + self._timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                ready: List[ShardChannel] = []
            else:
                ready = wait_ready(list(pending), remaining)
            if not ready:
                stuck = sorted(pending.values())
                self._terminate()
                raise StreamError(
                    f"shards {stuck} ({self.name}) did not reply within "
                    f"{self._timeout:.0f}s; worker pool terminated"
                )
            for channel in ready:
                shard = pending.pop(channel)
                try:
                    replies[shard] = channel.response(
                        max(0.001, deadline - time.monotonic())
                    )
                except ChannelTimeout:
                    self._terminate()
                    raise StreamError(
                        f"shards [{shard}] ({self.name}) did not reply "
                        f"within {self._timeout:.0f}s; worker pool "
                        "terminated"
                    ) from None
                except ChannelClosed as exc:
                    self._terminate()
                    raise StreamError(
                        f"shard {shard} ({self.name}) died mid-request "
                        f"[{channel.describe()}: {exc}]"
                    ) from None
                except WorkerFailure as exc:
                    self._terminate()
                    raise StreamError(
                        f"shard {shard} ({self.name}) failed:\n{exc}"
                    ) from None
        return replies

    def _merge_counters(self, shard: int, snapshot: Dict[str, int]) -> None:
        """Fold one worker's counter snapshot into the merged totals.

        Workers report cumulative counts; the coordinator applies the
        delta since that worker's previous report, so coordinator-side
        ``counters.reset()`` (benchmark warm-up) keeps working.
        Replica-ingestion counters (:data:`_REPLICATED_COUNTERS`) are
        taken from shard 0 alone so the merged totals equal a
        single-process run's instead of N times it.
        """
        last = self._last_counters[shard]
        counters = self.counters
        for field_name, value in snapshot.items():
            if shard != 0 and field_name in _REPLICATED_COUNTERS:
                continue
            delta = value - last.get(field_name, 0)
            if delta:
                setattr(
                    counters,
                    field_name,
                    getattr(counters, field_name) + delta,
                )
        self._last_counters[shard] = snapshot

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    def register(self, query: TopKQuery) -> List[ResultEntry]:
        """Install one query on its planned shard (see
        :meth:`register_many` for burst registration)."""
        return self.register_many([query])[query.qid]

    def register_many(
        self, queries: List[TopKQuery]
    ) -> Dict[int, List[ResultEntry]]:
        """Install a burst of queries, one batched round trip per shard.

        Shard-local grouped algorithms then serve each shard's share of
        the burst through shared sweeps — and because the planner keeps
        similarity buckets whole, those groups are exactly the groups a
        single-process grouped registration would form.
        """
        self._ensure_open()
        self._require_no_pending("register_many")
        for query in queries:
            if query.dims != self.dims:
                raise DimensionalityError(
                    f"query function has {query.dims} dims, "
                    f"algorithm has {self.dims}"
                )
        per_shard: Dict[int, List[TopKQuery]] = {}
        for query in queries:
            per_shard.setdefault(self.planner.assign(query), []).append(
                query
            )
        for shard, batch_ in per_shard.items():
            self._send(shard, "register_many", batch_)
        results: Dict[int, List[ResultEntry]] = {}
        for shard, batch_ in per_shard.items():
            entries_by_qid, counters = self._recv(shard)
            self._merge_counters(shard, counters)
            results.update(entries_by_qid)
        for query in queries:
            self._queries[query.qid] = query
            self._results[query.qid] = list(results[query.qid])
        return results

    def unregister(self, qid: int) -> None:
        """Terminate a query on its owning shard and release the slot."""
        query = self._queries.get(qid)
        if query is None:
            raise self._unknown_query(qid)
        shard = self.planner.release(qid)
        _, counters = self._call(shard, "unregister", qid)
        self._merge_counters(shard, counters)
        del self._queries[qid]
        del self._results[qid]

    def update_query(
        self,
        qid: int,
        k: Optional[int] = None,
        function=None,
    ) -> List[ResultEntry]:
        """In-flight mutation as one round trip to the owning shard.

        The worker's algorithm applies its own in-place path (TMA
        trims, SMA/TSL recompute from local window state) and replies
        with the new result; the coordinator mirrors the spec change
        on its copy and re-buckets the planner accounting
        (:meth:`~repro.parallel.sharding.ShardPlanner.rekey`) so
        similarity bookkeeping follows the new preference vector.
        """
        query = self._queries.get(qid)
        if query is None:
            raise self._unknown_query(qid)
        shard = self.planner.shard_of(qid)
        entries, counters = self._call(shard, "update", (qid, k, function))
        self._merge_counters(shard, counters)
        if k is not None:
            query.k = k
        if function is not None:
            query.function = function
        self.planner.rekey(qid, query)
        self._results[qid] = list(entries)
        return list(entries)

    def current_result(self, qid: int) -> List[ResultEntry]:
        """Current top-k of a query (coordinator-side cache, refreshed
        from each cycle's merged change reports)."""
        entries = self._results.get(qid)
        if entries is None:
            raise self._unknown_query(qid)
        return list(entries)

    def queries(self) -> Iterable[TopKQuery]:
        """The registered query specs (coordinator copies)."""
        return list(self._queries.values())

    # ------------------------------------------------------------------
    # Cycle processing
    # ------------------------------------------------------------------

    def process_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> Dict[int, ResultChange]:
        """Broadcast one cycle to every shard and merge the reports.

        Workers diff their own queries' results (the usual lazy
        snapshot machinery runs shard-locally), so the merged report is
        the disjoint union of per-shard change dicts — identical to the
        single-process report. ``arrivals``/``expirations`` (and the
        other replica-ingestion counters) come from shard 0's delta.

        This is the strict (non-pipelined) path: encode, send, wait,
        merge. :meth:`prepare_cycle` / :meth:`begin_cycle` /
        :meth:`finish_cycle` expose the same work as three phases so
        :meth:`~repro.core.engine.StreamMonitor.process_many` can
        overlap the next cycle's snapshot encode with these shards
        still computing the current one.
        """
        self.begin_cycle(self.prepare_cycle(arrivals, expirations))
        return self.finish_cycle()

    # ------------------------------------------------------------------
    # Pipelined broadcast (see StreamMonitor.process_many)
    # ------------------------------------------------------------------

    #: the engine's process_many switches to the begin/finish split
    #: when the algorithm advertises this.
    supports_pipelining = True

    def prepare_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> PreparedCycle:
        """Encode one cycle's broadcast without sending it.

        Pure coordinator-side CPU (per-transport snapshot encode:
        NumPy pack + shared-memory fill for pipes, JSON columnar
        deltas for TCP) — the portion of a cycle that pipelining hides
        under the shards' in-flight work. The returned token is
        consumed by exactly one :meth:`begin_cycle`. Approximate pools
        additionally derive the cycle's canonical sketch delta here,
        once, and ship it inside every transport's payload.
        """
        self._ensure_open()
        with self.tracer.span("encode"):
            return encode_prepared_cycle(
                self._channels,
                arrivals,
                expirations,
                self._sketch_delta(arrivals, expirations),
            )

    def _sketch_delta(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ):
        """The cycle's canonical columnar sketch delta (None for exact
        pools). Derived coordinator-side with the same cell mapping
        the workers' grids resolve, so staged columns equal what each
        worker would derive locally — computed once instead of N times.
        """
        if not self.supports_accuracy:
            return None
        if self._sketch_mapper is None:
            from repro.approx.sketch import CellMapper

            cells = self._cells_per_axis
            if cells is None:
                from repro.bench.workloads import default_cells_per_axis

                cells = default_cells_per_axis(self.dims)
            self._sketch_mapper = CellMapper(self.dims, cells)
        from repro.approx.sketch import cycle_delta

        return cycle_delta(self._sketch_mapper, arrivals, expirations)

    def begin_cycle(self, prepared: PreparedCycle) -> None:
        """Send a prepared snapshot to every shard and return without
        waiting. Exactly one cycle may be in flight; interleaving
        registration/mutation RPCs with an in-flight cycle would
        reorder work between shards, so those raise until
        :meth:`finish_cycle` collects the replies."""
        self._ensure_open()
        if self._pending is not None:
            raise StreamError(
                f"{self.name} already has a cycle in flight; call "
                "finish_cycle() before beginning the next"
            )
        baseline = self._wire_totals()
        try:
            for channel in self._channels:
                channel.send_cycle(prepared.payload_for(channel.kind))
        except ChannelClosed as exc:
            prepared.close()
            self._terminate()
            raise StreamError(
                f"shard channel died mid-broadcast on {self.name} "
                f"[{exc}]"
            ) from None
        except BaseException:
            prepared.close()
            raise
        self._pending = (prepared, baseline)

    def finish_cycle(self) -> Dict[int, ResultChange]:
        """Wait for the in-flight cycle's replies (completion order)
        and merge them into one change report."""
        if self._pending is None:
            raise StreamError(f"{self.name} has no cycle in flight")
        (prepared, baseline), self._pending = self._pending, None
        try:
            with self.tracer.span("shard_rpc"):
                replies = self._recv_all()
        finally:
            # Workers copy out of the shared segment before replying,
            # so the segment is release-safe once every reply (or the
            # terminating error) is in.
            prepared.close()
        self._record_cycle(prepared, baseline)
        changes: Dict[int, ResultChange] = {}
        for shard, reply in enumerate(replies):
            # Cycle replies grew a third element (the worker's
            # per-cycle metrics delta) in protocol revision 3; accept
            # bare 2-tuples so a newer coordinator can still merge a
            # revision-2 host's replies.
            shard_changes, counters = reply[0], reply[1]
            metrics_delta = reply[2] if len(reply) > 2 else None
            self._merge_counters(shard, counters)
            if metrics_delta and self.metrics is not None:
                # Worker registries hold phase histograms and gauges
                # only (OpCounters merge via _merge_counters above);
                # histograms sum to pool-wide work, gauges are
                # last-writer-wins in shard order.
                self.metrics.merge(metrics_delta)
            for qid, change in shard_changes.items():
                changes[qid] = change
                self._results[qid] = list(change.top)
        return changes

    def _require_no_pending(self, operation: str) -> None:
        if self._pending is not None:
            raise StreamError(
                f"{operation} while a pipelined cycle is in flight on "
                f"{self.name}; finish_cycle() first"
            )

    def _apply_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:  # pragma: no cover - process_cycle is overridden
        raise NotImplementedError("sharded cycles run in workers")

    # ------------------------------------------------------------------
    # Transport accounting
    # ------------------------------------------------------------------

    def _wire_totals(self) -> Dict[str, int]:
        sent = 0
        received = 0
        for channel in self._channels:
            sent += channel.bytes_sent
            received += channel.bytes_received
        return {"sent": sent, "received": received}

    def _record_cycle(
        self, prepared: PreparedCycle, baseline: Dict[str, int]
    ) -> None:
        totals = self._wire_totals()
        sample = {
            "wire_sent_bytes": totals["sent"] - baseline["sent"],
            "wire_received_bytes": totals["received"]
            - baseline["received"],
            "shared_bytes": prepared.shared_bytes,
        }
        sample["wire_bytes"] = (
            sample["wire_sent_bytes"] + sample["wire_received_bytes"]
        )
        self._cycle_log.append(sample)
        self._cycles_recorded += 1
        self._cycle_wire_total += sample["wire_bytes"]
        self._cycle_shared_total += sample["shared_bytes"]
        if self.metrics is not None:
            publish_channel_metrics(self.metrics, self._channels)
            self.metrics.gauge(
                "repro_transport_cycle_shared_bytes",
                "bytes the last cycle placed in shared memory",
            ).set(float(sample["shared_bytes"]))

    def transport_stats(self) -> Dict:
        """Bytes-on-the-wire accounting, merged across the pool.

        Cumulative totals cover every RPC; the per-cycle figures cover
        cycle broadcasts plus their replies (``shared_bytes`` counts
        attribute blocks that rode shared memory instead of a pipe —
        always 0 for TCP shards). ``recent_cycles`` holds the last
        :data:`_CYCLE_LOG_LIMIT` per-cycle samples, oldest first. The
        returned structure is JSON-serialisable (bench and the engine
        facade embed it verbatim).
        """
        totals = self._wire_totals()
        last = self._cycle_log[-1] if self._cycle_log else None
        return {
            "transport": self.transport,
            "shards": self.shards,
            "endpoints": [
                channel.describe() for channel in self._channels
            ],
            "bytes_sent": totals["sent"],
            "bytes_received": totals["received"],
            "cycles": self._cycles_recorded,
            "cycle_wire_bytes_total": self._cycle_wire_total,
            "cycle_shared_bytes_total": self._cycle_shared_total,
            "last_cycle": dict(last) if last else None,
            "recent_cycles": [dict(sample) for sample in self._cycle_log],
        }

    # ------------------------------------------------------------------
    # Introspection (merged across shards)
    # ------------------------------------------------------------------

    def result_state_sizes(self) -> Dict[int, int]:
        """Per-query result-state entries, merged across shards."""
        sizes: Dict[int, int] = {}
        for shard, ((shard_sizes, _), counters) in enumerate(
            self._broadcast("stats")
        ):
            self._merge_counters(shard, counters)
            sizes.update(shard_sizes)
        return sizes

    def influence_list_entries(self) -> int:
        """Total influence-list entries across all shard grids.

        Each query's entries live only on its owning shard, so the sum
        equals a single-process run's total.
        """
        total = 0
        for shard, ((_, entries), counters) in enumerate(
            self._broadcast("stats")
        ):
            self._merge_counters(shard, counters)
            total += entries
        return total

    def ping(self) -> bool:
        """Round-trip every worker (health check / pipeline barrier).

        Workers answer strictly in channel order, so a successful ping
        proves every previously submitted cycle has been processed.
        """
        return all(
            reply == "pong" for reply in self._broadcast("ping")
        )

    def shard_spaces(self) -> List:
        """Per-shard :class:`~repro.analysis.memory.SpaceBreakdown`s.

        Stream state is replicated, so record/point-list bytes appear
        once *per shard* — the true footprint of a sharded deployment
        (the approximate tier's sketch included, one copy per shard).
        """
        return self._broadcast("space")

    def bind_window(self, capacity: int) -> None:
        """Broadcast the count-based window capacity to every shard.

        The approximate tier's sketch must learn the capacity before
        any data arrives (:meth:`repro.approx.sketch.CellSketch.\
        bind_window`); the engine calls this right after construction.
        Exact pools skip the round trips — nothing consumes it there.
        """
        if not self.supports_accuracy:
            return
        self._broadcast("configure", {"window_capacity": int(capacity)})

    def sketch_state(self):
        """Shard 0's canonical sketch snapshot (every shard applies
        the same staged deltas, so all copies are identical — pinned
        by the sharded sketch-parity suite via
        :meth:`shard_sketch_states`). None for exact pools."""
        states = self.shard_sketch_states()
        return states[0] if states else None

    def shard_sketch_states(self) -> List:
        """Every shard's sketch snapshot, indexed by shard (None
        entries for sketch-less algorithms)."""
        return self._broadcast("sketch")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the shard pool down gracefully (terminate stragglers).

        Idempotent, for pipes and remote hosts alike: a second call
        finds no channels and returns.
        """
        if self._pending is not None and self._channels:
            # Drain the in-flight cycle so workers reach their recv
            # loop (and the shared segment is released) before stop.
            try:
                self.finish_cycle()
            except StreamError:
                pass
        for channel in self._channels:
            channel.begin_shutdown()
        for channel in self._channels:
            try:
                channel.finish_shutdown(timeout=5)
            except ChannelError:  # pragma: no cover - defensive
                channel.terminate()
        self._channels = []
        self._drop_pending()

    def _drop_pending(self) -> None:
        if self._pending is not None:
            prepared, _ = self._pending
            prepared.close()
            self._pending = None

    def _terminate(self) -> None:
        self._drop_pending()
        for channel in self._channels:
            channel.terminate()
        self._channels = []

    def __enter__(self) -> "ShardedMonitorAlgorithm":
        """Context-manager entry: returns the algorithm itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: closes the worker pool."""
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self._terminate()
        except Exception:
            pass
