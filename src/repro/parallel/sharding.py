"""Query→shard assignment for the sharded maintenance engine.

The paper's cost model (Section 6) is per-query and additive, so
TMA/SMA maintenance partitions cleanly by query: each shard replicates
the grid (stream state) and owns a disjoint subset of the queries.
What is *not* arbitrary is which queries should live together — the
grouped traversal (PR 2) shares one grid sweep across similar queries,
and a group split across shards loses that sharing. The planner
therefore uses the same angular buckets as
:class:`~repro.core.queries.QueryGroupRegistry`:

- a **groupable** query (plain linear top-k) is routed by its bucket
  key: the first query of a bucket picks the least-loaded shard, and
  later members follow it ("bucket stickiness"), so a shard's grouped
  sweeps stay local;
- a bucket is pinned in **chunks of ``chunk`` queries** (default 64 —
  the grouped traversal's ``max_group_size``, which already caps any
  single shared sweep at that size, so chunking costs *zero* grouping
  benefit): every ``chunk`` members, the next member re-pins to the
  then-least-loaded shard. Without this, a high-similarity workload —
  the one grouping targets — would collapse onto one shard;
- constrained / non-linear queries have no bucket and are dealt
  round-robin, which keeps load even without any content to key on.

A bucket's shard pin is dropped once its last member terminates, so a
long-running monitor with query churn keeps rebalancing toward even
load instead of fossilising early placement decisions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import QueryError
from repro.core.queries import GroupKey, QueryGroupRegistry


class ShardPlanner:
    """Assigns queries to ``shards`` workers, bucket-sticky + balanced.

    Pure bookkeeping — no processes here. The sharded algorithm asks
    :meth:`assign` at registration and :meth:`release` at termination;
    everything else is introspection for tests and reporting.
    """

    __slots__ = ("shards", "chunk", "registry", "_shard_of", "_loads",
                 "_bucket_shard", "_bucket_open", "_bucket_sizes",
                 "_round_robin", "_keys")

    def __init__(
        self, shards: int, resolution: int = 4, chunk: int = 64
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.shards = shards
        self.chunk = chunk
        #: used only for key_of — membership stays with the planner.
        self.registry = QueryGroupRegistry(resolution=resolution)
        self._shard_of: Dict[int, int] = {}
        self._loads: List[int] = [0] * shards
        self._bucket_shard: Dict[GroupKey, int] = {}
        #: members assigned into the bucket's currently open chunk.
        self._bucket_open: Dict[GroupKey, int] = {}
        self._bucket_sizes: Dict[GroupKey, int] = {}
        self._round_robin = 0
        #: per-qid *accounting* key — the bucket whose size this query
        #: is counted in (None for ungroupable / untracked queries).
        #: Recorded at assign time so release/rekey never depend on
        #: the caller still holding the original spec.
        self._keys: Dict[int, Optional[GroupKey]] = {}

    def __len__(self) -> int:
        return len(self._shard_of)

    def assign(self, query) -> int:
        """Pick (and record) the shard that will own ``query``."""
        if query.qid in self._shard_of:
            raise QueryError(
                f"query {query.qid} already assigned to shard "
                f"{self._shard_of[query.qid]}"
            )
        key = self.registry.key_of(query)
        if key is None:
            # Ungroupable: round-robin keeps load even with no
            # similarity signal to exploit.
            shard = self._round_robin % self.shards
            self._round_robin += 1
        elif (
            key in self._bucket_shard
            and self._bucket_open[key] < self.chunk
        ):
            shard = self._bucket_shard[key]
            self._bucket_open[key] += 1
            self._bucket_sizes[key] += 1
        else:
            # First member, or the open chunk is full: (re-)pin the
            # bucket's next chunk to the currently emptiest shard.
            shard = self._least_loaded()
            self._bucket_shard[key] = shard
            self._bucket_open[key] = 1
            self._bucket_sizes[key] = self._bucket_sizes.get(key, 0) + 1
        self._shard_of[query.qid] = shard
        self._loads[shard] += 1
        self._keys[query.qid] = key
        return shard

    def release(self, qid: int, key: Optional[GroupKey] = None) -> int:
        """Forget a terminated query; return the shard it lived on.

        The planner records each query's bucket key at assign time, so
        ``key`` is accepted only for backwards compatibility and
        ignored. When a bucket's last member leaves, its shard pin is
        dropped so a future same-bucket query lands on whatever shard
        is then emptiest.
        """
        shard = self._shard_of.pop(qid, None)
        if shard is None:
            raise QueryError(f"query {qid} is not assigned to any shard")
        self._loads[shard] -= 1
        self._release_bucket(self._keys.pop(qid, None))
        return shard

    def rekey(self, qid: int, query) -> int:
        """Re-bucket a mutated query *without* moving it off its shard.

        An in-flight :meth:`~repro.core.handles.QueryHandle.update`
        can change a query's preference vector — and with it the
        similarity bucket the planner counted it in. The query's state
        lives on a worker, so it must stay put; only the bucket
        accounting moves: the old bucket sheds a member (dropping its
        pin when drained), and the new bucket adopts the query if it
        is unpinned (pinning it to this query's shard) or already
        pinned there. A new bucket pinned *elsewhere* leaves the query
        untracked — colocating it would require worker-to-worker state
        transfer (the ROADMAP's load-aware rebalancing follow-up).
        Returns the (unchanged) owning shard.
        """
        shard = self.shard_of(qid)
        old = self._keys.get(qid)
        new = self.registry.key_of(query)
        if new == old:
            return shard
        self._release_bucket(old)
        counted: Optional[GroupKey] = None
        if new is not None:
            pinned = self._bucket_shard.get(new)
            if pinned is None:
                self._bucket_shard[new] = shard
                self._bucket_open[new] = 1
                self._bucket_sizes[new] = 1
                counted = new
            elif pinned == shard:
                self._bucket_open[new] += 1
                self._bucket_sizes[new] += 1
                counted = new
        self._keys[qid] = counted
        return shard

    def _release_bucket(self, key: Optional[GroupKey]) -> None:
        if key is None or key not in self._bucket_sizes:
            return
        self._bucket_sizes[key] -= 1
        if self._bucket_sizes[key] <= 0:
            del self._bucket_sizes[key]
            del self._bucket_shard[key]
            del self._bucket_open[key]

    def shard_of(self, qid: int) -> int:
        """Owning shard of a registered query."""
        try:
            return self._shard_of[qid]
        except KeyError:
            raise QueryError(
                f"query {qid} is not assigned to any shard"
            ) from None

    def loads(self) -> List[int]:
        """Current query count per shard (index = shard id)."""
        return list(self._loads)

    def _least_loaded(self) -> int:
        best = 0
        for shard in range(1, self.shards):
            if self._loads[shard] < self._loads[best]:
                best = shard
        return best
