"""Shard worker: one algorithm instance behind one server channel.

A worker owns a full replica of the *stream* state (its own grid /
sorted lists, fed the same arrivals and expirations as every other
shard) and a disjoint subset of the *query* state. It answers a tiny
request/response protocol over a shard channel; every data-bearing
reply carries a fresh :class:`~repro.core.stats.OpCounters` snapshot
so the coordinator can merge machine-independent work counts
additively.

Protocol (``(command, payload)`` in, ``(status, payload)`` out)::

    register_many [TopKQuery]   -> ok ({qid: [ResultEntry]}, counters)
    unregister    qid           -> ok (None, counters)
    update        (qid, k, fn)  -> ok ([ResultEntry], counters)
    cycle         snapshot      -> ok ({qid: ResultChange}, counters,
                                       metrics_delta_or_None)
    stats         None          -> ok ((state_sizes, il_entries), counters)
    space         None          -> ok SpaceBreakdown
    sketch        None          -> ok sketch state (None if sketch-less)
    configure     {key: value}  -> ok {key: value} (window binding etc.)
    ping          None          -> ok "pong"
    stop          None          -> ok None, then the loop exits

A cycle snapshot may carry a trailing columnar sketch delta (the
approximate tier); the worker stages it so its sketch applies the
coordinator's columns verbatim instead of re-deriving them.

``ping`` is a pure round trip: because a worker serves requests
strictly in channel order, a ``pong`` proves every previously sent
cycle has been fully processed — the barrier the pipelined-broadcast
tests and the serving runtime's health checks rely on.

The serve loop (:func:`serve_shard`) is transport-agnostic: the same
loop runs behind a pipe (:func:`worker_main`, the spawned-process
entry point) and behind a TCP session (:mod:`repro.cluster.shard`, the
remote host). Any exception is caught and returned as
``("error", traceback)`` — the coordinator re-raises; a worker only
dies on channel EOF or ``stop``.
"""

from __future__ import annotations

import traceback

from repro.transport.base import ChannelClosed
from repro.transport.pipe import PipeServerChannel
from repro.transport.snapshot import decode_cycle, sketch_delta_of


def worker_main(
    conn,
    algorithm: str,
    dims: int,
    cells_per_axis,
    options: dict,
) -> None:
    """Entry point of a shard worker process (blocks until ``stop``)."""
    from repro.algorithms import make_algorithm

    options = dict(options)
    obs = options.pop("_obs", None)
    algo = make_algorithm(algorithm, dims, cells_per_axis, **options)
    bind_worker_observability(algo, obs)
    channel = PipeServerChannel(conn)
    try:
        serve_shard(channel, algo)
    finally:
        channel.close()


def bind_worker_observability(algo, obs) -> None:
    """Give a shard worker its own registry (plus a tracer when the
    coordinator asked for tracing via the reserved ``_obs`` option).

    Workers always hold a worker-local
    :class:`~repro.obs.metrics.MetricsRegistry` so gauges published by
    the algorithm (the approximate tier's sketch-accuracy gauges,
    chiefly) reach the coordinator even with tracing off; phase
    histograms appear only when tracing is on. Every cycle reply ships
    the registry's delta since the previous cycle
    (:func:`cycle_metrics_delta`), which the coordinator ``merge()``s.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import NULL_TRACER, CycleTracer

    bind = getattr(algo, "bind_observability", None)
    if bind is None:
        return
    registry = MetricsRegistry()
    tracer = (
        CycleTracer(registry=registry)
        if obs and obs.get("trace")
        else NULL_TRACER
    )
    bind(registry, tracer)


def cycle_metrics_delta(algo):
    """The worker registry's delta since the previous cycle reply
    (None when the worker has no registry or nothing changed)."""
    registry = getattr(algo, "metrics", None)
    if registry is None:
        return None
    current = registry.snapshot()
    previous = getattr(algo, "_obs_prev_snapshot", None)
    algo._obs_prev_snapshot = current
    delta = (
        current if previous is None else registry.delta(current, previous)
    )
    if not any(delta.values()):
        return None
    return delta


def serve_shard(channel, algo) -> None:
    """Serve shard requests off ``channel`` until ``stop`` or EOF.

    ``channel`` is any server-side half of a shard channel
    (:class:`~repro.transport.pipe.PipeServerChannel` in a worker
    process, :class:`~repro.transport.tcp.TcpServerChannel` in a
    remote host session) — the loop itself never sees the transport.
    """
    while True:
        try:
            command, payload = channel.receive()
        except ChannelClosed:
            break
        try:
            if command == "stop":
                channel.reply_ok(None)
                break
            channel.reply_ok(dispatch_command(algo, command, payload))
        except ChannelClosed:  # pragma: no cover - reply raced a close
            break
        except Exception:
            try:
                channel.reply_error(traceback.format_exc())
            except ChannelClosed:  # pragma: no cover
                break


def dispatch_command(algo, command: str, payload):
    """Execute one shard command against the local algorithm."""
    if command == "cycle":
        arrivals, expirations = decode_cycle(payload)
        delta = sketch_delta_of(payload)
        if delta is not None:
            stage = getattr(algo, "stage_sketch_delta", None)
            if stage is not None:
                # Apply the coordinator-derived sketch columns instead
                # of re-deriving them, so every shard's sketch state is
                # byte-identical to the coordinator's by construction.
                stage(delta)
        tracer = getattr(algo, "tracer", None)
        if tracer is not None:
            tracer.begin_cycle(
                arrivals=len(arrivals), expirations=len(expirations)
            )
        changes = algo.process_cycle(arrivals, expirations)
        if tracer is not None:
            tracer.end_cycle(changes=len(changes))
        return changes, algo.counters.as_dict(), cycle_metrics_delta(algo)
    if command == "register_many":
        results = algo.register_many(payload)
        return results, algo.counters.as_dict()
    if command == "unregister":
        algo.unregister(payload)
        return None, algo.counters.as_dict()
    if command == "update":
        qid, k, function = payload
        entries = algo.update_query(qid, k=k, function=function)
        return entries, algo.counters.as_dict()
    if command == "stats":
        entries = getattr(algo, "influence_list_entries", None)
        return (
            algo.result_state_sizes(),
            entries() if entries is not None else 0,
        ), algo.counters.as_dict()
    if command == "space":
        from repro.analysis.memory import estimate_space

        return estimate_space(algo)
    if command == "sketch":
        state = getattr(algo, "sketch_state", None)
        return state() if state is not None else None
    if command == "configure":
        # Mid-session (re)configuration: currently only the window
        # capacity broadcast the approximate tier's sketch needs
        # before any data arrives. Algorithms without a sketch simply
        # acknowledge.
        capacity = (payload or {}).get("window_capacity")
        bind = getattr(algo, "bind_window", None)
        if capacity is not None and bind is not None:
            bind(int(capacity))
            return {"window_capacity": int(capacity)}
        return {"window_capacity": None}
    if command == "ping":
        return "pong"
    raise ValueError(f"unknown shard command {command!r}")


#: backwards-compatible alias (pre-channel name).
_dispatch = dispatch_command
