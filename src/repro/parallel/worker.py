"""Shard worker: one process, one algorithm instance, one pipe.

A worker owns a full replica of the *stream* state (its own grid /
sorted lists, fed the same arrivals and expirations as every other
shard) and a disjoint subset of the *query* state. It answers a tiny
request/response protocol over a duplex pipe; every data-bearing reply
carries a fresh :class:`~repro.core.stats.OpCounters` snapshot so the
coordinator can merge machine-independent work counts additively.

Protocol (``(command, payload)`` in, ``(status, payload)`` out)::

    register_many [TopKQuery]   -> ok ({qid: [ResultEntry]}, counters)
    unregister    qid           -> ok (None, counters)
    update        (qid, k, fn)  -> ok ([ResultEntry], counters)
    cycle         snapshot      -> ok ({qid: ResultChange}, counters)
    stats         None          -> ok ((state_sizes, il_entries), counters)
    space         None          -> ok SpaceBreakdown
    ping          None          -> ok "pong"
    stop          None          -> ok None, then the loop exits

``ping`` is a pure round trip: because a worker serves requests
strictly in pipe order, a ``pong`` proves every previously sent cycle
has been fully processed — the barrier the pipelined-broadcast tests
and the serving runtime's health checks rely on.

Any exception is caught and returned as ``("error", traceback)`` — the
coordinator re-raises; a worker only dies on pipe EOF or ``stop``.
"""

from __future__ import annotations

import traceback

from repro.parallel.snapshot import decode_cycle


def worker_main(
    conn,
    algorithm: str,
    dims: int,
    cells_per_axis,
    options: dict,
) -> None:
    """Entry point of a shard worker process (blocks until ``stop``)."""
    from repro.algorithms import make_algorithm

    algo = make_algorithm(algorithm, dims, cells_per_axis, **options)
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if command == "stop":
                conn.send(("ok", None))
                break
            conn.send(("ok", _dispatch(algo, command, payload)))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):  # pragma: no cover
                break
    conn.close()


def _dispatch(algo, command: str, payload):
    if command == "cycle":
        arrivals, expirations = decode_cycle(payload)
        changes = algo.process_cycle(arrivals, expirations)
        return changes, algo.counters.as_dict()
    if command == "register_many":
        results = algo.register_many(payload)
        return results, algo.counters.as_dict()
    if command == "unregister":
        algo.unregister(payload)
        return None, algo.counters.as_dict()
    if command == "update":
        qid, k, function = payload
        entries = algo.update_query(qid, k=k, function=function)
        return entries, algo.counters.as_dict()
    if command == "stats":
        entries = getattr(algo, "influence_list_entries", None)
        return (
            algo.result_state_sizes(),
            entries() if entries is not None else 0,
        ), algo.counters.as_dict()
    if command == "space":
        from repro.analysis.memory import estimate_space

        return estimate_space(algo)
    if command == "ping":
        return "pong"
    raise ValueError(f"unknown shard command {command!r}")
