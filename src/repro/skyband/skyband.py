"""The score–time k-skyband with dominance counters (Section 5).

Per query, SMA maintains the set of valid records (within the query's
influence region) that are dominated by fewer than k others in the
score–time plane. Because arrival order equals expiration order
(footnote 4), record ids serve as expiration timestamps, and a record
``a`` dominates ``b`` exactly when ``key(a) > key(b)`` under the
canonical rank key ``(score, rid)``: ``a`` scores at least as high
*and* expires later.

Each entry carries a *dominance counter* DC — "the number of records
with higher score that arrive after p". New arrivals enter with DC=0
(nothing newer exists), increment the DC of every lower-keyed entry,
and entries whose DC reaches k can never re-enter any top-k result and
are evicted (Figure 10's worked example is test-replayed in
``tests/skyband/test_skyband.py``).

Entries are stored in a plain list in ascending key order: the current
top-k is the last k entries, an insertion is a bisect plus one pass
over the dominated prefix (the paper's O(k) per update), and an expiry
is a bisect plus one ``del``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Sequence

from repro.core.results import ResultEntry
from repro.core.stats import OpCounters
from repro.core.tuples import RankKey, StreamRecord


class SkybandEntry:
    """One skyband member: canonical key, record, dominance counter."""

    __slots__ = ("key", "record", "dc")

    def __init__(self, key: RankKey, record: StreamRecord, dc: int = 0) -> None:
        self.key = key
        self.record = record
        self.dc = dc

    def __repr__(self) -> str:
        return f"SkybandEntry(rid={self.record.rid}, score={self.key[0]:g}, dc={self.dc})"


class ScoreTimeSkyband:
    """Dominance-counter k-skyband over (score, expiry-order) pairs."""

    __slots__ = ("k", "_entries", "_keys", "_by_rid", "_top_cache")

    def __init__(self, k: int) -> None:
        self.k = k
        self._entries: List[SkybandEntry] = []  # ascending by key
        self._keys: List[RankKey] = []
        self._by_rid: Dict[int, RankKey] = {}
        #: memoised top() materialisation; None after any mutation.
        #: The change-report machinery reads the result both before
        #: and after each cycle's mutations, so an unchanged skyband
        #: re-serves its entry list without rebuilding k objects.
        self._top_cache: Optional[List[ResultEntry]] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rid: int) -> bool:
        return rid in self._by_rid

    def entries(self) -> Sequence[SkybandEntry]:
        """All entries, ascending key order (worst first)."""
        return tuple(self._entries)

    def top(self) -> List[ResultEntry]:
        """The current top-k: best-first list of the k highest keys."""
        if self._top_cache is None:
            best = self._entries[-self.k :] if self.k else []
            self._top_cache = [
                ResultEntry(entry.key[0], entry.record)
                for entry in reversed(best)
            ]
        return list(self._top_cache)

    def kth_key(self) -> RankKey:
        """Key of the kth-best entry (gate), or -inf when under-full."""
        if len(self._entries) < self.k:
            return (float("-inf"), -1)
        return self._entries[-self.k].key

    def insert(
        self,
        score: float,
        record: StreamRecord,
        counters: Optional[OpCounters] = None,
    ) -> List[StreamRecord]:
        """Admit a new arrival; return the records evicted by it.

        The new record has the largest rid seen so far, so it arrives
        with DC=0 and dominates (increments) every entry with a lower
        key — Figure 11, lines 8–11.
        """
        key: RankKey = (score, record.rid)
        self._top_cache = None
        position = bisect_left(self._keys, key)
        evicted: List[StreamRecord] = []
        if position:
            kept_entries: List[SkybandEntry] = []
            kept_keys: List[RankKey] = []
            for entry in self._entries[:position]:
                entry.dc += 1
                if counters is not None:
                    counters.dominance_updates += 1
                if entry.dc >= self.k:
                    evicted.append(entry.record)
                    del self._by_rid[entry.record.rid]
                else:
                    kept_entries.append(entry)
                    kept_keys.append(entry.key)
            if evicted:
                self._entries[:position] = kept_entries
                self._keys[:position] = kept_keys
                position = len(kept_entries)
        self._entries.insert(position, SkybandEntry(key, record))
        self._keys.insert(position, key)
        self._by_rid[record.rid] = key
        if counters is not None:
            counters.skyband_insertions += 1
            counters.skyband_evictions += len(evicted)
        return evicted

    def remove_by_rid(self, rid: int) -> bool:
        """Drop the entry of an expired record; no DC changes needed.

        The paper proves (footnote 5) the earliest-arrival skyband
        member is always in the current top-k and dominates nothing,
        so removal never touches other counters.
        """
        key = self._by_rid.pop(rid, None)
        if key is None:
            return False
        self._top_cache = None
        position = bisect_left(self._keys, key)
        # Keys are unique (rid component); position is exact.
        del self._entries[position]
        del self._keys[position]
        return True

    def rebuild(
        self,
        best_first: Sequence[ResultEntry],
        counters: Optional[OpCounters] = None,
    ) -> None:
        """Reset to a freshly computed top-k set and derive its DCs.

        Section 5: scan in descending score order keeping an ordered
        set BT of arrival times; each entry's DC is the number of
        already-scanned entries that arrived later — O(k log k) total.
        The ordered set is a bisect-maintained list rather than the
        balanced tree the paper suggests: k is small (≤ a few hundred)
        and a C-level bisect + memmove beats an interpreted tree by an
        order of magnitude at that size (same trade the TMA top lists
        make); ``repro.analysis.cost_model`` keeps the O(log k) terms.
        """
        self._entries.clear()
        self._keys.clear()
        self._by_rid.clear()
        self._top_cache = None
        seen_rids: List[int] = []
        rebuilt: List[SkybandEntry] = []
        for result in best_first:  # descending key order
            dc = len(seen_rids) - bisect_right(seen_rids, result.record.rid)
            insort(seen_rids, result.record.rid)
            if counters is not None:
                counters.dominance_updates += 1
            rebuilt.append(
                SkybandEntry((result.score, result.record.rid), result.record, dc)
            )
        for entry in reversed(rebuilt):  # back to ascending key order
            self._entries.append(entry)
            self._keys.append(entry.key)
            self._by_rid[entry.record.rid] = entry.key

    def validate(self) -> None:
        """Internal-consistency check used by property tests."""
        assert self._keys == sorted(self._keys), "keys out of order"
        assert len(self._keys) == len(self._entries) == len(self._by_rid)
        for entry in self._entries:
            assert entry.dc < self.k, f"{entry!r} should have been evicted"
            assert self._by_rid[entry.record.rid] == entry.key
