"""Future-result prediction from the score–time skyband (Section 3.1).

The paper's Figure 2 observation: given the current window contents
and *no further arrivals*, the complete future evolution of a top-k
result is determined — and the records that will ever appear in it are
exactly the k-skyband in score–time space. This module turns that
observation into an API: :func:`predict_future_results` returns the
full timeline of result changes a query will go through as the window
drains, computed in O(n log n + n·k) from the skyband rather than by
replaying every expiration against the whole window.

Useful in its own right (e.g. "will this record ever be reported?",
"when does the current leader fall out?") and used by the tests as an
executable statement of the paper's reduction theorem.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.queries import TopKQuery
from repro.core.results import ResultEntry
from repro.core.tuples import RankKey, StreamRecord


@dataclass(frozen=True, slots=True)
class PredictedChange:
    """One step of the predicted result timeline.

    Attributes:
        expiring_rid: the record whose expiry causes this change (the
            timeline is indexed by expirations, matching count- and
            time-based windows alike since eviction is FIFO).
        top: the top-k in force *after* that expiry, best-first.
    """

    expiring_rid: int
    top: Tuple[ResultEntry, ...]


def future_skyband(
    records: Sequence[StreamRecord], query: TopKQuery
) -> List[ResultEntry]:
    """Records that will appear in some future top-k, best-first.

    This is the k-skyband of the valid records in (score, expiry-order)
    space — computed by a single backward sweep: walking records from
    newest to oldest while keeping the k best keys seen so far, a
    record is in the skyband iff fewer than k newer records outrank it.
    O(n log n) overall.
    """
    scored: List[Tuple[RankKey, StreamRecord]] = [
        ((query.score(record.attrs), record.rid), record)
        for record in records
    ]
    scored.sort(key=lambda pair: pair[0][1], reverse=True)  # newest first

    band: List[Tuple[RankKey, StreamRecord]] = []
    best_newer: List[RankKey] = []  # ascending; at most k entries
    for key, record in scored:
        dominators = len(best_newer) - _bisect_leq(best_newer, key)
        if dominators < query.k:
            band.append((key, record))
        insort(best_newer, key)
        if len(best_newer) > query.k:
            best_newer.pop(0)
    band.sort(key=lambda pair: pair[0], reverse=True)
    return [ResultEntry(key[0], record) for key, record in band]


def _bisect_leq(keys: List[RankKey], key: RankKey) -> int:
    """Index of the first element > ``key`` in an ascending list."""
    from bisect import bisect_right

    return bisect_right(keys, key)


def predict_future_results(
    records: Iterable[StreamRecord], query: TopKQuery
) -> List[PredictedChange]:
    """The full future timeline of ``query``'s top-k, one entry per
    result-changing expiration, assuming no further arrivals.

    The first element describes the current result (``expiring_rid ==
    -1``); subsequent elements give the new top-k after each expiry
    that actually changes it. Expiries of non-result records are
    omitted (they cannot affect the result — their score is below the
    kth).
    """
    band = future_skyband(list(records), query)
    # Entries ascending by rid = expiry order.
    remaining: List[ResultEntry] = sorted(
        band, key=lambda entry: entry.record.rid
    )
    # Current result = k best of the skyband.
    timeline: List[PredictedChange] = []

    def current_top() -> Tuple[ResultEntry, ...]:
        best = sorted(remaining, key=lambda e: e.key, reverse=True)
        return tuple(best[: query.k])

    timeline.append(PredictedChange(-1, current_top()))
    while remaining:
        expiring = remaining.pop(0)  # oldest skyband member
        previous = timeline[-1].top
        new_top = current_top()
        if new_top != previous:
            timeline.append(
                PredictedChange(expiring.record.rid, new_top)
            )
    return timeline


def lifetime_of(
    records: Iterable[StreamRecord], query: TopKQuery, rid: int
) -> Tuple[bool, int]:
    """Will record ``rid`` ever be reported, and from which expiry on?

    Returns:
        ``(ever_reported, first_expiring_rid)`` — the second element
        is the rid whose expiry first brings ``rid`` into the result
        (-1 if it is in the current result; undefined when the first
        element is False).
    """
    for change in predict_future_results(records, query):
        if any(entry.record.rid == rid for entry in change.top):
            return True, change.expiring_rid
    return False, -1
