"""k-skyband machinery (paper Sections 3.1 and 5).

The key insight of the paper: the records that will appear in *some*
future top-k result are exactly the k-skyband of the valid records in
the 2-dimensional score–time space, regardless of the data
dimensionality. :mod:`repro.skyband.skyband` implements the
dominance-counter skyband SMA maintains per query;
:mod:`repro.skyband.skyline` provides a general block-nested-loop
k-skyband used by tests to validate the reduction and by analysis
tooling.
"""

from repro.skyband.skyband import ScoreTimeSkyband, SkybandEntry
from repro.skyband.skyline import dominates, k_skyband, skyline

__all__ = [
    "ScoreTimeSkyband",
    "SkybandEntry",
    "dominates",
    "k_skyband",
    "skyline",
]
