"""General d-dimensional skyline and k-skyband (Section 3.1).

A block-nested-loop implementation used as an oracle: tests validate
(i) the geometric claims of Section 3.1 (skyline membership equals
"wins some top-1 query", k-skyband ⊇ any top-k result) and (ii) the
score–time reduction behind SMA, by replaying streams and checking
that every record that ever enters a top-k result belongs to the
k-skyband of (score, expiry-order) pairs.

O(n²) — fine for validation workloads, never used by the monitoring
algorithms themselves.
"""

from __future__ import annotations

from typing import List, Sequence


def dominates(
    a: Sequence[float],
    b: Sequence[float],
    directions: Sequence[int],
) -> bool:
    """Whether ``a`` dominates ``b``: no worse everywhere, better somewhere.

    ``directions[i]`` is +1 when larger values are preferable on
    dimension i and -1 when smaller values are.
    """
    strictly_better = False
    for value_a, value_b, direction in zip(a, b, directions):
        oriented_a = value_a * direction
        oriented_b = value_b * direction
        if oriented_a < oriented_b:
            return False
        if oriented_a > oriented_b:
            strictly_better = True
    return strictly_better


def dominance_count(
    point: Sequence[float],
    points: Sequence[Sequence[float]],
    directions: Sequence[int],
) -> int:
    """Number of points in ``points`` that dominate ``point``."""
    return sum(
        1 for other in points if dominates(other, point, directions)
    )


def k_skyband(
    points: Sequence[Sequence[float]],
    k: int,
    directions: Sequence[int],
) -> List[int]:
    """Indices of points dominated by at most ``k - 1`` others.

    The skyline is ``k_skyband(points, 1, ...)`` — the paper's
    "special instance of the skyband where k = 1".
    """
    members: List[int] = []
    for index, point in enumerate(points):
        count = 0
        for other_index, other in enumerate(points):
            if other_index == index:
                continue
            if dominates(other, point, directions):
                count += 1
                if count >= k:
                    break
        if count < k:
            members.append(index)
    return members


def skyline(
    points: Sequence[Sequence[float]],
    directions: Sequence[int],
) -> List[int]:
    """Indices of non-dominated points."""
    return k_skyband(points, 1, directions)
