"""Line-delimited JSON wire protocol of the serving runtime.

One message per line (``\\n``-terminated UTF-8 JSON object). Three
message shapes travel the socket:

**Requests** (client → server)::

    {"id": 7, "op": "add_query", "query": {"kind": "topk",
     "weights": [1.0, 2.0], "k": 10, "label": "leaders"}}

**Responses** (server → client; ``id`` echoes the request)::

    {"id": 7, "ok": true, "qid": 3, "result": [ENTRY, ...]}
    {"id": 7, "ok": false, "error": {"type": "QueryError",
     "message": "unknown or terminated query id 3 (...)"}}

**Events** (server → client, unsolicited; one per delivered delta)::

    {"event": "change", "sub": 2, "ts": 1721923200.125,
     "qid": 3, "cause": "cycle",
     "added": [ENTRY, ...], "removed": [ENTRY, ...],
     "top": [ENTRY, ...]}
    {"event": "closed", "sub": 2}

where ``ENTRY`` is ``{"score": float, "rid": int, "attrs": [float,
...], "time": float}`` and ``ts`` is the server's ``time.time()``
stamp taken when the delta entered the subscriber's delivery queue
(latency = client receipt time − ts, meaningful on one host).

**Exactness over the wire.** Scores and attributes are IEEE-754
doubles; Python's JSON encoder emits ``repr``-faithful floats and the
decoder parses them back to the identical double, so a replayed remote
state is *bitwise* equal to the server's pull result — the same parity
contract the in-process subscription layer pins.

Only :class:`~repro.core.scoring.LinearFunction` preferences cross the
wire (a weights list); arbitrary callables are not serialisable and
are rejected with :class:`ProtocolError`. Supported query kinds:
``topk`` and ``threshold``. A top-k spec may carry an optional
``"accuracy": {"epsilon", "delta"}`` contract (the approximate tier,
:mod:`repro.approx`), and a change event an optional ``"bound"`` — the
certified relative rank error of that delta; both keys are simply
absent for exact queries, keeping their wire shapes unchanged.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, NoReturn, Optional, Union

from repro.core.errors import ReproError
from repro.core.queries import ThresholdQuery, TopKQuery
from repro.core.results import ResultChange, ResultEntry
from repro.core.scoring import LinearFunction
from repro.core.tuples import StreamRecord

#: protocol revision, exchanged in the ``hello`` op.
PROTOCOL_VERSION = 1


class ProtocolError(ReproError):
    """Malformed or unsupported wire content."""


# ----------------------------------------------------------------------
# Line framing
# ----------------------------------------------------------------------


def encode_body(message: Dict[str, Any]) -> bytes:
    """One message → compact UTF-8 JSON bytes, repr-faithful floats.

    The un-framed encoder both framings build on: :func:`encode_line`
    appends the newline delimiter of the serving protocol, and the
    shard transport (:mod:`repro.transport.codec`) prefixes a binary
    length header instead. Floats pass through Python's ``repr``-based
    JSON encoder, so every IEEE-754 double survives the round trip
    bit-for-bit; NaN/Inf are rejected (they have no JSON spelling).
    """
    return json.dumps(
        message, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def encode_line(message: Dict[str, Any]) -> bytes:
    """One message → one ``\\n``-terminated JSON line."""
    return encode_body(message) + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """One received line → message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol line is not an object: {type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# Entries and changes
# ----------------------------------------------------------------------


def entry_to_wire(entry: ResultEntry) -> Dict[str, Any]:
    return {
        "score": entry.score,
        "rid": entry.record.rid,
        "attrs": list(entry.record.attrs),
        "time": entry.record.time,
    }


def entry_from_wire(payload: Dict[str, Any]) -> ResultEntry:
    try:
        return ResultEntry(
            float(payload["score"]),
            StreamRecord(
                int(payload["rid"]),
                tuple(float(value) for value in payload["attrs"]),
                float(payload["time"]),
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire entry: {exc}") from None


def change_to_wire(change: ResultChange) -> Dict[str, Any]:
    spec = {
        "qid": change.qid,
        "cause": change.cause,
        "added": [entry_to_wire(entry) for entry in change.added],
        "removed": [entry_to_wire(entry) for entry in change.removed],
        "top": [entry_to_wire(entry) for entry in change.top],
    }
    if change.bound is not None:
        # Approximate-tier deltas certify their rank error; exact
        # deltas omit the key so their wire shape is unchanged.
        spec["bound"] = change.bound
    return spec


def change_from_wire(payload: Dict[str, Any]) -> ResultChange:
    try:
        bound = payload.get("bound")
        return ResultChange(
            qid=int(payload["qid"]),
            added=[entry_from_wire(e) for e in payload["added"]],
            removed=[entry_from_wire(e) for e in payload["removed"]],
            top=[entry_from_wire(e) for e in payload["top"]],
            cause=str(payload["cause"]),
            bound=None if bound is None else float(bound),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire change: {exc}") from None


def entries_from_wire(payload: List[Dict[str, Any]]) -> List[ResultEntry]:
    return [entry_from_wire(item) for item in payload]


def entries_to_wire(entries: List[ResultEntry]) -> List[Dict[str, Any]]:
    return [entry_to_wire(entry) for entry in entries]


# ----------------------------------------------------------------------
# Query specifications
# ----------------------------------------------------------------------


WireQuery = Union[TopKQuery, ThresholdQuery]


def _wire_weights(query: WireQuery) -> List[float]:
    function = query.function
    if not isinstance(function, LinearFunction):
        raise ProtocolError(
            f"only LinearFunction preferences are wire-serialisable; "
            f"{type(function).__name__} is not"
        )
    return list(function.weights)


def query_to_wire(query: object) -> Dict[str, Any]:
    if isinstance(query, ThresholdQuery):
        return {
            "kind": "threshold",
            "weights": _wire_weights(query),
            "threshold": query.threshold,
            "label": query.label,
        }
    if isinstance(query, TopKQuery):
        if type(query) is not TopKQuery:
            raise ProtocolError(
                f"{type(query).__name__} is not wire-serialisable "
                "(supported kinds: topk, threshold)"
            )
        spec = {
            "kind": "topk",
            "weights": _wire_weights(query),
            "k": query.k,
            "label": query.label,
        }
        accuracy = getattr(query, "accuracy", None)
        if accuracy is not None:
            spec["accuracy"] = {
                "epsilon": float(accuracy.epsilon),
                "delta": float(accuracy.delta),
            }
        return spec
    raise ProtocolError(
        f"unsupported query type {type(query).__name__}"
    )


def query_from_wire(payload: Dict[str, Any]) -> WireQuery:
    try:
        kind = payload.get("kind", "topk")
        weights = [float(value) for value in payload["weights"]]
        label = str(payload.get("label", ""))
        if kind == "topk":
            query = TopKQuery(
                LinearFunction(weights),
                k=int(payload["k"]),
                label=label,
            )
            accuracy = payload.get("accuracy")
            if accuracy is not None:
                from repro.approx.accuracy import Accuracy

                query.accuracy = Accuracy(
                    float(accuracy["epsilon"]),
                    float(accuracy.get("delta", 0.01)),
                )
            return query
        if kind == "threshold":
            return ThresholdQuery(
                LinearFunction(weights),
                threshold=float(payload["threshold"]),
                label=label,
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire query: {exc}") from None
    raise ProtocolError(f"unknown query kind {kind!r}")


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------


def error_to_wire(exc: BaseException) -> Dict[str, str]:
    return {"type": type(exc).__name__, "message": str(exc)}


def raise_from_wire(payload: Optional[Dict[str, Any]]) -> NoReturn:
    """Re-raise a server-side error client-side, mapping the repro
    error taxonomy back onto the local exception classes."""
    from repro.core.errors import QueryError, StreamError

    payload = payload or {}
    kind = payload.get("type", "ServerError")
    message = payload.get("message", "unknown server error")
    if kind == "QueryError":
        raise QueryError(message)
    if kind == "StreamError":
        raise StreamError(message)
    if kind == "ProtocolError":
        raise ProtocolError(message)
    raise ServiceError(f"{kind}: {message}")


class ServiceError(ReproError):
    """Server-side failure with no more specific local class."""
