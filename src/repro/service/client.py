"""Synchronous client of the serving runtime.

:class:`MonitorClient` speaks the line-delimited JSON protocol to a
:class:`~repro.service.server.MonitorServer` and mirrors the
in-process facade: ``add_query`` returns a :class:`RemoteQueryHandle`
with the same lifecycle surface as
:class:`~repro.core.handles.QueryHandle` (``result`` / ``update`` /
``pause`` / ``resume`` / ``cancel`` / ``subscribe``), and
subscriptions arrive as :class:`RemoteChangeStream`\\ s — blocking
iterators over cause-tagged :class:`~repro.core.results.ResultChange`
deltas, rebuilt bit-for-bit from the wire.

One background reader thread demultiplexes the socket: responses
resolve their waiting request, events route to their stream. Server-
side errors re-raise locally as the same exception classes
(``QueryError`` for a cancelled qid, ``StreamError`` for a closed
monitor, ...), so code migrating from the in-process API keeps its
error handling unchanged.

::

    client = MonitorClient(host, port)
    handle = client.add_query(weights=[1.0, 2.0], k=10)
    stream = handle.subscribe(policy="coalesce", maxlen=64)
    client.process([[0.3, 0.9], ...])        # or the embedder ingests
    for change in stream:                    # blocks; ends on close
        apply(change)
    client.close()
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import StreamError
from repro.core.results import ResultChange, ResultEntry
from repro.service import protocol

#: sentinel marking the end of a RemoteChangeStream.
_CLOSED = object()


class RemoteChangeStream:
    """Client-side view of one server subscription.

    Iterating blocks until the next delta and stops cleanly when the
    stream closes (unsubscribe, query cancellation, server shutdown,
    or connection loss). :meth:`get` is the timeout-aware variant;
    :meth:`get_event` additionally exposes the server's enqueue
    timestamp for latency measurement.
    """

    def __init__(self, client: "MonitorClient", sub_id: int, qid=None):
        self.sub = sub_id
        #: watched qid (None = every query on the monitor).
        self.qid = qid
        self._client = client
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False

    # -- producer side (client reader thread) ---------------------------

    def _push(self, change: ResultChange, ts: Optional[float]) -> None:
        self._queue.put((change, ts, time.time()))

    def _mark_closed(self) -> None:
        if not self._closed:
            self._closed = True
            self._queue.put(_CLOSED)

    # -- consumer side --------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once no further deltas can arrive (buffered deltas
        remain consumable)."""
        return self._closed

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    def get_event(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[ResultChange, Optional[float], float]]:
        """Next ``(change, server_enqueue_ts, received_at)`` or None
        on close/timeout."""
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _CLOSED:
            self._queue.put(_CLOSED)  # keep later waiters unblocked
            return None
        return item

    def get(self, timeout: Optional[float] = None) -> Optional[ResultChange]:
        """Next delta, or None on close/timeout."""
        event = self.get_event(timeout=timeout)
        return None if event is None else event[0]

    def __iter__(self) -> "RemoteChangeStream":
        return self

    def __next__(self) -> ResultChange:
        change = self.get()
        if change is None:
            raise StopIteration
        return change

    def close(self) -> None:
        """Unsubscribe server-side (best effort) and end iteration."""
        if not self._closed:
            self._client._unsubscribe(self.sub)
            self._mark_closed()


class RemoteQueryHandle:
    """Remote mirror of :class:`~repro.core.handles.QueryHandle`.

    Int-like exactly like its in-process counterpart (hashes and
    compares as the qid). Every operation is one request round trip;
    server-side errors raise the same exception classes locally.
    """

    __slots__ = ("_client", "_qid", "label")

    def __init__(self, client: "MonitorClient", qid: int, label: str = ""):
        self._client = client
        self._qid = int(qid)
        self.label = label

    @property
    def qid(self) -> int:
        return self._qid

    def __int__(self) -> int:
        return self._qid

    def __index__(self) -> int:
        return self._qid

    def __hash__(self) -> int:
        return hash(self._qid)

    def __eq__(self, other) -> bool:
        if isinstance(other, (RemoteQueryHandle, int)):
            return self._qid == int(other)
        return NotImplemented

    def __repr__(self) -> str:
        name = self.label or f"q{self._qid}"
        return f"RemoteQueryHandle({name}, qid={self._qid})"

    def result(self) -> List[ResultEntry]:
        reply = self._client.request("result", qid=self._qid)
        return protocol.entries_from_wire(reply["result"])

    def update(
        self,
        k: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> List[ResultEntry]:
        reply = self._client.request(
            "update",
            qid=self._qid,
            k=k,
            weights=None if weights is None else list(weights),
        )
        return protocol.entries_from_wire(reply["result"])

    def pause(self) -> None:
        self._client.request("pause", qid=self._qid)

    def resume(self) -> List[ResultEntry]:
        reply = self._client.request("resume", qid=self._qid)
        return protocol.entries_from_wire(reply["result"])

    def cancel(self) -> None:
        self._client.request("cancel", qid=self._qid)

    def subscribe(
        self,
        policy: Optional[str] = None,
        maxlen: Optional[int] = None,
    ) -> RemoteChangeStream:
        """Stream this query's future deltas (see
        :meth:`MonitorClient.subscribe` for policy semantics)."""
        return self._client.subscribe(
            qid=self._qid, policy=policy, maxlen=maxlen
        )

    #: alias mirroring QueryHandle.changes()
    changes = subscribe


class MonitorClient:
    """One socket to a :class:`~repro.service.server.MonitorServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: float = 10.0,
    ) -> None:
        self._timeout = timeout
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: Dict[int, "queue.Queue"] = {}
        self._streams: Dict[int, RemoteChangeStream] = {}
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-client-reader", daemon=True
        )
        self._reader.start()
        #: the server's hello payload (protocol/algorithm/dims/...).
        self.server_info = self.request("hello")

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                line = self._rfile.readline()
                if not line:
                    break
                try:
                    message = protocol.decode_line(line)
                except protocol.ProtocolError:
                    continue
                if "id" in message:
                    with self._state_lock:
                        slot = self._pending.pop(message["id"], None)
                    if slot is not None:
                        slot.put(message)
                    continue
                event = message.get("event")
                if event == "change":
                    with self._state_lock:
                        stream = self._streams.get(message.get("sub"))
                    if stream is not None:
                        try:
                            change = protocol.change_from_wire(message)
                        except protocol.ProtocolError:
                            # One malformed event must not tear down
                            # every stream and pending request.
                            continue
                        stream._push(change, message.get("ts"))
                elif event == "closed":
                    with self._state_lock:
                        stream = self._streams.pop(
                            message.get("sub"), None
                        )
                    if stream is not None:
                        stream._mark_closed()
        except (OSError, ValueError):
            pass
        finally:
            self._teardown()

    def _teardown(self) -> None:
        with self._state_lock:
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            streams = list(self._streams.values())
            self._streams.clear()
        for slot in pending:
            slot.put(None)
        for stream in streams:
            stream._mark_closed()

    def request(self, op: str, **payload) -> Dict:
        """One request/response round trip. Raises the server's error
        locally (``QueryError`` / ``StreamError`` / ``ProtocolError``
        / :class:`~repro.service.protocol.ServiceError`)."""
        if self._closed:
            raise StreamError("client connection is closed")
        request_id = next(self._ids)
        slot: "queue.Queue" = queue.Queue(maxsize=1)
        with self._state_lock:
            self._pending[request_id] = slot
        message = {"id": request_id, "op": op}
        message.update(
            {key: value for key, value in payload.items() if value is not None}
        )
        line = protocol.encode_line(message)
        try:
            with self._send_lock:
                # The send lock exists solely to keep concurrent
                # requests' wire lines from interleaving; nothing else
                # is ever taken or touched under it, so the blocking
                # write cannot deadlock — only serialise, as intended.
                self._sock.sendall(line)  # repro: ignore[LOCK202]
        except OSError as exc:
            with self._state_lock:
                self._pending.pop(request_id, None)
            raise StreamError(f"send failed: {exc}") from None
        try:
            reply = slot.get(timeout=self._timeout)
        except queue.Empty:
            with self._state_lock:
                self._pending.pop(request_id, None)
            raise StreamError(
                f"no reply to {op!r} within {self._timeout:.0f}s"
            ) from None
        if reply is None:
            raise StreamError(
                f"connection closed while waiting for {op!r}"
            )
        if not reply.get("ok"):
            protocol.raise_from_wire(reply.get("error"))
        return reply

    # ------------------------------------------------------------------
    # Facade mirror
    # ------------------------------------------------------------------

    def add_query(
        self,
        query=None,
        weights: Optional[Sequence[float]] = None,
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        label: str = "",
        accuracy=None,
    ) -> RemoteQueryHandle:
        """Register a query; returns its remote handle.

        Pass a :class:`~repro.core.queries.TopKQuery` /
        :class:`~repro.core.queries.ThresholdQuery` (linear
        preferences only), or build one in place from ``weights`` +
        (``k`` | ``threshold``). ``accuracy`` attaches an
        :class:`~repro.approx.Accuracy` contract to a top-k query —
        the server must run the ``approx`` algorithm, and deltas
        arrive ``cause="approx"`` with a certified ``bound``.
        """
        if query is not None:
            wire = protocol.query_to_wire(query)
        elif weights is None or (k is None) == (threshold is None):
            raise ValueError(
                "pass a query object, or weights= with exactly one of "
                "k= / threshold="
            )
        elif k is not None:
            wire = {
                "kind": "topk",
                "weights": list(weights),
                "k": int(k),
                "label": label,
            }
        else:
            wire = {
                "kind": "threshold",
                "weights": list(weights),
                "threshold": float(threshold),
                "label": label,
            }
        if accuracy is not None:
            if wire.get("kind") != "topk":
                raise ValueError(
                    "accuracy contracts apply to top-k queries only"
                )
            wire["accuracy"] = {
                "epsilon": float(accuracy.epsilon),
                "delta": float(accuracy.delta),
            }
        reply = self.request("add_query", query=wire)
        return RemoteQueryHandle(
            self, reply["qid"], label=wire.get("label", "")
        )

    def subscribe(
        self,
        qid=None,
        policy: Optional[str] = None,
        maxlen: Optional[int] = None,
    ) -> RemoteChangeStream:
        """Subscribe to one query's deltas (or every query's when
        ``qid`` is None). ``policy`` / ``maxlen`` pick the server-side
        delivery queue behaviour (``block`` / ``drop_oldest`` /
        ``coalesce``; see ``docs/SERVICE.md``)."""
        reply = self.request(
            "subscribe",
            qid=None if qid is None else int(qid),
            policy=policy,
            maxlen=maxlen,
        )
        stream = RemoteChangeStream(
            self, reply["sub"], qid=None if qid is None else int(qid)
        )
        with self._state_lock:
            self._streams[stream.sub] = stream
        return stream

    def _unsubscribe(self, sub_id: int) -> None:
        with self._state_lock:
            self._streams.pop(sub_id, None)
        if not self._closed:
            try:
                self.request("unsubscribe", sub=sub_id)
            except StreamError:
                pass

    def process(
        self,
        rows: Sequence[Sequence[float]],
        now: Optional[float] = None,
    ) -> Dict:
        """Drive one processing cycle (server must ``allow_ingest``)."""
        return self.request(
            "process", rows=[list(row) for row in rows], now=now
        )

    def advance(self, now: float) -> Dict:
        """Process an empty cycle (time-based expiry only)."""
        return self.request("advance", now=float(now))

    def stats(self) -> Dict:
        return self.request("stats")

    def metrics(self, traces: Optional[int] = None) -> Dict:
        """The server monitor's metrics snapshot (and, when ``traces``
        is given, its last N cycle traces): ``{"metrics": {...},
        "traces": [...]}``."""
        if traces is None:
            return self.request("metrics")
        return self.request("metrics", traces=int(traces))

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the socket; every stream ends, pending requests fail
        fast. Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._reader.join(timeout=5)

    def __enter__(self) -> "MonitorClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
