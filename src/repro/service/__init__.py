"""repro.service — the asynchronous serving runtime.

Layers the in-process monitor facade into something servable:

- :class:`~repro.service.delivery.DeliveryHub` /
  :class:`~repro.service.delivery.Delivery`: bounded per-subscriber
  queues drained by dedicated consumer threads, with selectable
  overflow policies (``block`` / ``drop_oldest`` / ``coalesce``) —
  slow subscribers can no longer stall the maintenance cycle;
- :class:`~repro.service.server.MonitorServer`: an asyncio TCP
  front-end speaking the line-delimited JSON protocol of
  :mod:`repro.service.protocol`, exposing the full query-handle
  surface (add/result/update/pause/resume/cancel/subscribe) to many
  concurrent clients;
- :class:`~repro.service.client.MonitorClient`: the matching
  synchronous client, whose :class:`~repro.service.client.RemoteQueryHandle`
  and :class:`~repro.service.client.RemoteChangeStream` mirror the
  in-process handle API over the socket — with the same bitwise
  replay-parity contract.

See ``docs/SERVICE.md`` for the protocol specification, backpressure
semantics, and the policy-selection guide.
"""

from repro.service.client import (
    MonitorClient,
    RemoteChangeStream,
    RemoteQueryHandle,
)
from repro.service.delivery import (
    DEFAULT_MAXLEN,
    POLICIES,
    Delivery,
    DeliveryHub,
)
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError, ServiceError
from repro.service.server import MonitorServer

__all__ = [
    "DEFAULT_MAXLEN",
    "Delivery",
    "DeliveryHub",
    "MonitorClient",
    "MonitorServer",
    "POLICIES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteChangeStream",
    "RemoteQueryHandle",
    "ServiceError",
]
