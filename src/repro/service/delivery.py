"""Asynchronous push delivery: bounded queues, consumer threads,
overflow policies.

The in-process :class:`~repro.core.subscriptions.SubscriptionHub`
dispatches synchronously on the maintenance thread — correct, but one
slow subscriber callback stalls every query's cycle. The
:class:`DeliveryHub` decouples them: it registers exactly **one**
synchronous subscription on the monitor whose only work is routing
each delta into per-subscriber bounded queues; dedicated consumer
threads drain the queues and run the (arbitrarily slow) subscriber
callbacks. The maintenance thread's per-delta cost is one lock + one
append, regardless of how many subscribers are stalled.

Each :class:`Delivery` picks its overflow policy for a full queue:

``"block"``
    The dispatching thread waits for the consumer to make room.
    Lossless — this is deliberate backpressure that propagates queue
    pressure all the way to the processing cycle. Use it for
    subscribers that must see every delta and are trusted to keep up.

``"drop_oldest"``
    The oldest queued delta is discarded and counted
    (:attr:`Delivery.dropped`). The maintenance thread never waits.
    Replay parity is void once ``dropped > 0`` — consumers re-sync by
    pulling the query's result.

``"coalesce"`` (the default)
    The backlog is collapsed **per query** into one equivalent
    ``cause="resync"`` delta (:func:`repro.core.results.merge_changes`),
    so the queue shrinks to at most one delta per distinct query while
    replaying the delivered sequence still reconstructs the pull
    result exactly. The lossless choice for slow subscribers: they see
    fewer, fatter deltas, never a wrong state.

Consumer callbacks receive ``(change, enqueued_at)`` where
``enqueued_at`` is the ``time.time()`` stamp taken at routing — the
serving layer forwards it over the wire so clients can measure
delivery latency end to end.

Teardown: closing a delivery (or the hub, or the monitor — the hub
hooks the monitor's subscription-cancel signal) wakes its consumer,
which drains whatever is queued and exits. Nothing in this module can
leave a thread blocked on a monitor that will never dispatch again.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.results import ResultChange, merge_changes
from repro.obs.trace import NULL_TRACER

#: recognised overflow policies.
POLICIES = ("block", "drop_oldest", "coalesce")

#: default per-delivery queue bound.
DEFAULT_MAXLEN = 256

#: consumer callback: (change, enqueued_at seconds since epoch).
DeliveryCallback = Callable[[ResultChange, float], None]


class Delivery:
    """One asynchronous subscriber: bounded queue + consumer thread.

    Created by :meth:`DeliveryHub.deliver` — not directly. The
    consumer thread is a daemon named after the delivery, so a hung
    subscriber callback can never prevent interpreter exit.
    """

    __slots__ = (
        "qid",
        "policy",
        "maxlen",
        "name",
        "_callback",
        "_hub",
        "_queue",
        "_cond",
        "_closed",
        "_held",
        "_busy",
        "_delivered",
        "_dropped",
        "_coalesced",
        "_errors",
        "_high_watermark",
        "_thread",
    )

    def __init__(
        self,
        hub: "DeliveryHub",
        qid: Optional[int],
        callback: DeliveryCallback,
        maxlen: int,
        policy: str,
        name: Optional[str] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        #: qid the delivery watches; None = every query.
        self.qid = qid
        self.policy = policy
        self.maxlen = int(maxlen)
        self.name = name or (
            "all" if qid is None else f"q{qid}"
        )
        self._callback = callback
        self._hub = hub
        self._queue: Deque = deque()  # of (change, enqueued_at)
        self._cond = threading.Condition()
        self._closed = False
        self._held = False
        self._busy = False
        self._delivered = 0
        self._dropped = 0
        self._coalesced = 0
        self._errors = 0
        self._high_watermark = 0
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-delivery-{self.name}",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (runs on the monitor's dispatch thread)
    # ------------------------------------------------------------------

    def _enqueue(self, change: ResultChange) -> None:
        enqueued_at = time.time()
        with self._cond:
            if self._closed:
                return
            if len(self._queue) >= self.maxlen:
                if self.policy == "block":
                    self._cond.wait_for(
                        lambda: len(self._queue) < self.maxlen
                        or self._closed
                    )
                    if self._closed:
                        return
                elif self.policy == "drop_oldest":
                    self._queue.popleft()
                    self._dropped += 1
                else:  # coalesce
                    self._coalesce_locked()
            self._queue.append((change, enqueued_at))
            if len(self._queue) > self._high_watermark:
                self._high_watermark = len(self._queue)
            self._cond.notify_all()

    def _coalesce_locked(self) -> None:
        """Collapse the queued backlog to one resync delta per query.

        After collapsing, the queue holds at most one delta per
        distinct qid (order of first appearance, each stamped with its
        oldest constituent's enqueue time) — so a coalescing delivery
        is bounded by ``max(maxlen, watched queries)`` even if the
        consumer never drains.
        """
        merged: Dict[int, tuple] = {}
        order: List[int] = []
        for change, enqueued_at in self._queue:
            if change.qid in merged:
                previous, first_at = merged[change.qid]
                merged[change.qid] = (
                    merge_changes(previous, change),
                    first_at,
                )
            else:
                merged[change.qid] = (change, enqueued_at)
                order.append(change.qid)
        collapsed = [
            (merged[qid][0], merged[qid][1]) for qid in order
        ]
        self._coalesced += len(self._queue) - len(collapsed)
        self._queue.clear()
        self._queue.extend(collapsed)

    # ------------------------------------------------------------------
    # Consumer thread
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while (not self._queue or self._held) and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    break  # closed and drained
                change, enqueued_at = self._queue.popleft()
                self._busy = True
                self._cond.notify_all()
            try:
                self._callback(change, enqueued_at)
                with self._cond:
                    self._delivered += 1
                self._hub._observe_latency(time.time() - enqueued_at)
            except Exception:
                with self._cond:
                    self._errors += 1
            finally:
                with self._cond:
                    self._busy = False
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # Introspection / control
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Deltas queued and not yet handed to the callback."""
        return len(self._queue)

    @property
    def delivered(self) -> int:
        """Callback invocations that returned without raising."""
        return self._delivered

    @property
    def dropped(self) -> int:
        """Deltas discarded by the ``drop_oldest`` policy."""
        return self._dropped

    @property
    def coalesced(self) -> int:
        """Deltas absorbed into resync deltas by ``coalesce``."""
        return self._coalesced

    @property
    def errors(self) -> int:
        """Callback invocations that raised (swallowed and counted)."""
        return self._errors

    @property
    def high_watermark(self) -> int:
        """Deepest queue depth ever observed."""
        return self._high_watermark

    @property
    def closed(self) -> bool:
        return self._closed

    def hold(self) -> None:
        """Suspend the consumer (deltas keep queueing; the overflow
        policy governs a full queue). Deterministic-backlog switch for
        tests and staged consumers."""
        with self._cond:
            self._held = True

    def release(self) -> None:
        """Resume a held consumer."""
        with self._cond:
            self._held = False
            self._cond.notify_all()

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is drained *and* the callback is not
        mid-flight. False on timeout (or when the consumer is held
        with work still queued)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: (not self._queue and not self._busy)
                or (self._held and bool(self._queue)),
                timeout=timeout,
            ) and not self._queue and not self._busy

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "pending": len(self._queue),
                "delivered": self._delivered,
                "dropped": self._dropped,
                "coalesced": self._coalesced,
                "errors": self._errors,
                "high_watermark": self._high_watermark,
            }

    def close(
        self,
        drain: bool = True,
        timeout: float = 5.0,
        join: bool = True,
    ) -> None:
        """Stop the delivery. The consumer drains what is queued
        (unless ``drain=False``) and exits; blocked ``block``-policy
        producers are released. Idempotent.

        ``join=False`` skips waiting for the consumer thread — the
        right call from a thread the consumer itself may be waiting
        on (the server's event loop closes deliveries this way: a
        consumer parked on that loop's write backlog can only exit
        once the loop runs again).
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                self._queue.clear()
            self._held = False
            self._cond.notify_all()
        self._hub._forget(self)
        if join and threading.current_thread() is not self._thread:
            self._thread.join(timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"Delivery({self.name}, {self.policy}, maxlen={self.maxlen}, "
            f"pending={self.pending}, {state})"
        )


class DeliveryHub:
    """Bounded-queue fan-out of one monitor's deltas.

    One hub serves any number of deliveries. It is the delivery layer
    of the serving runtime (:class:`repro.service.server.MonitorServer`
    attaches one Delivery per remote subscription), and equally usable
    in-process::

        hub = DeliveryHub(monitor)
        delivery = hub.deliver(
            lambda change, at: slow_sink(change),
            qid=handle.qid, policy="coalesce", maxlen=64,
        )
        ...
        hub.close()

    The hub's monitor subscription is cancelled automatically when the
    monitor closes; its deliveries then drain and stop. Closing the
    hub (or the monitor) is the only teardown required.
    """

    def __init__(
        self,
        monitor,
        default_policy: str = "coalesce",
        default_maxlen: int = DEFAULT_MAXLEN,
        registry=None,
    ) -> None:
        if default_policy not in POLICIES:
            raise ValueError(
                f"default_policy must be one of {POLICIES}, "
                f"got {default_policy!r}"
            )
        self.monitor = monitor
        self.default_policy = default_policy
        self.default_maxlen = int(default_maxlen)
        self._lock = threading.Lock()
        self._by_qid: Dict[int, List[Delivery]] = {}
        self._all: List[Delivery] = []
        self._closed = False
        #: cumulative totals of deliveries that have since detached,
        #: so collect-time counters stay monotonic across churn.
        self._retired = {
            "delivered": 0,
            "dropped": 0,
            "coalesced": 0,
            "errors": 0,
        }
        #: metrics default to the monitor's registry; pass an explicit
        #: registry (or an object without one) to opt out.
        if registry is None:
            registry = getattr(monitor, "metrics_registry", None)
        self.registry = registry
        self._latency = None
        if registry is not None:
            # Histogram observes come from many consumer threads, so
            # this one instrument takes a lock (delivery events are
            # per-delta, never per-record — the cost is noise).
            self._metrics_lock = threading.Lock()
            self._latency = registry.histogram(
                "repro_delivery_latency_seconds",
                "seconds from delta enqueue to subscriber callback "
                "return",
            )
            # Registered through a WeakMethod: the monitor owns this
            # registry, so a strong bound method would tie hub and
            # monitor into a reference cycle (hub -> monitor ->
            # registry -> hub) that outlives close() and defers both
            # to gen-2 GC.
            collect_ref = weakref.WeakMethod(self._collect_metrics)

            def _collect(reg, ref=collect_ref):
                method = ref()
                if method is not None:
                    method(reg)

            registry.add_collector(_collect)
        self._tracer = getattr(monitor, "tracer", None) or NULL_TRACER
        self._subscription = monitor.subscribe_all(self._route)
        self._subscription.add_cancel_hook(self._on_monitor_gone)

    # ------------------------------------------------------------------
    # Routing (runs on the monitor's dispatch thread)
    # ------------------------------------------------------------------

    def _route(self, change: ResultChange) -> None:
        with self._lock:
            targets = list(self._by_qid.get(change.qid, ()))
            targets.extend(self._all)
        if not targets:
            return
        # Runs on the engine's dispatch thread, inside its "dispatch"
        # span — the "delivery" sub-span isolates enqueue time (and
        # any block-policy backpressure wait) from raw fan-out.
        with self._tracer.span("delivery"):
            for delivery in targets:
                delivery._enqueue(change)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def deliver(
        self,
        callback: DeliveryCallback,
        qid: Optional[int] = None,
        maxlen: Optional[int] = None,
        policy: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Delivery:
        """Attach one asynchronous subscriber.

        ``callback(change, enqueued_at)`` runs on the delivery's own
        consumer thread for every delta of ``qid`` (or of every query
        when None). ``policy`` / ``maxlen`` default to the hub's.
        """
        if self._closed:
            raise RuntimeError("DeliveryHub is closed")
        delivery = Delivery(
            self,
            None if qid is None else int(qid),
            callback,
            maxlen=self.default_maxlen if maxlen is None else int(maxlen),
            policy=self.default_policy if policy is None else policy,
            name=name,
        )
        with self._lock:
            if delivery.qid is None:
                self._all.append(delivery)
            else:
                self._by_qid.setdefault(delivery.qid, []).append(delivery)
        return delivery

    def _forget(self, delivery: Delivery) -> None:
        snapshot = delivery.stats()
        with self._lock:
            for key in self._retired:
                self._retired[key] += snapshot[key]
            if delivery.qid is None:
                if delivery in self._all:
                    self._all.remove(delivery)
                return
            bucket = self._by_qid.get(delivery.qid)
            if bucket and delivery in bucket:
                bucket.remove(delivery)
                if not bucket:
                    del self._by_qid[delivery.qid]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def deliveries(self) -> List[Delivery]:
        with self._lock:
            found = list(self._all)
            for bucket in self._by_qid.values():
                found.extend(bucket)
        return found

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait for every delivery's queue to drain (see
        :meth:`Delivery.flush`)."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        for delivery in self.deliveries():
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            if not delivery.flush(timeout=remaining):
                return False
        return True

    def stats(self) -> Dict[str, int]:
        """Aggregate queue accounting across every delivery."""
        totals = {
            "deliveries": 0,
            "pending": 0,
            "delivered": 0,
            "dropped": 0,
            "coalesced": 0,
            "errors": 0,
            "high_watermark": 0,
        }
        for delivery in self.deliveries():
            snapshot = delivery.stats()
            totals["deliveries"] += 1
            totals["pending"] += snapshot["pending"]
            totals["delivered"] += snapshot["delivered"]
            totals["dropped"] += snapshot["dropped"]
            totals["coalesced"] += snapshot["coalesced"]
            totals["errors"] += snapshot["errors"]
            totals["high_watermark"] = max(
                totals["high_watermark"], snapshot["high_watermark"]
            )
        return totals

    # ------------------------------------------------------------------
    # Metrics (no-ops when the hub has no registry)
    # ------------------------------------------------------------------

    def _observe_latency(self, seconds: float) -> None:
        histogram = self._latency
        if histogram is None:
            return
        with self._metrics_lock:
            histogram.observe(seconds)

    def _collect_metrics(self, registry) -> None:
        """Collect-time adapter (the ``publish_op_counters`` pattern):
        queue accounting is re-read on every snapshot/exposition, so
        consumer threads never touch the registry beyond the latency
        histogram."""
        totals = self.stats()
        with self._lock:
            retired = dict(self._retired)
        for key in ("delivered", "dropped", "coalesced", "errors"):
            counter = registry.counter(
                f"repro_delivery_{key}_total",
                f"cumulative {key} deltas across all deliveries "
                "(detached deliveries included)",
            )
            counter.value = totals[key] + retired[key]
        registry.gauge(
            "repro_delivery_queue_depth",
            "deltas currently queued across all live deliveries",
        ).set(float(totals["pending"]))
        registry.gauge(
            "repro_delivery_queue_high_watermark",
            "deepest queue depth observed by any live delivery",
        ).set(float(totals["high_watermark"]))
        registry.gauge(
            "repro_delivery_subscribers",
            "live deliveries attached to the hub",
        ).set(float(totals["deliveries"]))

    @property
    def closed(self) -> bool:
        return self._closed

    def _on_monitor_gone(self) -> None:
        # The monitor closed (or our subscription was cancelled): no
        # further deltas can arrive. Drain and stop every delivery.
        self.close()

    def close(self) -> None:
        """Detach from the monitor and stop every delivery (each
        drains its queue first). Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._subscription.cancel()
        for delivery in self.deliveries():
            delivery.close()

    def __enter__(self) -> "DeliveryHub":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
