"""Network front-end: an asyncio server over the monitor facade.

:class:`MonitorServer` turns one in-process
:class:`~repro.core.engine.StreamMonitor` into a servable runtime.
Many concurrent clients speak the line-delimited JSON protocol
(:mod:`repro.service.protocol`) over TCP to register queries, pull
results, mutate queries in flight, and subscribe to push deltas.

Threading model — three planes, each with one job:

- the **event loop thread** owns every socket: it parses request
  lines, schedules replies, and writes bytes. It never touches the
  engine directly and never blocks on it.
- the **engine lock** serialises every monitor operation. Request
  handlers run engine calls in the loop's default executor under this
  lock; the embedding application ingests through
  :meth:`MonitorServer.process` under the same lock, so a server can
  share its monitor with an in-process stream driver safely.
- the **delivery plane** is a :class:`~repro.service.delivery.DeliveryHub`:
  one bounded queue + consumer thread per remote subscription. A
  subscriber's consumer thread serialises its deltas and hands the
  bytes to the event loop — *blocking itself* (never the engine, never
  other subscribers) when that client's socket is full. Queue pressure
  then builds in that subscription's own delivery queue, where its
  overflow policy (``block`` / ``drop_oldest`` / ``coalesce``)
  resolves it. A deliberately-stalled subscriber therefore costs
  exactly one parked thread and one full queue; every other client's
  cycle and delivery latency is untouched (pinned by
  ``tests/integration/test_service_e2e.py`` and measured by the bench
  ``--serve`` leg).

Lifecycle: ``start()`` spawns the loop thread and returns the bound
address; ``stop()`` (or context-manager exit) closes every
subscription, connection, and the loop. The server does **not** close
the monitor it serves — the embedder owns that — but a monitor closed
out from under the server simply makes further operations answer with
``StreamError`` responses.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from functools import partial
from typing import Dict, Optional, Tuple

from repro.core.errors import ReproError
from repro.service import protocol
from repro.service.delivery import DeliveryHub

#: soft cap of a connection's kernel+transport write backlog before
#: its delivery consumer threads start waiting (bytes).
WRITE_BUFFER_LIMIT = 256 * 1024

#: maximum accepted request-line size (a 100k-row ingest batch fits
#: comfortably; asyncio's 64 KiB default does not).
MAX_LINE_BYTES = 32 * 1024 * 1024

#: how long a parked delivery sender sleeps between backlog probes.
_BACKOFF_SECONDS = 0.005


class _Connection:
    """Per-client state: writer, subscriptions, liveness flag."""

    __slots__ = ("writer", "deliveries", "closed", "peer")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        #: sub id -> Delivery
        self.deliveries: Dict[int, object] = {}
        self.closed = False
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if peer else "?"

    def send_bytes(self, line: bytes) -> None:
        """Loop-thread only: append one framed line to the transport."""
        if not self.closed and not self.writer.is_closing():
            self.writer.write(line)

    def backlog(self) -> int:
        transport = self.writer.transport
        if transport is None or transport.is_closing():
            return 0
        return transport.get_write_buffer_size()


class MonitorServer:
    """Serve one :class:`~repro.core.engine.StreamMonitor` over TCP.

    Args:
        monitor: the monitor to serve (any algorithm, any shard
            count — the server only uses the public facade).
        host/port: bind address; port 0 picks a free port
            (:attr:`address` reports the real one after ``start``).
        default_policy / default_maxlen: per-subscription delivery
            queue defaults (clients may override per subscribe).
        allow_ingest: accept ``process`` / ``advance`` ops from
            clients. Disable when only the embedding application may
            drive cycles.
        metrics_port: when not None, also serve the monitor's metrics
            registry over HTTP (:class:`repro.obs.http.MetricsHTTPServer`)
            on ``metrics_host:metrics_port`` — ``GET /metrics`` is
            Prometheus text exposition 0.0.4, ``GET /trace`` the
            tracer's recent cycle traces as JSON. Port 0 picks a free
            port; :attr:`metrics_address` reports the bound endpoint.

    Example::

        monitor = StreamMonitor(2, CountBasedWindow(10_000), "tma")
        with MonitorServer(monitor) as server:
            host, port = server.address
            ...                      # clients connect, app ingests:
            server.process(rows)     # engine-lock-safe ingestion
    """

    def __init__(
        self,
        monitor,
        host: str = "127.0.0.1",
        port: int = 0,
        default_policy: str = "coalesce",
        default_maxlen: int = 256,
        allow_ingest: bool = True,
        metrics_host: str = "127.0.0.1",
        metrics_port: Optional[int] = None,
    ) -> None:
        self.monitor = monitor
        self._host = host
        self._port = port
        self.allow_ingest = allow_ingest
        self._metrics_host = metrics_host
        self._metrics_port = metrics_port
        self._metrics_server = None
        self.hub = DeliveryHub(
            monitor,
            default_policy=default_policy,
            default_maxlen=default_maxlen,
        )
        self._lock = threading.RLock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._ready = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = False
        self._started = False
        self._address: Optional[Tuple[str, int]] = None
        self._sub_ids = itertools.count(1)
        self._connections: Dict[int, _Connection] = {}
        self._conn_ids = itertools.count(1)
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Spawn the event-loop thread, bind, and return the address."""
        if self._started:
            raise RuntimeError("MonitorServer already started")
        self._started = True
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if self._address is None:
            raise RuntimeError("service loop failed to start")
        if self._metrics_port is not None:
            self._start_metrics_server()
        return self._address

    def _start_metrics_server(self) -> None:
        from repro.obs.http import MetricsHTTPServer
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import NULL_TRACER

        registry = getattr(self.monitor, "metrics_registry", None)
        if registry is None:  # served object predates the obs tier
            registry = MetricsRegistry()
        tracer = getattr(self.monitor, "tracer", None) or NULL_TRACER
        self._metrics_server = MetricsHTTPServer(
            registry,
            tracer=tracer,
            host=self._metrics_host,
            port=int(self._metrics_port),
        )
        try:
            self._metrics_server.start()
        except BaseException:
            self._metrics_server = None
            self.stop()
            raise

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError("MonitorServer is not started")
        return self._address

    @property
    def metrics_address(self) -> Tuple[str, int]:
        """``(host, port)`` of the metrics HTTP endpoint (only when
        the server was built with ``metrics_port``)."""
        if self._metrics_server is None:
            raise RuntimeError(
                "MonitorServer has no metrics endpoint (pass "
                "metrics_port= and start() first)"
            )
        return (self._metrics_host, self._metrics_server.port)

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._serve_connection,
                self._host,
                self._port,
                limit=MAX_LINE_BYTES,
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]
        self._ready.set()
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()
        for conn in list(self._connections.values()):
            self._close_connection(conn)

    def stop(self) -> None:
        """Shut the server down: close every subscription, connection,
        and the loop thread. Idempotent. The monitor stays open."""
        if self._stopping:
            return
        self._stopping = True
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None
        self.hub.close()
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)

    close = stop

    def __enter__(self) -> "MonitorServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Embedder-side ingestion
    # ------------------------------------------------------------------

    def process(self, rows=None, records=None, now: Optional[float] = None):
        """Run one processing cycle under the engine lock.

        ``rows`` mints fresh records via the monitor's factory
        (stamped ``now``); ``records`` passes prebuilt
        :class:`~repro.core.tuples.StreamRecord` batches through
        unchanged. Thread-safe against concurrent client requests —
        this is how an embedding application drives cycles while the
        server serves.
        """
        with self._lock:
            if records is None:
                records = self.monitor.make_records(
                    rows or [], time_=now
                )
            return self.monitor.process(records, now=now)

    def stats(self) -> Dict:
        """Serving-plane statistics (connections, hub queues, engine
        delivery accounting)."""
        with self._lock:
            engine = self.monitor.delivery_stats()
        return {
            "connections": len(self._connections),
            "hub": self.hub.stats(),
            "engine": engine,
        }

    # ------------------------------------------------------------------
    # Connection plumbing (event-loop thread)
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        conn_id = next(self._conn_ids)
        self._connections[conn_id] = conn
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except ValueError as exc:
                    # Oversized line (> MAX_LINE_BYTES): the stream
                    # position is unrecoverable, so answer and close.
                    conn.send_bytes(
                        protocol.encode_line(
                            {
                                "id": None,
                                "ok": False,
                                "error": {
                                    "type": "ProtocolError",
                                    "message": f"request line too "
                                    f"large: {exc}",
                                },
                            }
                        )
                    )
                    break
                if not line:
                    break
                try:
                    message = protocol.decode_line(line)
                except protocol.ProtocolError as exc:
                    conn.send_bytes(
                        protocol.encode_line(
                            {
                                "id": None,
                                "ok": False,
                                "error": protocol.error_to_wire(exc),
                            }
                        )
                    )
                    continue
                response = await self._handle(conn, message)
                conn.send_bytes(protocol.encode_line(response))
                await self._drain(conn)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._close_connection(conn)
            self._connections.pop(conn_id, None)

    async def _drain(self, conn: _Connection) -> None:
        if not conn.closed and not conn.writer.is_closing():
            try:
                await conn.writer.drain()
            except ConnectionResetError:
                pass

    def _close_connection(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        # join=False: this may run on the event-loop thread, which a
        # parked consumer needs alive to observe the close and exit.
        for delivery in list(conn.deliveries.values()):
            delivery.close(drain=False, join=False)
        conn.deliveries.clear()
        try:
            conn.writer.close()
        except RuntimeError:  # pragma: no cover - loop teardown race
            pass

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle(self, conn: _Connection, message: Dict) -> Dict:
        request_id = message.get("id")
        op = message.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            return {
                "id": request_id,
                "ok": False,
                "error": {
                    "type": "ProtocolError",
                    "message": f"unknown op {op!r}",
                },
            }
        try:
            payload = await handler(self, conn, message)
        except ReproError as exc:
            return {
                "id": request_id,
                "ok": False,
                "error": protocol.error_to_wire(exc),
            }
        except Exception as exc:  # pragma: no cover - defensive
            return {
                "id": request_id,
                "ok": False,
                "error": {
                    "type": "ServerError",
                    "message": f"{type(exc).__name__}: {exc}",
                },
            }
        response = {"id": request_id, "ok": True}
        response.update(payload)
        return response

    async def _engine(self, fn, *args, **kwargs):
        """Run one engine operation in the executor, serialised by the
        engine lock (ReproErrors propagate to the op handler)."""
        return await self._loop.run_in_executor(
            None, partial(self._locked, fn, *args, **kwargs)
        )

    def _locked(self, fn, *args, **kwargs):
        with self._lock:
            return fn(*args, **kwargs)

    # -- ops ------------------------------------------------------------

    async def _op_hello(self, conn, message) -> Dict:
        algorithm = getattr(
            self.monitor.algorithm,
            "name",
            type(self.monitor.algorithm).__name__,
        )
        return {
            "server": "repro.service",
            "protocol": protocol.PROTOCOL_VERSION,
            "algorithm": algorithm,
            "dims": self.monitor.dims,
            "shards": self.monitor.shards,
            "ingest": self.allow_ingest,
        }

    async def _op_ping(self, conn, message) -> Dict:
        return {"pong": True}

    async def _op_add_query(self, conn, message) -> Dict:
        query = protocol.query_from_wire(message.get("query") or {})
        handle = await self._engine(self.monitor.add_query, query)
        return {
            "qid": handle.qid,
            "result": protocol.entries_to_wire(handle.result()),
        }

    async def _op_add_queries(self, conn, message) -> Dict:
        queries = [
            protocol.query_from_wire(item)
            for item in message.get("queries") or []
        ]
        handles = await self._engine(self.monitor.add_queries, queries)
        return {
            "queries": [
                {
                    "qid": handle.qid,
                    "result": protocol.entries_to_wire(handle.result()),
                }
                for handle in handles
            ]
        }

    async def _op_result(self, conn, message) -> Dict:
        entries = await self._engine(
            self.monitor.result, int(message["qid"])
        )
        return {"result": protocol.entries_to_wire(entries)}

    async def _op_update(self, conn, message) -> Dict:
        entries = await self._engine(
            self.monitor.update_query,
            int(message["qid"]),
            k=message.get("k"),
            weights=message.get("weights"),
        )
        return {"result": protocol.entries_to_wire(entries)}

    async def _op_pause(self, conn, message) -> Dict:
        await self._engine(self.monitor.pause_query, int(message["qid"]))
        return {}

    async def _op_resume(self, conn, message) -> Dict:
        entries = await self._engine(
            self.monitor.resume_query, int(message["qid"])
        )
        return {"result": protocol.entries_to_wire(entries)}

    async def _op_cancel(self, conn, message) -> Dict:
        await self._engine(self.monitor.remove_query, int(message["qid"]))
        return {}

    async def _op_subscribe(self, conn, message) -> Dict:
        qid = message.get("qid")
        if qid is not None:
            qid = int(qid)
            # Existence check (raises the same QueryError a local
            # subscribe would).
            await self._engine(self.monitor.handle, qid)
        sub_id = next(self._sub_ids)
        sender, box = self._make_sender(conn, sub_id)
        delivery = self.hub.deliver(
            sender,
            qid=qid,
            maxlen=message.get("maxlen"),
            policy=message.get("policy"),
            name=f"sub{sub_id}@{conn.peer}",
        )
        box[0] = delivery
        conn.deliveries[sub_id] = delivery
        return {
            "sub": sub_id,
            "policy": delivery.policy,
            "maxlen": delivery.maxlen,
        }

    async def _op_unsubscribe(self, conn, message) -> Dict:
        sub_id = int(message["sub"])
        delivery = conn.deliveries.pop(sub_id, None)
        if delivery is not None:
            # join=False: we are on the event-loop thread; a consumer
            # parked on this connection's write backlog exits as soon
            # as it sees the closed flag — joining here would stall
            # every connection for the join timeout instead.
            delivery.close(drain=False, join=False)
            conn.send_bytes(
                protocol.encode_line({"event": "closed", "sub": sub_id})
            )
        return {}

    async def _op_process(self, conn, message) -> Dict:
        if not self.allow_ingest:
            raise protocol.ProtocolError(
                "this server does not accept client-driven ingestion"
            )
        rows = message.get("rows") or []
        now = message.get("now")
        report = await self._engine(self._ingest_batch, rows, now)
        return {
            "timestamp": report.timestamp,
            "arrivals": report.arrivals,
            "expirations": report.expirations,
            "dead_on_arrival": report.dead_on_arrival,
            "changed": sorted(report.changed_queries()),
        }

    def _ingest_batch(self, rows, now):
        records = self.monitor.make_records(rows, time_=now)
        return self.monitor.process(records, now=now)

    async def _op_advance(self, conn, message) -> Dict:
        if not self.allow_ingest:
            raise protocol.ProtocolError(
                "this server does not accept client-driven ingestion"
            )
        report = await self._engine(
            self.monitor.advance, float(message["now"])
        )
        return {
            "timestamp": report.timestamp,
            "arrivals": report.arrivals,
            "expirations": report.expirations,
            "dead_on_arrival": report.dead_on_arrival,
            "changed": sorted(report.changed_queries()),
        }

    async def _op_stats(self, conn, message) -> Dict:
        engine, queries, cycles = await self._engine(self._stats_snapshot)
        return {
            "connections": len(self._connections),
            "hub": self.hub.stats(),
            "engine": engine,
            "queries": queries,
            "cycles": cycles,
        }

    def _stats_snapshot(self):
        """Engine-side stats, read atomically under the engine lock.

        ``query_table`` and ``cycle_seconds`` mutate during cycles, so
        sampling them from the event loop races the executor; one
        locked snapshot keeps the three numbers mutually consistent.
        """
        return (
            self.monitor.delivery_stats(),
            len(self.monitor.query_table),
            len(self.monitor.cycle_seconds),
        )

    async def _op_metrics(self, conn, message) -> Dict:
        traces = message.get("traces")
        snapshot, trace_list = await self._engine(
            self._metrics_snapshot,
            None if traces is None else int(traces),
        )
        return {"metrics": snapshot, "traces": trace_list}

    def _metrics_snapshot(self, traces):
        """Registry snapshot + recent traces under the engine lock (the
        op-counter collector reads ``counters`` mid-collection)."""
        metrics = getattr(self.monitor, "metrics", None)
        snapshot = (
            metrics()
            if metrics is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        )
        last = getattr(self.monitor, "last_traces", None)
        if traces is None or last is None:
            trace_list = []
        else:
            trace_list = last(traces)
        return snapshot, trace_list

    _OPS = {
        "hello": _op_hello,
        "ping": _op_ping,
        "add_query": _op_add_query,
        "add_queries": _op_add_queries,
        "result": _op_result,
        "update": _op_update,
        "pause": _op_pause,
        "resume": _op_resume,
        "cancel": _op_cancel,
        "subscribe": _op_subscribe,
        "unsubscribe": _op_unsubscribe,
        "process": _op_process,
        "advance": _op_advance,
        "stats": _op_stats,
        "metrics": _op_metrics,
    }

    # ------------------------------------------------------------------
    # Delta push (delivery consumer threads)
    # ------------------------------------------------------------------

    def _make_sender(self, conn: _Connection, sub_id: int):
        # The Delivery is created *from* this sender, so the sender
        # reaches it through a late-bound box (filled right after
        # hub.deliver returns in _op_subscribe).
        box: list = [None]

        def sender(change, enqueued_at: float) -> None:
            line = protocol.encode_line(
                {
                    "event": "change",
                    "sub": sub_id,
                    "ts": enqueued_at,
                    **protocol.change_to_wire(change),
                }
            )
            delivered = self._offer(conn, line, delivery=box[0])
            if change.cause == "cancel" and delivered:
                # The query is gone; retire the subscription and tell
                # the client its stream is over.
                delivery = conn.deliveries.pop(sub_id, None)
                self._offer(
                    conn,
                    protocol.encode_line(
                        {"event": "closed", "sub": sub_id}
                    ),
                    delivery=box[0],
                )
                if delivery is not None:
                    delivery.close()

        return sender, box

    def _offer(self, conn: _Connection, line: bytes, delivery=None) -> bool:
        """Hand one framed line to the event loop for ``conn``.

        Called from a delivery consumer thread. Waits (only this
        subscriber's thread) while the connection's write backlog is
        over :data:`WRITE_BUFFER_LIMIT` — the socket-level stall that
        the delivery queue's overflow policy then absorbs upstream.
        Aborts when the server stops, the connection dies, or this
        subscription itself is closed (unsubscribe mid-stall).
        """
        loop = self._loop
        while not self._stopping and not conn.closed:
            if delivery is not None and delivery.closed:
                return False
            if loop is None or loop.is_closed():
                return False
            if conn.backlog() <= WRITE_BUFFER_LIMIT:
                try:
                    loop.call_soon_threadsafe(conn.send_bytes, line)
                except RuntimeError:  # loop shut down mid-offer
                    return False
                return True
            time.sleep(_BACKOFF_SECONDS)
        return False
