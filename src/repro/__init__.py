"""repro — Continuous Monitoring of Top-k Queries over Sliding Windows.

A faithful, from-scratch Python reproduction of Mouratidis, Bakiras &
Papadias (SIGMOD 2006). The package provides:

- :class:`~repro.core.engine.StreamMonitor` — the main entry point: a
  main-memory engine monitoring many continuous top-k queries over a
  count- or time-based sliding window;
- the paper's two monitoring algorithms, **TMA** and **SMA**, the
  **TSL** baseline it compares against, and a brute-force oracle;
- the grid index, the top-k computation module, and the score–time
  k-skyband machinery underneath;
- stream generators (IND / ANT and domain scenarios), Section 7's
  extensions (constrained, threshold, update-stream monitoring), and
  the Section 6 analytical cost model.

Quickstart::

    from repro import (CountBasedWindow, LinearFunction, StreamMonitor,
                       TopKQuery)

    monitor = StreamMonitor(dims=2, window=CountBasedWindow(10_000),
                            algorithm="sma")
    handle = monitor.add_query(TopKQuery(LinearFunction([1.0, 2.0]), k=10))
    handle.subscribe(lambda change: print(change.top))   # push delivery
    for batch in my_stream:                     # lists of StreamRecord
        monitor.process(batch)
    print(handle.result())                      # pull, any time
    handle.update(k=20)                         # in-flight mutation
    handle.cancel()

Handles are int-like, so the original qid-based calls
(``monitor.result(qid)``, ``report.changes[qid]``) keep working
unchanged — see ``docs/API.md`` for the full surface and the
migration guide.
"""

from repro.algorithms import (
    BruteForceAlgorithm,
    SkybandMonitoringAlgorithm,
    ThresholdSortedListAlgorithm,
    TopKMonitoringAlgorithm,
    make_algorithm,
)
from repro.approx import Accuracy, ApproxTopKAlgorithm
from repro.service import (
    Delivery,
    DeliveryHub,
    MonitorClient,
    MonitorServer,
    RemoteChangeStream,
    RemoteQueryHandle,
)
from repro.core import (
    CallableFunction,
    ChangeStream,
    ConstrainedTopKQuery,
    CountBasedWindow,
    CycleReport,
    LinearFunction,
    PreferenceFunction,
    ProductFunction,
    QuadraticFunction,
    QueryError,
    QueryHandle,
    Rectangle,
    RecordFactory,
    ReproError,
    ResultChange,
    ResultEntry,
    StreamError,
    StreamMonitor,
    StreamRecord,
    Subscription,
    ThresholdQuery,
    TimeBasedWindow,
    TopKQuery,
)

__version__ = "1.1.0"

__all__ = [
    "Accuracy",
    "ApproxTopKAlgorithm",
    "BruteForceAlgorithm",
    "CallableFunction",
    "ChangeStream",
    "ConstrainedTopKQuery",
    "CountBasedWindow",
    "CycleReport",
    "Delivery",
    "DeliveryHub",
    "LinearFunction",
    "MonitorClient",
    "MonitorServer",
    "PreferenceFunction",
    "ProductFunction",
    "QuadraticFunction",
    "QueryError",
    "QueryHandle",
    "Rectangle",
    "RecordFactory",
    "RemoteChangeStream",
    "RemoteQueryHandle",
    "ReproError",
    "ResultChange",
    "ResultEntry",
    "SkybandMonitoringAlgorithm",
    "StreamError",
    "StreamMonitor",
    "StreamRecord",
    "Subscription",
    "ThresholdQuery",
    "ThresholdSortedListAlgorithm",
    "TimeBasedWindow",
    "TopKMonitoringAlgorithm",
    "TopKQuery",
    "__version__",
    "make_algorithm",
]
