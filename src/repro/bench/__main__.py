"""Entry point: ``python -m repro.bench`` (see repro.bench.cli)."""

from repro.bench.cli import main

raise SystemExit(main())
