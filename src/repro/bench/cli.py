"""Command-line bench runner: ``python -m repro.bench``.

Two subcommands:

``run``
    Execute one monitoring comparison at arbitrary workload parameters
    and print a paper-style report (times, counters, space). Example::

        python -m repro.bench run --n 50000 --rate 500 --queries 100 \
            --k 20 --dims 4 --distribution ant --algorithms tsl,sma

``selfcheck``
    A fast correctness sweep: replays randomized streams through every
    maintained algorithm (including the grouped-recomputation
    variants) and verifies cycle-by-cycle result equality against
    the brute-force oracle. Exit code 0 means every check passed — run
    it after any modification before trusting benchmark numbers.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional, Sequence

from repro.algorithms import ALGORITHMS, make_algorithm
from repro.bench.reporting import (
    format_table,
    run_result_to_dict,
    speedup,
    workload_to_dict,
)
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import WorkloadSpec
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.tuples import RecordFactory


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Benchmark runner for the SIGMOD 2006 continuous top-k "
            "monitoring reproduction"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="compare algorithms on one workload"
    )
    run.add_argument("--n", type=int, default=20_000, help="window size N")
    run.add_argument(
        "--rate", type=int, default=None, help="arrivals/cycle (default N/100)"
    )
    run.add_argument("--queries", type=int, default=20, help="Q")
    run.add_argument("--k", type=int, default=20)
    run.add_argument("--dims", type=int, default=4)
    run.add_argument("--cycles", type=int, default=10)
    run.add_argument(
        "--distribution", choices=["ind", "ant", "clu"], default="ind"
    )
    run.add_argument(
        "--function",
        choices=["linear", "product", "quadratic"],
        default="linear",
    )
    run.add_argument(
        "--algorithms",
        default="tsl,tma,sma",
        help="comma-separated subset of: " + ",".join(sorted(ALGORITHMS)),
    )
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--similarity",
        type=float,
        default=None,
        metavar="S",
        help=(
            "draw all Q preference vectors near one random base vector "
            "(S in [0,1]; 1.0 = identical queries). Exercises the "
            "grouped-recomputation variants (tma-grouped/sma-grouped)"
        ),
    )
    run.add_argument(
        "--cells-per-axis",
        type=int,
        default=None,
        help="grid granularity (default: occupancy-tuned)",
    )
    run.add_argument(
        "--shards",
        default="1",
        metavar="N|tcp:N|HOST:PORT,...",
        help=(
            "partition queries across shards (default 1 = in-process): "
            "an integer N spawns N local worker processes; 'tcp:N' "
            "brings up N loopback remote shard hosts and drives them "
            "over TCP; a comma-separated HOST:PORT list uses already-"
            "running `python -m repro.cluster.shard` hosts. Results "
            "are bitwise-identical in all modes; sharded runs record "
            "bytes-on-the-wire per cycle"
        ),
    )
    run.add_argument(
        "--churn",
        action="store_true",
        help=(
            "exercise the handle API mid-run: deterministic "
            "handle.update(k=...) mutations plus pause/resume churn "
            "between cycles (identical across algorithms); mutation "
            "cost is reported separately from maintenance"
        ),
    )
    run.add_argument(
        "--serve",
        action="store_true",
        help=(
            "append a serving-latency leg: start a MonitorServer, "
            "drive cycles through a socket client, and report "
            "end-to-end delivery-latency p50/p99 — twice, the second "
            "time with a deliberately-stalled co-subscriber attached "
            "(whose backlog must not slow the healthy client)"
        ),
    )
    run.add_argument(
        "--serve-policy",
        choices=["block", "drop_oldest", "coalesce"],
        default="coalesce",
        help="overflow policy of the healthy --serve subscription",
    )
    run.add_argument(
        "--approx",
        metavar="EPS[,EPS...]",
        default=None,
        help=(
            "append an approximate-tier leg: run the 'approx' "
            "algorithm once per listed epsilon on the same workload "
            "(in-process) and report per-cycle throughput against a "
            "fresh in-process exact baseline, together with each "
            "query's observed rank error vs its certified bound; "
            "e.g. --approx 0.02,0.05,0.1"
        ),
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help=(
            "run with per-cycle phase tracing enabled: the report "
            "gains a per-phase time table and --json gains per-run "
            "'phases' and 'metrics' blocks (results are unchanged; "
            "timings include the small tracing overhead)"
        ),
    )
    run.add_argument(
        "--no-check",
        action="store_true",
        help="skip the cross-algorithm result-equality verification",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "also write machine-readable per-algorithm metrics "
            "(times, counters, space) to PATH; '-' for stdout"
        ),
    )

    check = commands.add_parser(
        "selfcheck", help="fast cycle-by-cycle correctness sweep"
    )
    check.add_argument("--seeds", type=int, default=3)
    check.add_argument("--cycles", type=int, default=10)
    return parser


def parse_shards_argument(text: str):
    """``--shards`` value → ``(count, loopback_hosts, addresses)``.

    Three spellings: ``"N"`` (local pipe workers), ``"tcp:N"`` (spawn
    N loopback remote hosts for the run's duration), and
    ``"host:port[,host:port...]"`` (already-running remote hosts).
    Raises ValueError on anything else.
    """
    text = text.strip()
    if text.lower().startswith("tcp:"):
        count = int(text[4:])
        if count < 1:
            raise ValueError(f"tcp shard count must be >= 1, got {count}")
        return count, count, None
    if ":" in text:
        addresses = [part.strip() for part in text.split(",") if part.strip()]
        for address in addresses:
            host, _, port = address.rpartition(":")
            if not host:
                raise ValueError(f"bad shard address {address!r}")
            int(port)
        return len(addresses), None, tuple(addresses)
    count = int(text)
    if count < 1:
        raise ValueError(f"--shards must be >= 1, got {count}")
    return count, None, None


#: exact baseline of the --approx sweep (the paper's reference grid
#: algorithm; rerun in-process so the timing comparison is apples to
#: apples even when the main table ran sharded).
APPROX_BASELINE = "tma"


def run_approx_sweep(spec, epsilons):
    """Run the approximate tier at each ε against an exact baseline.

    Returns ``(baseline_run, legs)`` where each leg is a dict holding
    the approx :class:`~repro.bench.runner.RunResult` plus the derived
    error/throughput account: per-query observed relative rank error
    ``max(0, (exact_s_k - approx_s_k) / exact_s_k)`` compared against
    the certified bound the run reported, and the per-cycle speedup
    over the baseline. Approx legs always run in-process.
    """
    from repro.bench.runner import run_workload

    base_spec = spec.with_(shards=1, shard_hosts=None, accuracy=None)
    baseline = run_workload(base_spec, APPROX_BASELINE)
    legs = []
    for epsilon in epsilons:
        run = run_workload(base_spec.with_(accuracy=epsilon), "approx")
        errors = []
        within = True
        for qid, scores in run.final_scores.items():
            exact_scores = baseline.final_scores.get(qid)
            if not scores or not exact_scores:
                continue
            exact_kth = exact_scores[-1]
            observed = (
                max(0.0, (exact_kth - scores[-1]) / exact_kth)
                if exact_kth > 0
                else 0.0
            )
            errors.append(observed)
            if observed > run.result_bounds.get(qid, 0.0) + 1e-12:
                within = False
        bounds = list(run.result_bounds.values())
        legs.append(
            {
                "epsilon": epsilon,
                "run": run,
                "speedup": speedup(
                    baseline.mean_cycle_seconds, run.mean_cycle_seconds
                ),
                "max_observed_error": max(errors) if errors else 0.0,
                "mean_observed_error": (
                    sum(errors) / len(errors) if errors else 0.0
                ),
                "max_certified_bound": max(bounds) if bounds else 0.0,
                "within_bound": within,
            }
        )
    return baseline, legs


def command_run(args: argparse.Namespace) -> int:
    names = [name.strip() for name in args.algorithms.split(",") if name]
    unknown = [name for name in names if name not in ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {unknown}", file=sys.stderr)
        return 2
    try:
        shard_count, loopback_hosts, shard_addresses = (
            parse_shards_argument(args.shards)
        )
    except ValueError as exc:
        print(f"bad --shards value: {exc}", file=sys.stderr)
        return 2
    approx_epsilons = None
    if args.approx is not None:
        try:
            approx_epsilons = [
                float(part)
                for part in args.approx.split(",")
                if part.strip()
            ]
            if not approx_epsilons or any(
                not 0.0 < value < 1.0 for value in approx_epsilons
            ):
                raise ValueError(args.approx)
        except ValueError:
            print(
                f"bad --approx value {args.approx!r}: expected a "
                "comma-separated list of epsilons in (0, 1)",
                file=sys.stderr,
            )
            return 2
    if args.json not in (None, "-"):
        # Fail fast: a benchmark run can take minutes; discovering an
        # unwritable output path afterwards would lose the whole run.
        try:
            with open(args.json, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"cannot write --json path: {exc}", file=sys.stderr)
            return 2
    spec = WorkloadSpec(
        dims=args.dims,
        n=args.n,
        rate=args.rate if args.rate is not None else max(1, args.n // 100),
        num_queries=args.queries,
        k=args.k,
        cycles=args.cycles,
        distribution=args.distribution,
        function_family=args.function,
        seed=args.seed,
        cells_per_axis=args.cells_per_axis,
        query_similarity=args.similarity,
        shards=shard_count,
        shard_hosts=shard_addresses,
        churn=args.churn,
    )
    if spec.shard_hosts is not None:
        sharding = f" shards=tcp[{','.join(spec.shard_hosts)}]"
    elif loopback_hosts is not None:
        sharding = f" shards=tcp:{loopback_hosts}"
    elif spec.shards > 1:
        sharding = f" shards={spec.shards}"
    else:
        sharding = ""
    if spec.churn:
        sharding += " churn"
    print(
        f"workload: N={spec.n} r={spec.rate} Q={spec.num_queries} "
        f"k={spec.k} d={spec.dims} {spec.distribution.upper()} "
        f"{spec.function_family} x{spec.cycles} cycles "
        f"(grid {spec.grid_cells_per_axis()}/axis){sharding}"
    )
    if loopback_hosts is not None:
        from repro.cluster import local_shard_hosts

        # Hosts without --once serve one session per benchmarked
        # algorithm in sequence, then tear down with the context.
        with local_shard_hosts(loopback_hosts, once=False) as addresses:
            spec = spec.with_(shard_hosts=tuple(addresses))
            results = compare_algorithms(
                spec, names, check_results=not args.no_check,
                trace=args.trace,
            )
    else:
        results = compare_algorithms(
            spec, names, check_results=not args.no_check, trace=args.trace
        )
    sharded = spec.shards > 1 or spec.shard_hosts is not None
    rows = []
    for name, run in results.items():
        if sharded and run.transport is not None:
            cycles_seen = max(1, run.transport["cycles"])
            wire_column = [
                "{:.0f}".format(
                    run.transport["cycle_wire_bytes_total"] / cycles_seen
                )
            ]
        elif sharded:
            wire_column = ["-"]
        else:
            wire_column = []
        rows.append(
            [
                name.upper(),
                f"{run.setup_seconds:.3f}",
                f"{run.total_seconds:.4f}",
                f"{run.mean_cycle_seconds * 1e3:.2f}",
                run.counters.recomputations,
                f"{run.recomputation_rate:.3f}",
                f"{run.mean_state_size:.1f}",
                f"{run.space.total_mb:.2f}",
            ]
            + wire_column
            + (
                [
                    f"{run.mutation_seconds:.4f}",
                    run.churn_updates
                    + run.churn_pauses
                    + run.churn_resumes,
                ]
                if spec.churn
                else []
            )
        )
    print(
        format_table(
            [
                "algorithm",
                "setup [s]",
                "maintain [s]",
                "ms/cycle",
                "recomputes",
                "Pr_rec",
                "state/query",
                "space [MB]",
            ]
            + (["wire B/cyc"] if sharded else [])
            + (["mutate [s]", "churn ops"] if spec.churn else []),
            rows,
        )
    )
    if not args.no_check:
        print("result check: all algorithms report identical top-k sets")
    if args.trace:
        phase_names = sorted(
            {
                phase
                for run in results.values()
                for phase in (run.phases or {})
            }
        )
        if phase_names:
            print("\n== per-phase mean time [ms/cycle] (--trace) ==")
            print(
                format_table(
                    ["algorithm"] + phase_names,
                    [
                        [name.upper()]
                        + [
                            (
                                "{:.3f}".format(
                                    run.phases[phase]["mean_seconds"] * 1e3
                                )
                                if run.phases and phase in run.phases
                                else "-"
                            )
                            for phase in phase_names
                        ]
                        for name, run in results.items()
                    ],
                )
            )
    approx_sweep = None
    if approx_epsilons is not None:
        approx_baseline, approx_legs = run_approx_sweep(
            spec, approx_epsilons
        )
        approx_sweep = (approx_baseline, approx_legs)
        print(
            f"\n== approximate tier (baseline "
            f"{APPROX_BASELINE.upper()} "
            f"{approx_baseline.mean_cycle_seconds * 1e3:.2f} ms/cycle, "
            f"in-process) =="
        )
        print(
            format_table(
                [
                    "epsilon",
                    "ms/cycle",
                    "speedup",
                    "max err",
                    "mean err",
                    "max bound",
                    "bound held",
                ],
                [
                    [
                        f"{leg['epsilon']:g}",
                        f"{leg['run'].mean_cycle_seconds * 1e3:.2f}",
                        f"{leg['speedup']:.2f}x",
                        f"{leg['max_observed_error']:.4f}",
                        f"{leg['mean_observed_error']:.4f}",
                        f"{leg['max_certified_bound']:.4f}",
                        "yes" if leg["within_bound"] else "NO",
                    ]
                    for leg in approx_legs
                ],
            )
        )
        if not all(leg["within_bound"] for leg in approx_legs):
            print(
                "approx check FAILED: an observed rank error exceeded "
                "its certified bound",
                file=sys.stderr,
            )
            return 1
    serve_result = None
    if args.serve:
        from repro.bench.serve import (
            format_serve_report,
            run_serve_benchmark,
        )

        serve_result = run_serve_benchmark(
            n=spec.n,
            rate=spec.rate,
            cycles=max(10, spec.cycles * 2),
            k=spec.k,
            algorithm=names[0],
            policy=args.serve_policy,
            seed=spec.seed,
            shards=spec.shards if spec.shards > 1 else None,
        )
        print(format_serve_report(serve_result))
    if args.json is not None:
        from repro.core.batch import BACKEND

        payload = {
            # /2 added workload.churn + per-run mutation_seconds and
            # churn_ops (the handle-API mutation account); /3 adds the
            # optional "serve" block (end-to-end delivery-latency
            # percentiles, with and without a stalled co-subscriber);
            # /4 adds workload.shard_hosts and the per-run "transport"
            # block (bytes-on-the-wire, per cycle and cumulative, for
            # pipe- and TCP-sharded runs; null in-process); /5 adds
            # workload.accuracy, per-run "result_bounds", and the
            # optional "approx" block (the --approx sweep: one leg per
            # epsilon with observed-vs-certified rank error and the
            # per-cycle speedup over a fresh in-process exact
            # baseline); /6 keeps integer counts integral (no more
            # 17.0 in counters/churn_ops) and adds the per-run
            # "phases" + "metrics" blocks captured by --trace (the
            # per-phase time breakdown and the full metrics-registry
            # snapshot; both null when untraced).
            "schema": "repro-bench-run/6",
            "batch_backend": BACKEND,
            "workload": workload_to_dict(spec),
            "algorithms": {
                name: run_result_to_dict(run)
                for name, run in results.items()
            },
        }
        if approx_sweep is not None:
            approx_baseline, approx_legs = approx_sweep
            payload["approx"] = {
                "baseline_algorithm": APPROX_BASELINE,
                "baseline": run_result_to_dict(approx_baseline),
                "legs": [
                    {
                        "epsilon": leg["epsilon"],
                        "speedup_vs_exact": round(leg["speedup"], 4),
                        "max_observed_error": round(
                            leg["max_observed_error"], 9
                        ),
                        "mean_observed_error": round(
                            leg["mean_observed_error"], 9
                        ),
                        "max_certified_bound": round(
                            leg["max_certified_bound"], 9
                        ),
                        "within_bound": leg["within_bound"],
                        "run": run_result_to_dict(leg["run"]),
                    }
                    for leg in approx_legs
                ],
            }
        if serve_result is not None:
            payload["serve"] = serve_result
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"json metrics written to {args.json}")
    return 0


SELFCHECK_MAINTAINED = ("tsl", "tma", "sma", "tma-grouped", "sma-grouped")


def command_selfcheck(args: argparse.Namespace) -> int:
    failures = 0
    checks = 0
    for seed in range(args.seeds):
        rng = random.Random(seed)
        factory = RecordFactory()
        algorithms = {
            name: make_algorithm(name, 2, cells_per_axis=4)
            for name in ("brute",) + SELFCHECK_MAINTAINED
        }
        queries = []
        for qid in range(3):
            query = TopKQuery(
                LinearFunction(
                    [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
                ),
                k=rng.choice([1, 3, 7]),
            )
            query.qid = qid
            for algo in algorithms.values():
                algo.register(query)
            queries.append(query)
        window: List = []
        for cycle in range(args.cycles):
            arrivals = [
                factory.make((rng.random(), rng.random()))
                for _ in range(8)
            ]
            window.extend(arrivals)
            expired = []
            while len(window) > 60:
                expired.append(window.pop(0))
            outcomes = {}
            for name, algo in algorithms.items():
                algo.process_cycle(list(arrivals), list(expired))
                outcomes[name] = {
                    query.qid: [
                        entry.rid
                        for entry in algo.current_result(query.qid)
                    ]
                    for query in queries
                }
            reference = outcomes["brute"]
            for name in SELFCHECK_MAINTAINED:
                checks += 1
                if outcomes[name] != reference:
                    failures += 1
                    print(
                        f"FAIL seed={seed} cycle={cycle} {name} != brute",
                        file=sys.stderr,
                    )
    status = "OK" if failures == 0 else "FAILED"
    print(f"selfcheck {status}: {checks} comparisons, {failures} failures")
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return command_run(args)
    return command_selfcheck(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
