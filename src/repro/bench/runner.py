"""Run algorithms over workloads and collect paper-comparable metrics.

Fairness contract (the paper's implicit setup): every algorithm under
comparison sees a byte-identical stream (same seed → same records with
the same ids), identical queries, and the same window — only the
maintenance machinery differs. :func:`compare_algorithms` enforces
this and additionally cross-checks that all algorithms finish with
identical top-k results, so a benchmark can never silently time a
wrong answer.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.algorithms import GRID_ALGORITHMS
from repro.analysis.memory import SpaceBreakdown, estimate_space
from repro.core.engine import StreamMonitor
from repro.core.stats import OpCounters
from repro.core.window import CountBasedWindow
from repro.bench.workloads import WorkloadSpec
from repro.streams.generators import make_distribution
from repro.streams.stream import StreamDriver


@dataclass(slots=True)
class RunResult:
    """Everything one (workload, algorithm) run produced."""

    algorithm: str
    spec: WorkloadSpec
    setup_seconds: float
    cycle_seconds: List[float]
    counters: OpCounters
    space: SpaceBreakdown
    #: mean per-query result-state size (view / skyband / top list)
    mean_state_size: float
    #: final top-k ids per query, for cross-algorithm equality checks
    final_results: Dict[int, List[int]] = field(default_factory=dict)
    #: final top-k scores per query (same order as final_results) —
    #: what the approximate tier's observed-error computation compares
    #: against an exact baseline's kth score
    final_scores: Dict[int, List[float]] = field(default_factory=dict)
    #: certified per-query relative error bounds at the end of the run
    #: (approx runs only; empty for exact algorithms)
    result_bounds: Dict[int, float] = field(default_factory=dict)
    #: registration-only share of setup_seconds (the engine-timed
    #: initial top-k computations — setup_seconds additionally covers
    #: the warm-up window fill)
    register_seconds: float = 0.0
    #: total seconds spent in in-flight mutations (handle.update /
    #: pause / resume) under ``spec.churn`` — kept out of
    #: cycle_seconds so mutation cost never pollutes maintenance cost
    mutation_seconds: float = 0.0
    #: churn operations performed (updates, pauses, resumes)
    churn_updates: int = 0
    churn_pauses: int = 0
    churn_resumes: int = 0
    #: transport accounting of sharded runs (pipe or TCP): cumulative
    #: and per-cycle bytes on the wire / in shared memory, as returned
    #: by ``ShardedMonitorAlgorithm.transport_stats``. None in-process.
    transport: Optional[Dict] = None
    #: per-phase time breakdown from the tracer's phase histograms
    #: (``{phase: {count, total_seconds, mean_seconds}}``) — populated
    #: only when the run executed with ``trace=True``, else None, so
    #: untraced benchmark numbers carry zero instrumentation cost.
    phases: Optional[Dict] = None
    #: full metrics-registry snapshot of the run (counters, gauges,
    #: histograms — in sharded runs including everything merged back
    #: from the workers). Only captured under ``trace=True``.
    metrics: Optional[Dict] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.cycle_seconds)

    @property
    def mean_cycle_seconds(self) -> float:
        if not self.cycle_seconds:
            return 0.0
        return self.total_seconds / len(self.cycle_seconds)

    def percentile_cycle_seconds(self, fraction: float) -> float:
        """Per-cycle latency percentile (e.g. 0.95 for p95).

        Continuous monitoring is a latency problem as much as a
        throughput one: a recomputation-heavy cycle stalls every
        report in it, so tail latency separates TMA from SMA more
        sharply than the mean does.
        """
        if not self.cycle_seconds:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        ordered = sorted(self.cycle_seconds)
        index = min(
            len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
        )
        return ordered[index]

    @property
    def p95_cycle_seconds(self) -> float:
        return self.percentile_cycle_seconds(0.95)

    @property
    def max_cycle_seconds(self) -> float:
        return max(self.cycle_seconds) if self.cycle_seconds else 0.0

    @property
    def recomputation_rate(self) -> float:
        """Empirical Pr_rec: recomputations per query per cycle."""
        cycles = max(1, len(self.cycle_seconds))
        queries = max(1, self.spec.num_queries)
        return self.counters.recomputations / (cycles * queries)


class _ChurnDriver:
    """Deterministic mid-run handle churn for ``spec.churn`` runs.

    The schedule is a pure function of the cycle index and Q, so every
    algorithm under comparison performs byte-identical mutations and
    the cross-algorithm result check still holds:

    - every third cycle, one query (round-robin) toggles its k between
      ``spec.k`` and ``max(1, spec.k // 2)`` via ``handle.update``;
    - every fourth cycle, one query pauses for two cycles, then
      resumes (exact re-sync against the then-current window).

    All paused queries are resumed at the end so final results are
    fresh for the equality check.
    """

    def __init__(self, spec: WorkloadSpec, handles) -> None:
        self.spec = spec
        self.handles = list(handles)
        self.updates = 0
        self.pauses = 0
        self.resumes = 0
        self._resume_at: List = []  # (cycle, handle) pairs

    def step(self, cycle: int) -> None:
        due = [item for item in self._resume_at if item[0] <= cycle]
        self._resume_at = [
            item for item in self._resume_at if item[0] > cycle
        ]
        for _, handle in due:
            handle.resume()
            self.resumes += 1
        count = len(self.handles)
        if count == 0:
            return
        if cycle % 3 == 1:
            handle = self.handles[cycle % count]
            if not handle.paused:
                low = max(1, self.spec.k // 2)
                handle.update(
                    k=low if handle.query.k == self.spec.k else self.spec.k
                )
                self.updates += 1
        if cycle % 4 == 2:
            handle = self.handles[(cycle + 1) % count]
            if not handle.paused:
                handle.pause()
                self.pauses += 1
                self._resume_at.append((cycle + 2, handle))

    def finish(self) -> None:
        for _, handle in self._resume_at:
            handle.resume()
            self.resumes += 1
        self._resume_at = []


def phase_breakdown(snapshot: Dict) -> Dict[str, Dict[str, float]]:
    """Per-phase time account from a metrics-registry snapshot.

    Reduces every ``repro_phase_<name>_seconds`` histogram to
    ``{count, total_seconds, mean_seconds}`` — the view BENCH_PR*.json
    captures so phase regressions diff like counter regressions.
    """
    prefix, suffix = "repro_phase_", "_seconds"
    phases: Dict[str, Dict[str, float]] = {}
    for name, data in snapshot.get("histograms", {}).items():
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        count = int(data["count"])
        total = float(data["sum"])
        phases[name[len(prefix):-len(suffix)]] = {
            "count": count,
            "total_seconds": round(total, 9),
            "mean_seconds": round(total / count, 9) if count else 0.0,
        }
    return phases


def run_workload(
    spec: WorkloadSpec,
    algorithm: str,
    state_size_probes: int = 4,
    trace: bool = False,
) -> RunResult:
    """Execute one monitoring run and return its metrics.

    The run follows the paper's Section 8 protocol: fill the window
    with N warm-up tuples, register the Q queries (initial computation
    is *setup*, not measured), then process ``spec.cycles`` timestamps
    of r arrivals + r expirations each, measuring only maintenance.

    ``trace=True`` additionally runs the monitor with per-cycle phase
    tracing and captures the phase breakdown plus the full metrics
    snapshot on the result (results stay bitwise-identical; only the
    timings shift by the instrumentation overhead).
    """
    distribution = make_distribution(spec.distribution, spec.dims)
    driver = StreamDriver(distribution, spec.rate, seed=spec.seed)
    warmup = driver.warmup(spec.n)

    if spec.shard_hosts is not None:
        shards = list(spec.shard_hosts)
    elif spec.shards > 1:
        shards = spec.shards
    else:
        shards = None
    monitor = StreamMonitor(
        spec.dims,
        CountBasedWindow(spec.n),
        algorithm=algorithm,
        cells_per_axis=(
            spec.grid_cells_per_axis()
            if algorithm in GRID_ALGORITHMS
            else None
        ),
        shards=shards,
        trace=trace,
    )

    try:
        setup_started = time.perf_counter()
        monitor.process(warmup)
        # Burst registration: grouped algorithms serve similar queries'
        # initial computations through shared sweeps, and sharded runs
        # issue one round trip per shard (results identical either way).
        contract = None
        if spec.accuracy is not None and getattr(
            monitor.algorithm, "supports_accuracy", False
        ):
            from repro.approx import Accuracy

            contract = Accuracy(epsilon=spec.accuracy)
        qids = monitor.add_queries(spec.make_queries(), accuracy=contract)
        setup_seconds = time.perf_counter() - setup_started

        monitor.cycle_seconds.clear()
        monitor.counters.reset()

        state_sizes: List[float] = []
        probe_every = max(1, spec.cycles // max(1, state_size_probes))
        # Measured cycles run with the cyclic GC paused: a generation-2
        # collection scans the entire process heap (in a full pytest
        # session that is millions of objects) and its multi-millisecond
        # pause would land on whichever cycle trips the threshold,
        # distorting single-run comparisons at millisecond scale. Collect
        # once up front so the pause happens outside the timed region.
        churn = _ChurnDriver(spec, qids) if spec.churn else None
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for cycle_index in range(spec.cycles):
                monitor.process(driver.next_batch())
                if churn is not None:
                    churn.step(cycle_index)
                if cycle_index % probe_every == 0:
                    sizes = monitor.algorithm.result_state_sizes()
                    if sizes:
                        state_sizes.append(sum(sizes.values()) / len(sizes))
        finally:
            if gc_was_enabled:
                gc.enable()
        if churn is not None:
            churn.finish()

        final_results = {}
        final_scores = {}
        for qid in qids:
            entries = monitor.result(qid)
            final_results[int(qid)] = [entry.rid for entry in entries]
            final_scores[int(qid)] = [entry.score for entry in entries]
        bounds_of = getattr(monitor.algorithm, "result_bounds", None)
        result_bounds = (
            {int(qid): bound for qid, bound in bounds_of().items()}
            if bounds_of is not None
            else {}
        )
        transport_stats = getattr(
            monitor.algorithm, "transport_stats", None
        )
        metrics_snapshot = monitor.metrics() if trace else None
        return RunResult(
            algorithm=algorithm,
            spec=spec,
            setup_seconds=setup_seconds,
            cycle_seconds=list(monitor.cycle_seconds),
            counters=monitor.counters.snapshot(),
            space=estimate_space(monitor.algorithm),
            mean_state_size=(
                sum(state_sizes) / len(state_sizes) if state_sizes else 0.0
            ),
            final_results=final_results,
            final_scores=final_scores,
            result_bounds=result_bounds,
            register_seconds=monitor.total_setup_seconds,
            mutation_seconds=monitor.total_mutation_seconds,
            churn_updates=churn.updates if churn else 0,
            churn_pauses=churn.pauses if churn else 0,
            churn_resumes=churn.resumes if churn else 0,
            transport=(
                transport_stats() if transport_stats is not None else None
            ),
            phases=(
                phase_breakdown(metrics_snapshot)
                if metrics_snapshot is not None
                else None
            ),
            metrics=metrics_snapshot,
        )
    finally:
        monitor.close()


def compare_algorithms(
    spec: WorkloadSpec,
    algorithms: Sequence[str] = ("tsl", "tma", "sma"),
    check_results: bool = True,
    trace: bool = False,
) -> Dict[str, RunResult]:
    """Run several algorithms on the identical workload.

    Raises:
        AssertionError: when ``check_results`` and two algorithms
            disagree on any final top-k set — a benchmark must never
            time a wrong answer.
    """
    results = {
        name: run_workload(spec, name, trace=trace) for name in algorithms
    }
    if check_results and len(results) > 1:
        names = list(results)
        reference = results[names[0]].final_results
        for name in names[1:]:
            candidate = results[name].final_results
            if candidate != reference:
                diffs = [
                    qid
                    for qid in reference
                    if candidate.get(qid) != reference[qid]
                ]
                raise AssertionError(
                    f"{name} disagrees with {names[0]} on queries {diffs[:5]} "
                    f"(spec={spec})"
                )
    return results
