"""Serving benchmark: end-to-end delivery latency over the socket.

The ``--serve`` leg of ``python -m repro.bench run`` measures what the
in-process benchmarks cannot: the time from a delta entering a
subscriber's delivery queue (the server's ``ts`` stamp) to the client
receiving it off the socket — queue wait + serialisation + loop
handoff + kernel + parse. Two phases per run:

1. **baseline** — one healthy subscribed client, driven for
   ``cycles`` cycles; p50/p99 of its delivery latency.
2. **stalled** — the same again with a second subscriber attached
   that *never reads its socket* (tiny ``drop_oldest`` queue). The
   serving runtime's whole point is that this phase's healthy-client
   percentiles match the baseline's: the stalled subscriber's backlog
   is confined to its own delivery queue.

Server and clients run in one process (threads), so the ``time.time``
stamps on both sides share a clock; latencies are wall-clock accurate
to NTP-free same-host precision, which is what a relative comparison
needs.
"""

from __future__ import annotations

import random
import socket as socket_module
import time
from typing import Dict, List, Optional

from repro.core.engine import StreamMonitor
from repro.core.window import CountBasedWindow
from repro.service import MonitorClient, MonitorServer, protocol


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _summary(latencies: List[float], cycle_times: List[float]) -> Dict:
    return {
        "deliveries": len(latencies),
        "delivery_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 4),
        "delivery_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 4),
        "delivery_max_ms": round(
            (max(latencies) if latencies else 0.0) * 1e3, 4
        ),
        "cycle_p50_ms": round(_percentile(cycle_times, 0.50) * 1e3, 4),
        "cycle_p99_ms": round(_percentile(cycle_times, 0.99) * 1e3, 4),
    }


def _drive(client, stream, rng, cycles, rate, start) -> Dict:
    latencies: List[float] = []
    cycle_times: List[float] = []
    for cycle in range(cycles):
        started = time.perf_counter()
        client.process(
            [(rng.random(), rng.random()) for _ in range(rate)],
            now=float(start + cycle),
        )
        cycle_times.append(time.perf_counter() - started)
        deadline = time.monotonic() + 5.0
        got = False
        while time.monotonic() < deadline:
            event = stream.get_event(timeout=0.5)
            if event is None:
                if got:
                    break
                continue
            change, ts, received_at = event
            if ts is not None:
                latencies.append(received_at - ts)
            got = True
            if stream.pending == 0:
                break
    return _summary(latencies, cycle_times)


def run_serve_benchmark(
    n: int = 4000,
    rate: int = 100,
    cycles: int = 20,
    k: int = 10,
    algorithm: str = "tma",
    policy: str = "coalesce",
    seed: int = 1,
    shards: Optional[int] = None,
) -> Dict:
    """One serving-latency capture; returns the JSON-ready dict.

    The result's ``stalled_overhead_p50`` is the headline number: the
    healthy subscriber's p50 delivery latency with a stalled
    co-subscriber, divided by its baseline p50. ~1.0 means the
    delivery layer isolates subscribers as designed.
    """
    rng = random.Random(seed)
    monitor = StreamMonitor(
        2,
        CountBasedWindow(n),
        algorithm=algorithm,
        cells_per_axis=4,
        shards=shards,
    )
    server = MonitorServer(monitor, default_maxlen=64)
    host, port = server.start()
    healthy = None
    stalled_socket = None
    try:
        healthy = MonitorClient(host, port)
        # Warm window, then a standing query with a subscription.
        warm = 0
        while warm < n:
            block = min(rate * 10, n - warm)
            healthy.process(
                [(rng.random(), rng.random()) for _ in range(block)],
                now=0.0,
            )
            warm += block
        handle = healthy.add_query(weights=[1.0, 0.8], k=k)
        stream = handle.subscribe(policy=policy, maxlen=64)

        baseline = _drive(healthy, stream, rng, cycles, rate, start=1)

        # Attach the subscriber-from-hell: subscribes to everything,
        # never reads a byte again.
        stalled_socket = socket_module.create_connection((host, port))
        stalled_socket.sendall(
            protocol.encode_line(
                {
                    "id": 1,
                    "op": "subscribe",
                    "policy": "drop_oldest",
                    "maxlen": 2,
                }
            )
        )
        time.sleep(0.3)
        stalled = _drive(
            healthy, stream, rng, cycles, rate, start=1 + cycles
        )

        hub_stats = server.hub.stats()
        overhead = (
            stalled["delivery_p50_ms"] / baseline["delivery_p50_ms"]
            if baseline["delivery_p50_ms"]
            else 0.0
        )
        return {
            "algorithm": algorithm,
            "policy": policy,
            "n": n,
            "rate": rate,
            "cycles": cycles,
            "k": k,
            "shards": 1 if shards is None else shards,
            "baseline": baseline,
            "stalled": stalled,
            "stalled_overhead_p50": round(overhead, 3),
            "stalled_dropped": hub_stats["dropped"],
            "hub": hub_stats,
        }
    finally:
        if stalled_socket is not None:
            stalled_socket.close()
        if healthy is not None:
            healthy.close()
        server.stop()
        monitor.close()


def format_serve_report(result: Dict) -> str:
    """Human-readable two-line summary of one serve capture."""
    baseline = result["baseline"]
    stalled = result["stalled"]
    return (
        f"serve [{result['algorithm']} x{result['shards']} "
        f"{result['policy']}]: baseline delivery "
        f"p50={baseline['delivery_p50_ms']:.2f}ms "
        f"p99={baseline['delivery_p99_ms']:.2f}ms over "
        f"{baseline['deliveries']} deltas\n"
        f"  with stalled subscriber: "
        f"p50={stalled['delivery_p50_ms']:.2f}ms "
        f"p99={stalled['delivery_p99_ms']:.2f}ms "
        f"(overhead x{result['stalled_overhead_p50']:.2f}, "
        f"{result['stalled_dropped']} deltas dropped on the stalled "
        f"queue)"
    )
