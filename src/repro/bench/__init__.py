"""Benchmark harness: workload construction, runners, paper-style reports.

The modules here are imported by the ``benchmarks/`` pytest suite but
are part of the library proper so downstream users can rerun any paper
experiment at any scale (including the paper's original parameters —
see :func:`repro.bench.workloads.paper_defaults`).

Performance notes: all hot paths run on the batch-scoring subsystem of
:mod:`repro.core.batch`, which selects a NumPy backend at import time
and falls back to exact pure-Python loops when NumPy is absent (or
``REPRO_BATCH_BACKEND=python`` is set). Batched and scalar scores are
bitwise identical, so benchmark results never depend on the backend —
only the times do. ``python -m repro.bench run --json <path>`` emits
machine-readable metrics for cross-commit comparisons (the committed
``BENCH_PR1.json`` is such a capture); ``make bench-smoke`` is the
one-command gate for perf PRs. Details: ``docs/PERFORMANCE.md``.
"""

from repro.bench.reporting import format_table, print_series
from repro.bench.runner import RunResult, compare_algorithms, run_workload
from repro.bench.workloads import (
    WorkloadSpec,
    default_cells_per_axis,
    paper_defaults,
    scaled_defaults,
)

__all__ = [
    "RunResult",
    "WorkloadSpec",
    "compare_algorithms",
    "default_cells_per_axis",
    "format_table",
    "paper_defaults",
    "print_series",
    "run_workload",
    "scaled_defaults",
]
