"""Benchmark harness: workload construction, runners, paper-style reports.

The modules here are imported by the ``benchmarks/`` pytest suite but
are part of the library proper so downstream users can rerun any paper
experiment at any scale (including the paper's original parameters —
see :func:`repro.bench.workloads.paper_defaults`).
"""

from repro.bench.reporting import format_table, print_series
from repro.bench.runner import RunResult, compare_algorithms, run_workload
from repro.bench.workloads import (
    WorkloadSpec,
    default_cells_per_axis,
    paper_defaults,
    scaled_defaults,
)

__all__ = [
    "RunResult",
    "WorkloadSpec",
    "compare_algorithms",
    "default_cells_per_axis",
    "format_table",
    "paper_defaults",
    "print_series",
    "run_workload",
    "scaled_defaults",
]
