"""Workload construction mirroring the paper's Table 1.

The paper's defaults (d=4, N=1M, r=10K, Q=1K, k=20, ~12^4 grid cells,
100 timestamps) target a 2006-era C implementation. A pure-Python
reproduction runs the *same experiment design* at a scaled-down
operating point — :func:`scaled_defaults` — chosen so the full
benchmark suite finishes in minutes while keeping every ratio the
figures depend on (r = N/100, Q ≫ 1, k ≪ N, grid occupancy near the
paper's ~48 points/cell). Set the environment variable
``REPRO_SCALE`` (default 1.0) to scale N, r and Q together — e.g.
``REPRO_SCALE=50`` restores the paper's original N=1M.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.queries import TopKQuery
from repro.core.scoring import (
    LinearFunction,
    PreferenceFunction,
    ProductFunction,
    QuadraticFunction,
)

#: the paper's measured-optimum grid occupancy (1M records / 12^4 cells)
PAPER_POINTS_PER_CELL = 1_000_000 / 12**4


def env_scale() -> float:
    """Global workload scale factor from ``REPRO_SCALE`` (default 1)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def default_cells_per_axis(dims: int, n: int = 20_000) -> int:
    """Grid granularity matching the paper's occupancy sweet spot.

    The paper fixes ~12^4 total cells for N=1M (≈48 points per cell)
    across all dimensionalities. We solve for the per-axis count that
    reproduces that occupancy at the configured N.
    """
    target_cells = max(1.0, n / PAPER_POINTS_PER_CELL)
    per_axis = round(target_cells ** (1.0 / dims))
    return max(2, int(per_axis))


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """One experiment configuration (a point in Table 1's space)."""

    dims: int = 4
    n: int = 20_000  # window size N (count-based)
    rate: int = 200  # arrivals per cycle r
    num_queries: int = 20  # Q
    k: int = 20
    cycles: int = 10  # measured timestamps (paper: 100)
    distribution: str = "ind"
    function_family: str = "linear"  # linear | product | quadratic
    seed: int = 1
    cells_per_axis: Optional[int] = None  # None = auto sweet spot
    #: None = independent random coefficients (the paper's setup).
    #: 0..1 = draw every query near one random base preference vector;
    #: 1.0 means identical queries, lower values widen the jitter —
    #: the knob the grouped-traversal workloads sweep Q against.
    query_similarity: Optional[float] = None
    #: 1 = in-process execution (the default). N > 1 = partition the
    #: queries across N worker processes (bitwise-identical results;
    #: see :mod:`repro.parallel`).
    shards: int = 1
    #: None = local execution per ``shards``. A tuple of
    #: ``"host:port"`` addresses = run the shards on those remote
    #: shard hosts over TCP instead (:mod:`repro.cluster`); ``shards``
    #: is ignored when set. Results stay bitwise-identical; the run
    #: additionally records bytes-on-the-wire per cycle.
    shard_hosts: Optional[tuple] = None
    #: True = exercise the handle API mid-run: a deterministic
    #: schedule of ``handle.update(k=…)`` mutations and
    #: ``pause()``/``resume()`` churn runs between measured cycles
    #: (identical across algorithms, so results stay comparable);
    #: the mutation cost is recorded separately from maintenance.
    churn: bool = False
    #: None = exact monitoring (the default). A float ε opts every
    #: query into the sketch-backed approximate tier with an
    #: ``Accuracy(epsilon=ε)`` contract when the run's algorithm is
    #: ``"approx"`` (exact algorithms refuse contracts, so the field
    #: is ignored for them to keep mixed comparisons runnable).
    accuracy: Optional[float] = None

    def grid_cells_per_axis(self) -> int:
        if self.cells_per_axis is not None:
            return self.cells_per_axis
        return default_cells_per_axis(self.dims, self.n)

    def with_(self, **changes) -> "WorkloadSpec":
        """Functional update (dataclasses.replace sugar)."""
        return replace(self, **changes)

    def make_functions(self) -> List[PreferenceFunction]:
        """Q preference functions with random coefficients aᵢ ∈ [0, 1].

        Deterministic in ``seed`` so every algorithm sees identical
        queries (Section 8: "scoring functions of the form
        f(p) = Σ aᵢ·p.xᵢ where the aᵢ coefficients are randomly chosen
        between 0 and 1").
        """
        rng = random.Random(self.seed * 7919 + 13)
        if self.query_similarity is not None and not (
            0.0 <= self.query_similarity <= 1.0
        ):
            raise ValueError(
                f"query_similarity must be in [0, 1], "
                f"got {self.query_similarity}"
            )
        base: Optional[List[float]] = None
        if self.query_similarity is not None:
            base = [rng.uniform(0.3, 0.9) for _ in range(self.dims)]
            spread = (1.0 - self.query_similarity) * 0.5
        functions: List[PreferenceFunction] = []
        for _ in range(self.num_queries):
            if base is None:
                coefficients = [
                    rng.uniform(0.05, 1.0) for _ in range(self.dims)
                ]
            else:
                coefficients = [
                    min(1.0, max(0.05, value + rng.uniform(-spread, spread)))
                    for value in base
                ]
            if self.function_family == "linear":
                functions.append(LinearFunction(coefficients))
            elif self.function_family == "product":
                functions.append(ProductFunction(coefficients))
            elif self.function_family == "quadratic":
                functions.append(QuadraticFunction(coefficients))
            else:
                raise ValueError(
                    f"unknown function family {self.function_family!r}"
                )
        return functions

    def make_queries(self) -> List[TopKQuery]:
        return [
            TopKQuery(function, self.k, label=f"bench-{index}")
            for index, function in enumerate(self.make_functions())
        ]


def scaled_defaults(**overrides) -> WorkloadSpec:
    """The scaled-down default operating point (see module docstring)."""
    scale = env_scale()
    spec = WorkloadSpec(
        n=int(20_000 * scale),
        rate=int(200 * scale),
        num_queries=max(1, int(20 * scale)),
    )
    return spec.with_(**overrides) if overrides else spec


def paper_defaults(**overrides) -> WorkloadSpec:
    """The paper's original Table 1 defaults (heavy: N=1M, Q=1K)."""
    spec = WorkloadSpec(
        dims=4,
        n=1_000_000,
        rate=10_000,
        num_queries=1_000,
        k=20,
        cycles=100,
        cells_per_axis=12,
    )
    return spec.with_(**overrides) if overrides else spec


#: Table 1 — parameter ranges of the paper's evaluation (documentation
#: + the conftest banner of the benchmark suite).
TABLE_1 = {
    "Data dimensionality (d)": {"default": 4, "range": [2, 3, 4, 5, 6]},
    "Data cardinality (N)": {
        "default": "1M",
        "range": ["1M", "2M", "3M", "4M", "5M"],
    },
    "Arrival rate (r)": {
        "default": "10K",
        "range": ["1K", "5K", "10K", "50K", "100K"],
    },
    "Query cardinality (Q)": {
        "default": "1K",
        "range": ["100", "500", "1K", "2K", "5K"],
    },
    "Result cardinality (k)": {
        "default": 20,
        "range": [1, 5, 10, 20, 50, 100],
    },
}
