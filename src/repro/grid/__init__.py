"""Regular-grid index over the d-dimensional workspace (Section 4.1).

The grid is the only index the system needs: cells hold *point lists*
(the valid records inside the cell) and *influence lists* (the ids of
the queries whose influence region intersects the cell). The top-k
computation module in :mod:`repro.grid.traversal` walks cells in
descending ``maxscore`` order and provably touches only the cells that
intersect a query's influence region.
"""

from repro.grid.cell import Cell
from repro.grid.grid import Grid
from repro.grid.traversal import (
    TraversalOutcome,
    collect_cells_above_threshold,
    compute_top_k,
)

__all__ = [
    "Cell",
    "Grid",
    "TraversalOutcome",
    "collect_cells_above_threshold",
    "compute_top_k",
]
