"""The naive top-k cell scan the paper argues against (Section 4.2).

"A naïve way to obtain the result of a query q is to sort all cells c
according to maxscore(c), and process them in descending maxscore(c)
order. [...] Nevertheless, it may be very expensive in practice
because it requires computing the maxscore for all cells and
subsequently sorting them."

This strawman is implemented faithfully so the design-choice ablation
(``benchmarks/test_ablation_design_choices.py``) can quantify what the
heap traversal of Figure 6 saves: the naive scan touches (scores and
sorts) *every* cell of the grid up front, while the heap visits only
the influence region plus its one-cell boundary. Both produce
identical results — the tests assert that too.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.results import ResultEntry
from repro.core.scoring import PreferenceFunction
from repro.core.stats import OpCounters
from repro.grid.grid import Coords, Grid
from repro.grid.traversal import TraversalOutcome


def _all_coords(grid: Grid) -> List[Coords]:
    coords: List[Tuple[int, ...]] = [()]
    for _ in range(grid.dims):
        coords = [
            prefix + (index,)
            for prefix in coords
            for index in range(grid.cells_per_axis)
        ]
    return coords


def compute_top_k_naive(
    grid: Grid,
    function: PreferenceFunction,
    k: int,
    counters: Optional[OpCounters] = None,
) -> TraversalOutcome:
    """Top-k by sorting *all* cells on maxscore (the paper's strawman).

    Returns a :class:`TraversalOutcome` shaped like the heap
    traversal's so callers can compare: ``processed`` holds the cells
    actually scanned (in visit order); ``remaining`` is empty (there
    is no heap to leave anything in — one reason TMA's lazy cleanup
    needs the real traversal).
    """
    if counters is not None:
        counters.topk_computations += 1

    ranked = sorted(
        _all_coords(grid),
        key=lambda coords: grid.maxscore(coords, function),
        reverse=True,
    )
    if counters is not None:
        # The naive method prices every cell: one maxscore evaluation
        # per cell plus the sort.
        counters.cells_enheaped += len(ranked)

    candidates: List[Tuple[float, int, object]] = []
    processed: List[Coords] = []
    for coords in ranked:
        bound = grid.maxscore(coords, function)
        if len(candidates) >= k:
            kth_score = min(candidates, key=lambda item: item[:2])[0]
            if bound < kth_score:
                break
        processed.append(coords)
        if counters is not None:
            counters.cells_processed += 1
        cell = grid.peek_cell(coords)
        if cell is None:
            continue
        for record in cell.iter_points():
            score = function.score(record.attrs)
            if counters is not None:
                counters.points_scored += 1
            entry = (score, record.rid, record)
            if len(candidates) < k:
                candidates.append(entry)
            else:
                worst = min(range(len(candidates)), key=lambda i: candidates[i][:2])
                if entry[:2] > candidates[worst][:2]:
                    candidates[worst] = entry
    entries = [
        ResultEntry(score, record)
        for score, _, record in sorted(
            candidates, key=lambda item: item[:2], reverse=True
        )
    ]
    return TraversalOutcome(entries=entries, processed=processed, remaining=[])
