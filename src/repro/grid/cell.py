"""A grid cell: geometry + point list + influence list.

Paper Section 4.1: each cell keeps (i) a list of pointers to the valid
records it covers, maintained FIFO because window eviction is FIFO, and
(ii) an *influence list* ILc with an entry for every query whose
influence region intersects the cell, "organized as a hash-table on the
query ids for supporting fast search, insertion and deletion".

The point list here is an insertion-ordered dict keyed by record id:
iteration order is FIFO (covering the sliding-window model) while
deletion by id is O(1) (covering the update-stream model of Section 7,
where the paper switches the point lists to hash tables).

On top of the dict, the cell maintains a *columnar* view for the batch
scoring kernels: :meth:`columns` returns the records as a list plus
their attributes packed by :func:`repro.core.batch.as_matrix`, so the
Figure-6 traversal scores a whole cell with one
:meth:`~repro.core.scoring.PreferenceFunction.score_batch` call. The
packed block is built lazily and cached until the next point mutation —
a cell untouched between two top-k computations (the common case: per
cycle only the cells covering that cycle's arrivals/expirations change)
re-serves its block for free, to any number of queries.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core import batch
from repro.core.tuples import StreamRecord


class Cell:
    """One grid cell. Created lazily by :class:`repro.grid.grid.Grid`."""

    __slots__ = (
        "coords",
        "lower",
        "upper",
        "points",
        "influence",
        "_col_records",
        "_col_matrix",
        "_col_scores",
    )

    def __init__(
        self,
        coords: Tuple[int, ...],
        lower: Tuple[float, ...],
        upper: Tuple[float, ...],
    ) -> None:
        self.coords = coords
        self.lower = lower
        self.upper = upper
        #: record id -> record, insertion-ordered (FIFO iteration).
        self.points: Dict[int, StreamRecord] = {}
        #: qids of queries whose influence region intersects this cell.
        self.influence: Set[int] = set()
        #: cached columnar view (records list + packed attribute block);
        #: None whenever the point list changed since the last build.
        self._col_records: Optional[List[StreamRecord]] = None
        self._col_matrix = None
        #: memoised score vectors per preference function (the dict
        #: holds the function objects themselves, so a cached entry can
        #: never be confused with a new function reusing a freed id).
        self._col_scores: Dict = {}

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return (
            f"Cell{self.coords}[{len(self.points)} pts, "
            f"{len(self.influence)} queries]"
        )

    def add_point(self, record: StreamRecord) -> None:
        self.points[record.rid] = record
        self._col_matrix = None
        if self._col_scores:
            self._col_scores.clear()

    def remove_point(self, record: StreamRecord) -> None:
        """Remove a record; KeyError if absent (callers guarantee it)."""
        del self.points[record.rid]
        self._col_matrix = None
        if self._col_scores:
            self._col_scores.clear()

    def iter_points(self) -> Iterator[StreamRecord]:
        """Valid records in this cell, oldest-first."""
        return iter(self.points.values())

    def columns(self):
        """Columnar view ``(records, matrix)`` for batch scoring.

        ``records[i]`` owns row ``i`` of ``matrix``; row order is the
        FIFO point-list order. Rebuilt lazily after mutations, cached
        otherwise. Callers must not mutate either object.
        """
        if self._col_matrix is None:
            records = list(self.points.values())
            self._col_records = records
            self._col_matrix = batch.as_matrix(
                [record.attrs for record in records]
            )
        return self._col_records, self._col_matrix

    def scored_columns(self, function):
        """``(records, scores)`` with the score vector memoised.

        Queries re-scan the same preference-optimal corner cells on
        every from-scratch computation; a cell left untouched since the
        last scan re-serves its score vector without a kernel call.
        The memo maps the function *object* to its vector and is
        cleared on any point mutation.
        """
        scores = self._col_scores.get(function)
        if scores is None:
            records, matrix = self.columns()
            scores = function.score_batch(matrix)
            self._col_scores[function] = scores
        else:
            records = self._col_records
        return records, scores
