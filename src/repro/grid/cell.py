"""A grid cell: geometry + point list + influence list.

Paper Section 4.1: each cell keeps (i) a list of pointers to the valid
records it covers, maintained FIFO because window eviction is FIFO, and
(ii) an *influence list* ILc with an entry for every query whose
influence region intersects the cell, "organized as a hash-table on the
query ids for supporting fast search, insertion and deletion".

The point list here is an insertion-ordered dict keyed by record id:
iteration order is FIFO (covering the sliding-window model) while
deletion by id is O(1) (covering the update-stream model of Section 7,
where the paper switches the point lists to hash tables).
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.core.tuples import StreamRecord


class Cell:
    """One grid cell. Created lazily by :class:`repro.grid.grid.Grid`."""

    __slots__ = ("coords", "lower", "upper", "points", "influence")

    def __init__(
        self,
        coords: Tuple[int, ...],
        lower: Tuple[float, ...],
        upper: Tuple[float, ...],
    ) -> None:
        self.coords = coords
        self.lower = lower
        self.upper = upper
        #: record id -> record, insertion-ordered (FIFO iteration).
        self.points: Dict[int, StreamRecord] = {}
        #: qids of queries whose influence region intersects this cell.
        self.influence: Set[int] = set()

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return (
            f"Cell{self.coords}[{len(self.points)} pts, "
            f"{len(self.influence)} queries]"
        )

    def add_point(self, record: StreamRecord) -> None:
        self.points[record.rid] = record

    def remove_point(self, record: StreamRecord) -> None:
        """Remove a record; KeyError if absent (callers guarantee it)."""
        del self.points[record.rid]

    def iter_points(self) -> Iterator[StreamRecord]:
        """Valid records in this cell, oldest-first."""
        return iter(self.points.values())
