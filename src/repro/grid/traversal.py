"""The top-k computation module (paper Figure 6).

Visits grid cells in descending ``maxscore`` order using a max-heap
seeded with the cell at the preference-optimal corner of the workspace.
After processing a cell, the heap receives one neighbour per dimension,
one step down the preference order (Figure 5(b)) — monotonicity
guarantees the cell with the next-highest maxscore is always already in
the heap. The search stops when the best remaining heap key can no
longer beat the current kth result, so only cells intersecting the
query's influence region are processed (the paper's minimality
property).

Two deliberate deviations from the paper's pseudo-code, both documented
here because tests rely on them:

1. **Tie-aware termination.** The paper stops when ``maxscore <=
   q.top_score``. We stop only when ``maxscore < top_score`` (strict),
   i.e. cells whose maxscore *equals* the kth score are still
   processed. Under the library's canonical rank order ``(score, rid)``
   a record tying the kth score with a later arrival outranks it, and
   such a record may sit in an equal-maxscore cell; processing those
   cells makes every algorithm agree with the brute-force oracle even
   on tied scores. With continuous-valued data (all benchmarks) the
   extra processed cells are measure-zero.
2. **Neighbours are en-heaped unconditionally** (as the paper's code
   also does — see its lines 9–12 and the remark below Figure 6): the
   entries left in the heap at termination are returned so TMA can
   seed its lazy influence-list cleanup from them (Figure 9 line 14).

The optional ``region`` argument implements constrained top-k
computation (Section 7, Figure 12): the traversal is restricted to
cells intersecting the constraint rectangle, keys become the maxscore
of the *clipped* cell, and points outside the region are skipped.

Performance: the unconstrained scan consumes each cell's columnar
block in one ``score_batch`` kernel call (see :mod:`repro.core.batch`),
heap keys for linear functions come from precomputed per-dimension
corner tables (:func:`_linear_maxscore_fn`), and counters go through a
null object when the caller passes none — the inner loop carries no
``if counters`` branches. All three are exact: batched scores and
table lookups are bitwise identical to their scalar counterparts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core import batch
from repro.core.regions import Rectangle
from repro.core.results import ResultEntry
from repro.core.scoring import LinearFunction, PreferenceFunction
from repro.core.stats import NULL_COUNTERS, OpCounters
from repro.grid.grid import Coords, Grid


@dataclass(slots=True)
class TraversalOutcome:
    """What one run of the top-k computation module produced.

    Attributes:
        entries: up to k results, best-first in canonical order.
        processed: coords of de-heaped (scanned) cells — exactly the
            cells whose influence list must reference the query.
        remaining: coords left in the heap at termination — the seeds
            for TMA's influence-list cleanup flood.
    """

    entries: List[ResultEntry] = field(default_factory=list)
    processed: List[Coords] = field(default_factory=list)
    remaining: List[Coords] = field(default_factory=list)

    @property
    def kth_key(self) -> Tuple[float, int]:
        """Canonical key of the worst reported entry (gate for admission)."""
        if not self.entries:
            return (float("-inf"), -1)
        worst = self.entries[-1]
        return (worst.score, worst.record.rid)


def start_coords(
    grid: Grid,
    function: PreferenceFunction,
    region: Optional[Rectangle] = None,
) -> Coords:
    """First cell of the traversal: the preference-optimal corner cell.

    With a constraint ``region`` this is the cell holding the region's
    optimal corner (Figure 12 starts at c5,5); without one, the cell at
    the workspace corner maximising the function (Figure 5(b), c6,6).
    """
    if region is None:
        return grid.best_corner_coords(function)
    return _region_start_coords(grid, function, region)


def _region_start_coords(
    grid: Grid, function: PreferenceFunction, region: Rectangle
) -> Coords:
    """Cell holding the preference-optimal corner of ``region``.

    The optimal corner may lie exactly on a cell boundary (e.g. region
    upper bound 0.5 on a 0.1-grid); on increasing dimensions the
    boundary belongs to the *previous* cell because the region is
    upper-open, so the index is pulled back to keep the start cell
    intersecting the region.
    """
    g = grid.cells_per_axis
    coords: List[int] = []
    for dim, direction in enumerate(function.directions):
        if direction > 0:
            scaled = region.upper[dim] * g
            index = int(scaled)
            if index == scaled:  # on a boundary: step back inside
                index -= 1
        else:
            index = int(region.lower[dim] * g)
        coords.append(min(g - 1, max(0, index)))
    return tuple(coords)


def _linear_corner_tables(
    grid: Grid, function: LinearFunction
) -> List[List[float]]:
    """Per-dimension best-corner score contributions of a linear query.

    ``tables[dim][index]`` is the contribution of dimension ``dim`` to
    the maxscore of any cell whose coordinate along that axis is
    ``index``; a cell's maxscore is the sum over dimensions. Built with
    the exact operations ``bounds_of`` + ``score`` would perform, so
    lookup sums are bitwise identical to ``grid.maxscore``.
    """
    delta = grid.delta
    per_axis = grid.cells_per_axis
    tables: List[List[float]] = []
    for dim, direction in enumerate(function.directions):
        weight = function.weights[dim]
        offset = 1 if direction > 0 else 0
        tables.append(
            [weight * ((index + offset) * delta) for index in range(per_axis)]
        )
    return tables


def _linear_maxscore_fn(
    grid: Grid, function: LinearFunction
) -> Callable[[Coords], float]:
    """Precomputed cell-maxscore evaluator for linear functions.

    A linear function loses a *constant* ``|a_i| * delta`` of maxscore
    per one-cell step down the preference order along dimension ``i``
    — the property :func:`_has_constant_maxscore_decrements` probes
    via :meth:`~repro.core.scoring.PreferenceFunction.maxscore_delta`
    — so cell maxscores need no per-push ``bounds_of`` + ``score``
    round trip. Rather than subtracting the decrement incrementally —
    which would drift from ``grid.maxscore`` by accumulated rounding —
    each dimension gets a table of best-corner contributions
    (:func:`_linear_corner_tables`), so the traversal's tie-aware
    termination sees the same keys as the generic path either way.
    """
    tables = _linear_corner_tables(grid, function)

    def maxscore_of(coords: Coords) -> float:
        total = 0.0
        for dim, table in enumerate(tables):
            total += table[coords[dim]]
        return total

    return maxscore_of


def _has_constant_maxscore_decrements(
    grid: Grid, function: PreferenceFunction
) -> bool:
    """Whether every dimension's per-step maxscore drop is constant.

    True exactly when the precomputed-table evaluator applies. The
    table construction additionally needs the linear coefficients, so
    callers gate on ``type(function) is LinearFunction`` too —
    subclasses with overridden ``score`` must take the generic path
    to keep keys bitwise exact.
    """
    delta = grid.delta
    return all(
        function.maxscore_delta(dim, delta) is not None
        for dim in range(function.dims)
    )


def compute_top_k(
    grid: Grid,
    function: PreferenceFunction,
    k: int,
    counters: Optional[OpCounters] = None,
    region: Optional[Rectangle] = None,
    point_filter: Optional[Callable] = None,
) -> TraversalOutcome:
    """Run the top-k computation module of Figure 6.

    The unconstrained, unfiltered path (every from-scratch TMA/SMA
    computation) is batched: each processed cell is scored with one
    :meth:`~repro.core.scoring.PreferenceFunction.score_batch` call
    over its columnar block, and candidates below the current kth key
    are dropped by a vector prefilter before any per-record work.

    Args:
        grid: the index over the valid records.
        function: the query's monotone preference function.
        k: result cardinality.
        counters: operation counters to update (optional).
        region: constraint rectangle for constrained queries.
        point_filter: extra record predicate (record -> bool).

    Returns:
        A :class:`TraversalOutcome`; ``entries`` holds fewer than k
        results only when fewer than k eligible records are valid.
    """
    if counters is None:
        counters = NULL_COUNTERS
    counters.topk_computations += 1

    # Candidate top-k as a min-heap of canonical keys, so the current
    # kth key is O(1) to read and O(log k) to improve.
    candidates: List[Tuple[float, int, object]] = []

    if (
        region is None
        and type(function) is LinearFunction
        and _has_constant_maxscore_decrements(grid, function)
    ):
        cell_maxscore = _linear_maxscore_fn(grid, function)
    else:
        cell_maxscore = None
    plain_scan = region is None and point_filter is None

    heap: List[Tuple[float, int, Coords]] = []  # (-maxscore, seq, coords)
    seq = 0
    enheaped: Set[Coords] = set()
    processed: List[Coords] = []

    def push(coords: Coords) -> None:
        nonlocal seq
        if coords in enheaped:
            return
        if cell_maxscore is not None:
            key = cell_maxscore(coords)
        elif region is None:
            key = grid.maxscore(coords, function)
        else:
            clipped = grid.maxscore_in_region(coords, function, region)
            if clipped is None:
                return  # cell disjoint from the constraint region
            key = clipped
        enheaped.add(coords)
        seq += 1
        heapq.heappush(heap, (-key, seq, coords))
        counters.cells_enheaped += 1

    push(start_coords(grid, function, region))

    while heap:
        best_key = -heap[0][0]
        # Tie-aware termination: strictly worse cells cannot contribute
        # (see module docstring, deviation 1).
        if len(candidates) >= k and best_key < candidates[0][0]:
            break
        _, _, coords = heapq.heappop(heap)
        processed.append(coords)
        counters.cells_processed += 1

        cell = grid.peek_cell(coords)
        if cell is not None and cell.points:
            if plain_scan:
                # Batched fast path: one kernel call per cell (memoised
                # while the cell stays unmutated), then a vector
                # prefilter against the current kth score (ties
                # included — equal scores can still win on rid).
                records, scores = cell.scored_columns(function)
                counters.points_scored += len(records)
                if len(candidates) >= k:
                    survivors, values = batch.take_at_least(
                        scores, candidates[0][0]
                    )
                else:
                    survivors = range(len(records))
                    values = batch.to_list(scores)
                for index, value in zip(survivors, values):
                    record = records[index]
                    entry = (value, record.rid, record)
                    if len(candidates) < k:
                        heapq.heappush(candidates, entry)
                    elif entry[:2] > candidates[0][:2]:
                        heapq.heapreplace(candidates, entry)
            else:
                # Constrained / filtered scan: per-record checks decide
                # what gets scored, so counters keep their meaning.
                for record in cell.iter_points():
                    if region is not None and not region.contains(
                        record.attrs
                    ):
                        continue
                    if point_filter is not None and not point_filter(record):
                        continue
                    score = function.score(record.attrs)
                    counters.points_scored += 1
                    entry = (score, record.rid, record)
                    if len(candidates) < k:
                        heapq.heappush(candidates, entry)
                    elif entry[:2] > candidates[0][:2]:
                        heapq.heapreplace(candidates, entry)

        for neighbour in grid.steps_toward_worse(coords, function):
            push(neighbour)

    remaining = [item[2] for item in heap]
    entries = [
        ResultEntry(score, record)
        for score, _, record in sorted(
            candidates, key=lambda item: item[:2], reverse=True
        )
    ]
    return TraversalOutcome(
        entries=entries, processed=processed, remaining=remaining
    )


class _GroupScorer:
    """Stacked per-cell pricing and scoring for one traversal group.

    Holds the group's weight matrix and per-dimension corner tables in
    the batch backend's native layout, so one grid sweep can price a
    cell for every member (:meth:`maxscores_of`) and score a cell's
    columnar block for every member (:meth:`score_block`) in a handful
    of array operations.

    Exactness: every element of every result is produced by the same
    floating-point operations in the same order as the per-query code
    it replaces — :meth:`maxscores_of` accumulates the same
    :func:`_linear_corner_tables` entries dimension by dimension, and
    :meth:`score_block` runs the column-at-a-time accumulation of
    :meth:`~repro.core.scoring.LinearFunction.score_batch` broadcast
    over the group — so per-query decisions taken on these values are
    bitwise identical to a solo traversal's.
    """

    __slots__ = (
        "functions",
        "dims",
        "_tables",
        "_weight_columns",
        "_key_tables",
    )

    def __init__(self, grid: Grid, functions: Sequence[LinearFunction]) -> None:
        self.functions = list(functions)
        self.dims = grid.dims
        per_query_tables = [
            _linear_corner_tables(grid, function) for function in functions
        ]
        # Heap keys come from summed per-dimension *max* contributions:
        # sum_d max_q table_q[d] >= max_q sum_d table_q[d] >= every
        # member's maxscore, and each term is non-increasing along the
        # shared step relation, so the key is a valid monotone upper
        # bound priced with d scalar lookups per cell — the same cost
        # the solo traversal pays — instead of a Q-vector reduction.
        # (Looser than the true group max only across dimensions, i.e.
        # by at most the members' per-dimension weight spread.)
        self._key_tables: List[List[float]] = [
            [
                max(tables[dim][index] for tables in per_query_tables)
                for index in range(grid.cells_per_axis)
            ]
            for dim in range(self.dims)
        ]
        if batch.np is not None:
            # tables[dim] is a (Q, g) matrix: row q = query q's
            # contribution table along `dim`.
            self._tables = [
                batch.np.array(
                    [tables[dim] for tables in per_query_tables],
                    dtype=batch.np.float64,
                )
                for dim in range(self.dims)
            ]
            self._weight_columns = [
                batch.np.array(
                    [function.weights[dim] for function in functions],
                    dtype=batch.np.float64,
                )
                for dim in range(self.dims)
            ]
        else:
            self._tables = per_query_tables  # [query][dim][index]
            self._weight_columns = None

    def group_key_of(self, coords: Coords) -> float:
        """Monotone upper bound of every member's maxscore at ``coords``."""
        total = 0.0
        for dim, table in enumerate(self._key_tables):
            total += table[coords[dim]]
        return total

    def maxscores_of(self, coords: Coords):
        """Per-query maxscore vector of the cell at ``coords``.

        NumPy: a float64 vector of length Q. Fallback: a list. Entry q
        equals ``_linear_maxscore_fn(grid, functions[q])(coords)``
        under comparisons (the vector path starts the sum from the
        first table entry instead of 0.0, which can differ only in the
        sign of a zero).
        """
        if self._weight_columns is not None:
            total = self._tables[0][:, coords[0]]
            for dim in range(1, self.dims):
                total = total + self._tables[dim][:, coords[dim]]
            return total
        out = []
        for tables in self._tables:
            total = 0.0
            for dim, table in enumerate(tables):
                total += table[coords[dim]]
            out.append(total)
        return out

    def maxscores_of_many(self, coords_list: Sequence[Coords]):
        """Per-query maxscores of many cells at once (NumPy only).

        Returns a ``(Q, P)`` matrix — column p is
        :meth:`maxscores_of` of ``coords_list[p]``, computed with the
        same dimension-by-dimension accumulation as d column gathers
        over the whole batch (the grouped post-pass classifies every
        swept cell for every member this way)."""
        np = batch.np
        index = np.asarray(coords_list)
        total = self._tables[0][:, index[:, 0]]
        for dim in range(1, self.dims):
            total = total + self._tables[dim][:, index[:, dim]]
        return total

    def score_block(self, matrix):
        """Scores of a columnar cell block for every group member.

        NumPy backend only (the traversal's fallback branch scores
        lazily per member instead): an ``(n, Q)`` matrix whose column
        q is bitwise equal to ``functions[q].score_batch(matrix)`` —
        the same column-at-a-time accumulation, broadcast over the
        group's weight columns.
        """
        out = matrix[:, 0:1] * self._weight_columns[0]
        for dim in range(1, self.dims):
            out += matrix[:, dim:dim + 1] * self._weight_columns[dim]
        return out


def _trim_shared_outcome(
    grid: Grid,
    function: LinearFunction,
    k: int,
    outcome: TraversalOutcome,
) -> TraversalOutcome:
    """A k-member's outcome derived from its weight class's shared sweep.

    The shared sweep ran the *same* preference function at a k at
    least as large, so its best-first entries prefix to this member's
    exact top-k, and its processed set is a superset of this member's:
    re-classifying against the member's own kth score (the grouped
    post-pass rule) recovers the solo processed set, with the below-
    threshold leftovers joining the cleanup seeds — the same split
    ``compute_top_k_group`` performs per member.
    """
    entries = outcome.entries[:k]
    if len(entries) >= k:
        kth_score = entries[-1].score
    else:
        kth_score = float("-inf")
    if type(function) is LinearFunction and _has_constant_maxscore_decrements(
        grid, function
    ):
        maxscore_of = _linear_maxscore_fn(grid, function)
    else:
        maxscore_of = lambda coords: grid.maxscore(coords, function)  # noqa: E731
    processed: List[Coords] = []
    stale_seeds: List[Coords] = []
    for coords in outcome.processed:
        if maxscore_of(coords) >= kth_score:
            processed.append(coords)
        else:
            stale_seeds.append(coords)
    return TraversalOutcome(
        entries=entries,
        processed=processed,
        remaining=outcome.remaining + stale_seeds,
    )


def compute_top_k_group(
    grid: Grid,
    functions: Sequence[LinearFunction],
    ks: Sequence[int],
    counters: Optional[OpCounters] = None,
) -> List[TraversalOutcome]:
    """Serve a whole group of linear queries in one Figure-6 sweep.

    All group members must be plain linear functions sharing the same
    per-dimension ``directions`` (same start corner, same step
    relation); the caller — normally
    :class:`repro.core.queries.QueryGroupRegistry` — groups by
    preference-vector similarity so members' influence staircases
    overlap heavily, but any shared-direction group is *correct*.

    One heap drives the sweep, keyed by the **group key** — a monotone
    upper bound of every member's cell maxscore priced with d scalar
    table lookups (:meth:`_GroupScorer.group_key_of`). Because the key
    upper-bounds every member and is monotone along the shared step
    relation, the heap-frontier invariant holds for the group: when
    the best remaining key drops strictly below member q's kth score,
    no unprocessed cell can contribute to q and q deactivates; the
    sweep ends when every member has. Each processed cell's columnar
    block is packed once and scored once for the whole group
    (:meth:`_GroupScorer.score_block`); the per-query survivor
    prefilter is one comparison of that score matrix against the
    vector of per-query kth scores (``gates``) — a deactivated
    member's gate can no longer be reached (every remaining score is
    strictly below its frozen kth), so the mask also retires its
    column for free.

    **Exactness contract** (asserted by the grouped parity suite): the
    returned entries are bitwise identical — same ``(score, rid)``
    order — to ``compute_top_k`` run per query, because admission uses
    kernel scores bitwise equal to the solo path's and every cell a
    solo traversal would process is processed here before its query
    deactivates. ``processed`` is also the same *set* of cells per
    query (cells with ``maxscore_q >= kth score``, recovered by a
    post-pass), though visiting order follows the group key;
    ``remaining`` seeds the same influence-cleanup flood but contains
    the group sweep's extra cells too — a superset of boundary seeds,
    which the flood's "delete only where found" rule makes harmless.

    Returns one :class:`TraversalOutcome` per query, in input order.
    """
    if not functions:
        return []
    if len(functions) != len(ks):
        raise ValueError(
            f"{len(functions)} functions but {len(ks)} k values"
        )
    for function in functions:
        if type(function) is not LinearFunction:
            raise ValueError(
                "grouped traversal requires plain LinearFunction members; "
                f"got {function!r}"
            )
        if function.directions != functions[0].directions:
            raise ValueError(
                "grouped traversal requires uniform monotonicity "
                f"directions; got {function.directions} vs "
                f"{functions[0].directions}"
            )
    # Near-identical members: queries sharing one weight vector drive
    # the same candidate ordering through the sweep, so the top-k of a
    # smaller k is a prefix of a larger one's. Collapse each weight
    # class to a single representative swept at the class's largest k
    # and serve every member from that shared outcome — aliased
    # outright when the member's k equals the swept k (the PR 8
    # duplicate-spec case), otherwise derived by trimming the shared
    # entries to the member's k and re-classifying the swept cells
    # against the member's own kth score, exactly the classification
    # the grouped post-pass performs (a cell is in the solo processed
    # set iff its maxscore reaches the kth score, and every such cell
    # is in the representative's processed set because the shared
    # sweep's kth threshold is lower). Each merged member still counts
    # as a served query / top-k computation, so counter totals match a
    # run that never deduplicated.
    class_members: Dict[Tuple[float, ...], List[int]] = {}
    for index, function in enumerate(functions):
        class_members.setdefault(tuple(function.weights), []).append(index)
    if len(class_members) < len(functions):
        order = list(class_members)
        rep_outcomes = compute_top_k_group(
            grid,
            [functions[class_members[w][0]] for w in order],
            [max(ks[index] for index in class_members[w]) for w in order],
            counters=counters,
        )
        if counters is not None:
            merged = len(functions) - len(order)
            counters.topk_computations += merged
            counters.grouped_queries_served += merged
        shared = dict(zip(order, rep_outcomes))
        results: List[Optional[TraversalOutcome]] = [None] * len(functions)
        for weights, members in class_members.items():
            outcome = shared[weights]
            swept_k = max(ks[index] for index in members)
            for index in members:
                if ks[index] == swept_k:
                    results[index] = outcome
                else:
                    results[index] = _trim_shared_outcome(
                        grid, functions[index], ks[index], outcome
                    )
        return results

    if len(functions) == 1:
        # Zero-overhead degenerate case: the solo path is the contract.
        return [compute_top_k(grid, functions[0], ks[0], counters=counters)]

    if counters is None:
        counters = NULL_COUNTERS
    counters.topk_computations += len(functions)
    counters.grouped_traversals += 1
    counters.grouped_queries_served += len(functions)

    size = len(functions)
    scorer = _GroupScorer(grid, functions)
    lead = functions[0]  # directions donor for steps_toward_worse
    np = batch.np

    # Per-query candidate top-k as min-heaps of canonical keys, plus
    # the vector of current kth scores (-inf while underfull) the
    # admission mask compares whole cell blocks against.
    candidates: List[List[Tuple[float, int, object]]] = [
        [] for _ in range(size)
    ]
    #: current kth score per query (-inf while underfull). The python
    #: list serves the per-pop deactivation check without boxing; the
    #: NumPy mirror serves the whole-block admission mask.
    gates: List[float] = [float("-inf")] * size
    gates_np = np.full(size, float("-inf")) if np is not None else None

    heap: List[Tuple[float, int, Coords]] = []
    seq = 0
    enheaped: Set[Coords] = set()
    #: every de-heaped cell; under the fallback backend each entry
    #: carries its per-query maxscore vector (needed in-loop for the
    #: skip decisions), under NumPy the vectors come from one batched
    #: post-pass gather instead.
    processed: List[Coords] = []
    processed_maxscores: List[List[float]] = []

    def push(coords: Coords) -> None:
        nonlocal seq
        if coords in enheaped:
            return
        enheaped.add(coords)
        seq += 1
        heapq.heappush(heap, (-scorer.group_key_of(coords), seq, coords))
        counters.cells_enheaped += 1

    push(start_coords(grid, lead, None))

    active = list(range(size))
    while heap and active:
        best_key = -heap[0][0]
        # Tie-aware per-query termination: q deactivates when even the
        # group's upper bound is strictly below its kth score.
        active = [q for q in active if best_key >= gates[q]]
        if not active:
            break
        _, _, coords = heapq.heappop(heap)
        processed.append(coords)
        if np is None:
            maxscores = scorer.maxscores_of(coords)
            processed_maxscores.append(maxscores)
        counters.cells_processed += 1

        cell = grid.peek_cell(coords)
        if cell is not None and cell.points:
            records, matrix = cell.columns()
            if np is not None:
                # The stacked kernel examines every (record, member)
                # pair, and the admission mask compares them all —
                # count that, mirroring the solo path's "points
                # examined" semantics.
                block = scorer.score_block(matrix)
                counters.points_scored += len(records) * size
                # One mask for every (record, query) pair: a hit must
                # reach the query's gate (ties included — equal scores
                # can still win on rid). Deactivated queries cannot
                # hit: every remaining score sits strictly below their
                # frozen gate.
                rows, cols = np.nonzero(block >= gates_np)
                if len(rows):
                    values = block[rows, cols].tolist()
                    for row, q, value in zip(
                        rows.tolist(), cols.tolist(), values
                    ):
                        cand = candidates[q]
                        record = records[row]
                        entry = (value, record.rid, record)
                        if len(cand) < ks[q]:
                            heapq.heappush(cand, entry)
                            if len(cand) == ks[q]:
                                gates[q] = gates_np[q] = cand[0][0]
                        elif entry[:2] > cand[0][:2]:
                            heapq.heapreplace(cand, entry)
                            gates[q] = gates_np[q] = cand[0][0]
            else:
                # Fallback: score lazily per member, *after* the skip
                # check — a member whose staircase misses the cell
                # pays nothing, so the fallback never scores more
                # (record, member) pairs than per-query traversals
                # would.
                for q in active:
                    cand = candidates[q]
                    k = ks[q]
                    full = len(cand) >= k
                    if full and maxscores[q] < cand[0][0]:
                        continue  # cell cannot contribute to q
                    function = scorer.functions[q]
                    scores = [function.score(row) for row in matrix]
                    counters.points_scored += len(records)
                    if full:
                        survivors, values = batch.take_at_least(
                            scores, cand[0][0]
                        )
                    else:
                        survivors = range(len(records))
                        values = scores
                    for index, value in zip(survivors, values):
                        record = records[index]
                        entry = (value, record.rid, record)
                        if len(cand) < k:
                            heapq.heappush(cand, entry)
                        elif entry[:2] > cand[0][:2]:
                            heapq.heapreplace(cand, entry)
                    if len(cand) >= k:
                        gates[q] = cand[0][0]

        for neighbour in grid.steps_toward_worse(coords, lead):
            push(neighbour)

    heap_coords = [item[2] for item in heap]
    if np is not None and processed:
        swept_maxscores = scorer.maxscores_of_many(processed)  # (Q, P)
    outcomes: List[TraversalOutcome] = []
    for q in range(size):
        cand = candidates[q]
        if len(cand) >= ks[q]:
            kth_score = cand[0][0]
        else:
            kth_score = float("-inf")
        # Post-pass recovery of the solo traversal's processed set:
        # exactly the swept cells whose maxscore for q reaches its kth
        # score (the solo sweep processes a descending-key prefix that
        # ends at that threshold). Swept-but-below cells join the
        # cleanup seeds instead, alongside the heap leftovers.
        processed_q: List[Coords] = []
        stale_seeds: List[Coords] = []
        if np is not None:
            if processed:
                keep = (swept_maxscores[q] >= kth_score).tolist()
                for index, coords in enumerate(processed):
                    if keep[index]:
                        processed_q.append(coords)
                    else:
                        stale_seeds.append(coords)
        else:
            for coords, maxscores in zip(processed, processed_maxscores):
                if maxscores[q] >= kth_score:
                    processed_q.append(coords)
                else:
                    stale_seeds.append(coords)
        entries = [
            ResultEntry(score, record)
            for score, _, record in sorted(
                cand, key=lambda item: item[:2], reverse=True
            )
        ]
        outcomes.append(
            TraversalOutcome(
                entries=entries,
                processed=processed_q,
                remaining=heap_coords + stale_seeds,
            )
        )
    return outcomes


def collect_cells_above_threshold(
    grid: Grid,
    function: PreferenceFunction,
    threshold: float,
    counters: Optional[OpCounters] = None,
) -> List[Coords]:
    """Cells whose maxscore exceeds ``threshold`` (Section 7).

    Threshold monitoring does not care about visiting order, so — as
    the paper notes — a plain list flood replaces the heap: start at
    the preference-optimal corner, expand one step down the preference
    order per dimension, prune when maxscore drops to the threshold.
    """
    if counters is None:
        counters = NULL_COUNTERS
    start = grid.best_corner_coords(function)
    result: List[Coords] = []
    seen: Set[Coords] = {start}
    frontier: List[Coords] = [start]
    if type(function) is LinearFunction and _has_constant_maxscore_decrements(
        grid, function
    ):
        cell_maxscore = _linear_maxscore_fn(grid, function)
    else:
        cell_maxscore = lambda coords: grid.maxscore(coords, function)  # noqa: E731
    while frontier:
        coords = frontier.pop()
        if cell_maxscore(coords) <= threshold:
            continue
        result.append(coords)
        counters.cells_processed += 1
        for neighbour in grid.steps_toward_worse(coords, function):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return result
