"""The top-k computation module (paper Figure 6).

Visits grid cells in descending ``maxscore`` order using a max-heap
seeded with the cell at the preference-optimal corner of the workspace.
After processing a cell, the heap receives one neighbour per dimension,
one step down the preference order (Figure 5(b)) — monotonicity
guarantees the cell with the next-highest maxscore is always already in
the heap. The search stops when the best remaining heap key can no
longer beat the current kth result, so only cells intersecting the
query's influence region are processed (the paper's minimality
property).

Two deliberate deviations from the paper's pseudo-code, both documented
here because tests rely on them:

1. **Tie-aware termination.** The paper stops when ``maxscore <=
   q.top_score``. We stop only when ``maxscore < top_score`` (strict),
   i.e. cells whose maxscore *equals* the kth score are still
   processed. Under the library's canonical rank order ``(score, rid)``
   a record tying the kth score with a later arrival outranks it, and
   such a record may sit in an equal-maxscore cell; processing those
   cells makes every algorithm agree with the brute-force oracle even
   on tied scores. With continuous-valued data (all benchmarks) the
   extra processed cells are measure-zero.
2. **Neighbours are en-heaped unconditionally** (as the paper's code
   also does — see its lines 9–12 and the remark below Figure 6): the
   entries left in the heap at termination are returned so TMA can
   seed its lazy influence-list cleanup from them (Figure 9 line 14).

The optional ``region`` argument implements constrained top-k
computation (Section 7, Figure 12): the traversal is restricted to
cells intersecting the constraint rectangle, keys become the maxscore
of the *clipped* cell, and points outside the region are skipped.

Performance: the unconstrained scan consumes each cell's columnar
block in one ``score_batch`` kernel call (see :mod:`repro.core.batch`),
heap keys for linear functions come from precomputed per-dimension
corner tables (:func:`_linear_maxscore_fn`), and counters go through a
null object when the caller passes none — the inner loop carries no
``if counters`` branches. All three are exact: batched scores and
table lookups are bitwise identical to their scalar counterparts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.core import batch
from repro.core.regions import Rectangle
from repro.core.results import ResultEntry
from repro.core.scoring import LinearFunction, PreferenceFunction
from repro.core.stats import NULL_COUNTERS, OpCounters
from repro.grid.grid import Coords, Grid


@dataclass(slots=True)
class TraversalOutcome:
    """What one run of the top-k computation module produced.

    Attributes:
        entries: up to k results, best-first in canonical order.
        processed: coords of de-heaped (scanned) cells — exactly the
            cells whose influence list must reference the query.
        remaining: coords left in the heap at termination — the seeds
            for TMA's influence-list cleanup flood.
    """

    entries: List[ResultEntry] = field(default_factory=list)
    processed: List[Coords] = field(default_factory=list)
    remaining: List[Coords] = field(default_factory=list)

    @property
    def kth_key(self) -> Tuple[float, int]:
        """Canonical key of the worst reported entry (gate for admission)."""
        if not self.entries:
            return (float("-inf"), -1)
        worst = self.entries[-1]
        return (worst.score, worst.record.rid)


def start_coords(
    grid: Grid,
    function: PreferenceFunction,
    region: Optional[Rectangle] = None,
) -> Coords:
    """First cell of the traversal: the preference-optimal corner cell.

    With a constraint ``region`` this is the cell holding the region's
    optimal corner (Figure 12 starts at c5,5); without one, the cell at
    the workspace corner maximising the function (Figure 5(b), c6,6).
    """
    if region is None:
        return grid.best_corner_coords(function)
    return _region_start_coords(grid, function, region)


def _region_start_coords(
    grid: Grid, function: PreferenceFunction, region: Rectangle
) -> Coords:
    """Cell holding the preference-optimal corner of ``region``.

    The optimal corner may lie exactly on a cell boundary (e.g. region
    upper bound 0.5 on a 0.1-grid); on increasing dimensions the
    boundary belongs to the *previous* cell because the region is
    upper-open, so the index is pulled back to keep the start cell
    intersecting the region.
    """
    g = grid.cells_per_axis
    coords: List[int] = []
    for dim, direction in enumerate(function.directions):
        if direction > 0:
            scaled = region.upper[dim] * g
            index = int(scaled)
            if index == scaled:  # on a boundary: step back inside
                index -= 1
        else:
            index = int(region.lower[dim] * g)
        coords.append(min(g - 1, max(0, index)))
    return tuple(coords)


def _linear_maxscore_fn(
    grid: Grid, function: LinearFunction
) -> Callable[[Coords], float]:
    """Precomputed cell-maxscore evaluator for linear functions.

    A linear function loses a *constant* ``|a_i| * delta`` of maxscore
    per one-cell step down the preference order along dimension ``i``
    — the property :func:`_has_constant_maxscore_decrements` probes
    via :meth:`~repro.core.scoring.PreferenceFunction.maxscore_delta`
    — so cell maxscores need no per-push ``bounds_of`` + ``score``
    round trip. Rather than subtracting the decrement incrementally —
    which would drift from ``grid.maxscore`` by accumulated rounding —
    each dimension gets a table of best-corner contributions built
    with the exact operations ``bounds_of``/``score`` would perform,
    so lookup sums are bitwise identical to the generic path and the
    traversal's tie-aware termination sees the same keys either way.
    """
    delta = grid.delta
    per_axis = grid.cells_per_axis
    tables: List[List[float]] = []
    for dim, direction in enumerate(function.directions):
        weight = function.weights[dim]
        offset = 1 if direction > 0 else 0
        tables.append(
            [weight * ((index + offset) * delta) for index in range(per_axis)]
        )

    def maxscore_of(coords: Coords) -> float:
        total = 0.0
        for dim, table in enumerate(tables):
            total += table[coords[dim]]
        return total

    return maxscore_of


def _has_constant_maxscore_decrements(
    grid: Grid, function: PreferenceFunction
) -> bool:
    """Whether every dimension's per-step maxscore drop is constant.

    True exactly when the precomputed-table evaluator applies. The
    table construction additionally needs the linear coefficients, so
    callers gate on ``type(function) is LinearFunction`` too —
    subclasses with overridden ``score`` must take the generic path
    to keep keys bitwise exact.
    """
    delta = grid.delta
    return all(
        function.maxscore_delta(dim, delta) is not None
        for dim in range(function.dims)
    )


def compute_top_k(
    grid: Grid,
    function: PreferenceFunction,
    k: int,
    counters: Optional[OpCounters] = None,
    region: Optional[Rectangle] = None,
    point_filter: Optional[Callable] = None,
) -> TraversalOutcome:
    """Run the top-k computation module of Figure 6.

    The unconstrained, unfiltered path (every from-scratch TMA/SMA
    computation) is batched: each processed cell is scored with one
    :meth:`~repro.core.scoring.PreferenceFunction.score_batch` call
    over its columnar block, and candidates below the current kth key
    are dropped by a vector prefilter before any per-record work.

    Args:
        grid: the index over the valid records.
        function: the query's monotone preference function.
        k: result cardinality.
        counters: operation counters to update (optional).
        region: constraint rectangle for constrained queries.
        point_filter: extra record predicate (record -> bool).

    Returns:
        A :class:`TraversalOutcome`; ``entries`` holds fewer than k
        results only when fewer than k eligible records are valid.
    """
    if counters is None:
        counters = NULL_COUNTERS
    counters.topk_computations += 1

    # Candidate top-k as a min-heap of canonical keys, so the current
    # kth key is O(1) to read and O(log k) to improve.
    candidates: List[Tuple[float, int, object]] = []

    if (
        region is None
        and type(function) is LinearFunction
        and _has_constant_maxscore_decrements(grid, function)
    ):
        cell_maxscore = _linear_maxscore_fn(grid, function)
    else:
        cell_maxscore = None
    plain_scan = region is None and point_filter is None

    heap: List[Tuple[float, int, Coords]] = []  # (-maxscore, seq, coords)
    seq = 0
    enheaped: Set[Coords] = set()
    processed: List[Coords] = []

    def push(coords: Coords) -> None:
        nonlocal seq
        if coords in enheaped:
            return
        if cell_maxscore is not None:
            key = cell_maxscore(coords)
        elif region is None:
            key = grid.maxscore(coords, function)
        else:
            clipped = grid.maxscore_in_region(coords, function, region)
            if clipped is None:
                return  # cell disjoint from the constraint region
            key = clipped
        enheaped.add(coords)
        seq += 1
        heapq.heappush(heap, (-key, seq, coords))
        counters.cells_enheaped += 1

    push(start_coords(grid, function, region))

    while heap:
        best_key = -heap[0][0]
        # Tie-aware termination: strictly worse cells cannot contribute
        # (see module docstring, deviation 1).
        if len(candidates) >= k and best_key < candidates[0][0]:
            break
        _, _, coords = heapq.heappop(heap)
        processed.append(coords)
        counters.cells_processed += 1

        cell = grid.peek_cell(coords)
        if cell is not None and cell.points:
            if plain_scan:
                # Batched fast path: one kernel call per cell (memoised
                # while the cell stays unmutated), then a vector
                # prefilter against the current kth score (ties
                # included — equal scores can still win on rid).
                records, scores = cell.scored_columns(function)
                counters.points_scored += len(records)
                if len(candidates) >= k:
                    survivors, values = batch.take_at_least(
                        scores, candidates[0][0]
                    )
                else:
                    survivors = range(len(records))
                    values = batch.to_list(scores)
                for index, value in zip(survivors, values):
                    record = records[index]
                    entry = (value, record.rid, record)
                    if len(candidates) < k:
                        heapq.heappush(candidates, entry)
                    elif entry[:2] > candidates[0][:2]:
                        heapq.heapreplace(candidates, entry)
            else:
                # Constrained / filtered scan: per-record checks decide
                # what gets scored, so counters keep their meaning.
                for record in cell.iter_points():
                    if region is not None and not region.contains(
                        record.attrs
                    ):
                        continue
                    if point_filter is not None and not point_filter(record):
                        continue
                    score = function.score(record.attrs)
                    counters.points_scored += 1
                    entry = (score, record.rid, record)
                    if len(candidates) < k:
                        heapq.heappush(candidates, entry)
                    elif entry[:2] > candidates[0][:2]:
                        heapq.heapreplace(candidates, entry)

        for neighbour in grid.steps_toward_worse(coords, function):
            push(neighbour)

    remaining = [item[2] for item in heap]
    entries = [
        ResultEntry(score, record)
        for score, _, record in sorted(
            candidates, key=lambda item: item[:2], reverse=True
        )
    ]
    return TraversalOutcome(
        entries=entries, processed=processed, remaining=remaining
    )


def collect_cells_above_threshold(
    grid: Grid,
    function: PreferenceFunction,
    threshold: float,
    counters: Optional[OpCounters] = None,
) -> List[Coords]:
    """Cells whose maxscore exceeds ``threshold`` (Section 7).

    Threshold monitoring does not care about visiting order, so — as
    the paper notes — a plain list flood replaces the heap: start at
    the preference-optimal corner, expand one step down the preference
    order per dimension, prune when maxscore drops to the threshold.
    """
    if counters is None:
        counters = NULL_COUNTERS
    start = grid.best_corner_coords(function)
    result: List[Coords] = []
    seen: Set[Coords] = {start}
    frontier: List[Coords] = [start]
    if type(function) is LinearFunction and _has_constant_maxscore_decrements(
        grid, function
    ):
        cell_maxscore = _linear_maxscore_fn(grid, function)
    else:
        cell_maxscore = lambda coords: grid.maxscore(coords, function)  # noqa: E731
    while frontier:
        coords = frontier.pop()
        if cell_maxscore(coords) <= threshold:
            continue
        result.append(coords)
        counters.cells_processed += 1
        for neighbour in grid.steps_toward_worse(coords, function):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return result
