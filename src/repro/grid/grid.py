"""The regular grid index (paper Section 4.1).

Cell extent is ``δ = 1/g`` per axis for ``g`` cells per axis over the
unit workspace. Given a record with attributes ``(x1 .. xd)`` its
covering cell is ``c(i1 .. id)`` with ``ij = xj / δ`` — computed in
constant time, which is why the paper prefers a grid over any
hierarchical main-memory index under high update rates.

Cells are materialised lazily: a 144-per-axis 2-D grid or a 5-per-axis
6-D grid both stay cheap when queries only ever touch the cells near
the preference-optimal corner. Geometry (bounds, neighbours) works for
non-materialised cells; point/influence state forces materialisation.

Attribute values outside [0, 1] are clamped into the boundary cells.
The unit-workspace assumption is the paper's; domain adapters (e.g. the
NetFlow example) normalise attributes before insertion, and clamping
keeps a stray ``1.0`` or floating-point overshoot from crashing a
long-running monitor.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core import batch
from repro.core.errors import DimensionalityError
from repro.core.regions import Rectangle
from repro.core.scoring import PreferenceFunction
from repro.core.tuples import StreamRecord
from repro.grid.cell import Cell

Coords = Tuple[int, ...]


class Grid:
    """Lazy regular grid over ``[0, 1]^dims`` with ``cells_per_axis^dims`` cells."""

    __slots__ = (
        "dims",
        "cells_per_axis",
        "delta",
        "_cells",
        "_flat_cells",
        "_strides",
    )

    def __init__(self, dims: int, cells_per_axis: int) -> None:
        if dims < 1:
            raise DimensionalityError(f"dims must be >= 1, got {dims}")
        if cells_per_axis < 1:
            raise DimensionalityError(
                f"cells_per_axis must be >= 1, got {cells_per_axis}"
            )
        self.dims = dims
        self.cells_per_axis = cells_per_axis
        self.delta = 1.0 / cells_per_axis
        self._cells: Dict[Coords, Cell] = {}
        #: same cells keyed by row-major flat index — the batch insert/
        #: delete paths hash one machine int (computed by a vectorized
        #: dot with _strides) instead of building and hashing a tuple
        #: per record.
        self._flat_cells: Dict[int, Cell] = {}
        self._strides = tuple(
            cells_per_axis ** (dims - 1 - dim) for dim in range(dims)
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def coords_of(self, attrs) -> Coords:
        """Covering-cell coordinates of an attribute vector (clamped)."""
        if len(attrs) != self.dims:
            raise DimensionalityError(
                f"point has {len(attrs)} dims, grid has {self.dims}"
            )
        top = self.cells_per_axis - 1
        return tuple(
            min(top, max(0, int(value * self.cells_per_axis)))
            for value in attrs
        )

    def coords_of_many(self, rows: Sequence[Sequence[float]]) -> List[Coords]:
        """Covering-cell coordinates of a whole batch of rows.

        The per-record cost of :meth:`coords_of`'s validation is
        hoisted: the NumPy path verifies the whole batch shape in one
        check during packing, and the fallback pays one length
        comparison per row (no per-record call or exception setup).
        Both paths raise :class:`DimensionalityError` on any malformed
        row, exactly like the scalar method. Under NumPy the
        scale-truncate-clamp pipeline runs as three array operations;
        truncation toward zero matches the scalar ``int(value * g)``
        exactly.
        """
        if not rows:
            return []
        if batch.np is not None and len(rows) >= 8:
            if len(rows[0]) != self.dims:
                raise DimensionalityError(
                    f"batch rows have {len(rows[0])} dims, "
                    f"grid has {self.dims}"
                )
            return [tuple(row) for row in self._index_matrix(rows).tolist()]
        g = self.cells_per_axis
        top = g - 1
        dims = self.dims
        out: List[Coords] = []
        for row in rows:
            if len(row) != dims:
                raise DimensionalityError(
                    f"batch row has {len(row)} dims, grid has {dims}"
                )
            out.append(
                tuple(min(top, max(0, int(value * g))) for value in row)
            )
        return out

    def _index_matrix(self, rows: Sequence[Sequence[float]]):
        """Clipped per-dimension cell indices of a batch, as ``(n, d)``
        int64 (NumPy backend only). Truncation toward zero matches the
        scalar ``int(value * g)``; the batch shape is validated once.
        """
        np = batch.np
        g = self.cells_per_axis
        try:
            scaled = np.asarray(rows, dtype=np.float64) * g
        except ValueError as exc:  # ragged batch
            raise DimensionalityError(
                f"inhomogeneous batch rows: {exc}"
            ) from None
        if scaled.shape[1] != self.dims:
            raise DimensionalityError(
                f"batch rows have {scaled.shape[1]} dims, "
                f"grid has {self.dims}"
            )
        if np.isnan(scaled).any():
            # Match the scalar path: int(nan) raises instead of the
            # astype(int64) silently producing a clamped garbage cell.
            raise ValueError("cannot map NaN attributes to grid cells")
        return np.clip(scaled.astype(np.int64), 0, g - 1)

    def bounds_of(self, coords: Coords) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """``(lower, upper)`` corners of the cell at ``coords``."""
        lower = tuple(index * self.delta for index in coords)
        upper = tuple((index + 1) * self.delta for index in coords)
        return lower, upper

    def in_bounds(self, coords: Coords) -> bool:
        """Whether ``coords`` addresses a cell inside this grid."""
        return all(0 <= index < self.cells_per_axis for index in coords)

    def best_corner_coords(self, function: PreferenceFunction) -> Coords:
        """Cell at the workspace corner that maximises ``function``.

        For an all-increasing function this is the top-right cell
        (paper Figure 5(b), cell c6,6); a decreasing dimension flips
        that axis to index 0 (Figure 7(a) starts bottom-right).
        """
        top = self.cells_per_axis - 1
        return tuple(
            top if direction > 0 else 0 for direction in function.directions
        )

    def steps_toward_worse(
        self, coords: Coords, function: PreferenceFunction
    ) -> List[Coords]:
        """In-bounds neighbour coords one step down the preference order.

        After processing cell ci,j the paper en-heaps ci-1,j and
        ci,j-1 (for increasing dimensions; decreasing dimensions step
        +1 instead, cf. Figure 7(a)). One neighbour per dimension.
        """
        neighbours: List[Coords] = []
        for dim, direction in enumerate(function.directions):
            index = coords[dim] - direction
            if 0 <= index < self.cells_per_axis:
                neighbours.append(coords[:dim] + (index,) + coords[dim + 1:])
        return neighbours

    def maxscore(self, coords: Coords, function: PreferenceFunction) -> float:
        """Upper score bound of any point in the cell at ``coords``."""
        lower, upper = self.bounds_of(coords)
        return function.maxscore(lower, upper)

    def maxscore_in_region(
        self,
        coords: Coords,
        function: PreferenceFunction,
        region: Rectangle,
    ) -> Optional[float]:
        """Upper score bound within ``cell ∩ region``; None if disjoint."""
        lower, upper = self.bounds_of(coords)
        clipped = region.clip(lower, upper)
        if clipped is None:
            return None
        return function.maxscore(clipped.lower, clipped.upper)

    # ------------------------------------------------------------------
    # Cell storage
    # ------------------------------------------------------------------

    def get_cell(self, coords: Coords) -> Cell:
        """Materialise (if needed) and return the cell at ``coords``."""
        cell = self._cells.get(coords)
        if cell is None:
            if not self.in_bounds(coords):
                raise DimensionalityError(
                    f"cell coords {coords} outside grid of "
                    f"{self.cells_per_axis}^{self.dims}"
                )
            lower, upper = self.bounds_of(coords)
            cell = Cell(coords, lower, upper)
            self._cells[coords] = cell
            flat = 0
            for index in coords:
                flat = flat * self.cells_per_axis + index
            self._flat_cells[flat] = cell
        return cell

    def peek_cell(self, coords: Coords) -> Optional[Cell]:
        """Return the cell at ``coords`` if materialised, else None."""
        return self._cells.get(coords)

    def cells(self) -> Iterator[Cell]:
        """Iterate over materialised cells (arbitrary order)."""
        return iter(self._cells.values())

    @property
    def allocated_cells(self) -> int:
        return len(self._cells)

    @property
    def total_cells(self) -> int:
        return self.cells_per_axis**self.dims

    # ------------------------------------------------------------------
    # Point maintenance
    # ------------------------------------------------------------------

    def insert(self, record: StreamRecord) -> Cell:
        """Add ``record`` to its covering cell's point list."""
        cell = self.get_cell(self.coords_of(record.attrs))
        cell.add_point(record)
        return cell

    def delete(self, record: StreamRecord) -> Cell:
        """Remove ``record`` from its covering cell's point list."""
        cell = self.get_cell(self.coords_of(record.attrs))
        cell.remove_point(record)
        return cell

    def insert_many(self, records: Sequence[StreamRecord]) -> List[Cell]:
        """Add a batch of records; return each record's covering cell.

        The batched entry point of the cycle hot path: one vectorized
        pass replaces per-record validation, tuple building and tuple
        hashing (cells resolve through the flat-int index), and callers
        get the cells back so they can run their influence-list scans
        without a second lookup.
        """
        cells = self._cells_of_many(records)
        for record, cell in zip(records, cells):
            cell.add_point(record)
        return cells

    def delete_many(self, records: Sequence[StreamRecord]) -> List[Cell]:
        """Remove a batch of records; return each record's covering cell."""
        cells = self._cells_of_many(records)
        for record, cell in zip(records, cells):
            cell.remove_point(record)
        return cells

    def _cells_of_many(self, records: Sequence[StreamRecord]) -> List[Cell]:
        """Covering cells of a record batch, materialising as needed."""
        rows = [record.attrs for record in records]
        if batch.np is None or len(rows) < 8:
            return [self.get_cell(coords) for coords in self.coords_of_many(rows)]
        indices = self._index_matrix(rows)
        # Integer matmul: cell indices x strides is exact int
        # arithmetic, so accumulation order cannot change the result
        # (the dual-backend hazard only exists for floats).
        flats = (indices @ batch.np.asarray(self._strides)).tolist()  # repro: ignore[DET103]
        known = self._flat_cells
        cells: List[Cell] = []
        for position, flat in enumerate(flats):
            cell = known.get(flat)
            if cell is None:  # rare after warm-up: materialise via coords
                cell = self.get_cell(tuple(indices[position].tolist()))
            cells.append(cell)
        return cells

    def locate(self, record: StreamRecord) -> Cell:
        """Covering cell of ``record`` (materialising it if needed)."""
        return self.get_cell(self.coords_of(record.attrs))

    def point_count(self) -> int:
        """Total points across materialised cells (O(cells))."""
        return sum(len(cell) for cell in self._cells.values())
