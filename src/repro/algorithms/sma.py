"""SMA — the Skyband Monitoring Algorithm (paper Section 5, Figure 11).

SMA exploits the reduction of Section 3.1: the records that can appear
in any *future* top-k result are exactly the k-skyband of the valid
records in the score–time plane. Per query it therefore maintains a
:class:`~repro.skyband.skyband.ScoreTimeSkyband` — a superset of the
current answer — instead of the exact top-k, trading a little space
for far fewer from-scratch recomputations:

- an arrival beating the query's *gate* (the kth score frozen at the
  last from-scratch computation, Figure 11 line 7's comment) enters
  the skyband with dominance counter 0, bumps the counter of every
  worse entry, and evicts entries reaching DC = k;
- an expiring record is simply dropped from the skyband (it can be
  shown to be a current result member that dominates nothing);
- only when the skyband underflows k entries — all pre-computed
  replacements were consumed — does SMA fall back to the top-k
  computation module and rebuild the skyband (lines 20–22), with the
  same lazy influence-list discipline as TMA.

Under uniform data, arrivals and expirations inside the influence
region balance and the skyband hovers at ~k entries; the paper's
Table 2 (reproduced in ``benchmarks/test_table2_view_sizes.py``) shows
SMA storing far fewer extras than TSL's kmax-sized views.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.algorithms.base import MonitorAlgorithm
from repro.core.errors import QueryError
from repro.algorithms.topk_computation import (
    compute_and_install,
    compute_and_install_burst,
    compute_and_install_group,
    query_region,
    remove_query_everywhere,
)
from repro.core.batch import ArrivalScorer
from repro.core.queries import QueryGroupRegistry, TopKQuery
from repro.core.results import ResultEntry
from repro.core.tuples import MIN_RANK_KEY, RankKey, StreamRecord
from repro.grid.grid import Grid
from repro.skyband.skyband import ScoreTimeSkyband


class _SmaQueryState:
    """Per-query state: spec, skyband, and the frozen admission gate."""

    __slots__ = ("query", "region", "skyband", "gate", "needs_recompute")

    def __init__(self, query: TopKQuery) -> None:
        self.query = query
        self.region = query_region(query)
        self.skyband = ScoreTimeSkyband(query.k)
        #: kth key at the last from-scratch computation — NOT updated
        #: incrementally (Figure 11, line 7 comment).
        self.gate: RankKey = MIN_RANK_KEY
        self.needs_recompute = False

    def rebuild_from(self, entries: List[ResultEntry], counters) -> None:
        self.skyband.rebuild(entries, counters)
        if len(entries) >= self.query.k:
            worst = entries[-1]
            self.gate = (worst.score, worst.record.rid)
        else:
            self.gate = MIN_RANK_KEY

    def result_entries(self) -> List[ResultEntry]:
        return self.skyband.top()


class SkybandMonitoringAlgorithm(MonitorAlgorithm):
    """Grid-based monitoring via score–time skybands (Figure 11)."""

    name = "sma"

    def __init__(
        self, dims: int, cells_per_axis: int, grouped: bool = False
    ) -> None:
        """``grouped=True`` batches each cycle's skyband refills by
        preference-vector similarity, sharing one grid sweep per group
        (see :class:`~repro.algorithms.tma.TopKMonitoringAlgorithm`);
        results are bitwise identical to the per-query path."""
        super().__init__(dims)
        self.grid = Grid(dims, cells_per_axis)
        self.groups = QueryGroupRegistry() if grouped else None
        self._states: Dict[int, _SmaQueryState] = {}

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    def register(self, query: TopKQuery) -> List[ResultEntry]:
        if not isinstance(query, TopKQuery):
            return self._register_threshold(query)
        state = _SmaQueryState(query)
        outcome = compute_and_install(self.grid, query, self.counters)
        state.rebuild_from(outcome.entries, self.counters)
        self._states[query.qid] = state
        if self.groups is not None:
            self.groups.add(query)
        return state.result_entries()

    def register_many(
        self, queries: List[TopKQuery]
    ) -> Dict[int, List[ResultEntry]]:
        """Install a registration burst, sharing grid sweeps per group
        (see :meth:`~repro.algorithms.tma.TopKMonitoringAlgorithm.register_many`);
        each member's skyband is seeded from its exact solo outcome."""
        topk = [query for query in queries if isinstance(query, TopKQuery)]
        if self.groups is None or len(topk) < 2:
            return super().register_many(queries)
        results: Dict[int, List[ResultEntry]] = {}
        for query in queries:
            if not isinstance(query, TopKQuery):
                results[query.qid] = self._register_threshold(query)
        for query, outcome in compute_and_install_burst(
            self.grid, self.groups, topk, self.counters
        ):
            state = _SmaQueryState(query)
            state.rebuild_from(outcome.entries, self.counters)
            self._states[query.qid] = state
            results[query.qid] = state.result_entries()
        return results

    def unregister(self, qid: int) -> None:
        if qid in self._threshold_states:
            self._unregister_threshold(qid)
            return
        state = self._states.pop(qid, None)
        if state is None:
            raise self._unknown_query(qid)
        if self.groups is not None:
            self.groups.discard(qid)
        remove_query_everywhere(self.grid, state.query, self.counters)

    def current_result(self, qid: int) -> List[ResultEntry]:
        state = self._states.get(qid)
        if state is None:
            if qid in self._threshold_states:
                return self._threshold_result(qid)
            raise self._unknown_query(qid)
        return state.result_entries()

    def queries(self) -> Iterable[TopKQuery]:
        return [
            state.query for state in self._states.values()
        ] + self._threshold_queries()

    def update_query(
        self,
        qid: int,
        k: Optional[int] = None,
        function=None,
    ) -> List[ResultEntry]:
        """In-flight mutation: a pure k change rebuilds the skyband
        from the current grid (one traversal — the same work a cycle's
        skyband refill performs) without touching the query's
        registration; a preference change takes the base
        unregister/register path so the influence region moves
        wholesale. Either way the result is identical to cancelling
        and re-registering the modified query."""
        state = self._states.get(qid)
        if state is None or function is not None:
            return super().update_query(qid, k=k, function=function)
        query = state.query
        if k is None or k == query.k:
            return state.result_entries()
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        old_k = query.k
        query.k = k
        self.counters.recomputations += 1
        try:
            outcome = compute_and_install(self.grid, query, self.counters)
        except BaseException:
            query.k = old_k  # old skyband untouched: query still runs
            raise
        state.skyband = ScoreTimeSkyband(k)
        state.rebuild_from(outcome.entries, self.counters)
        return state.result_entries()

    # ------------------------------------------------------------------
    # Cycle maintenance (Figure 11)
    # ------------------------------------------------------------------

    def _apply_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:
        states = self._states
        changed: List[_SmaQueryState] = []

        # Batched grid insertion + lazily batch-scored arrivals, as in
        # TMA (see there): the kernel evaluates a query's whole arrival
        # batch on its first influence hit.
        scorer = ArrivalScorer(arrivals)
        cells = self.grid.insert_many(arrivals)
        for index, record in enumerate(arrivals):
            cell = cells[index]
            for qid in cell.influence:
                state = states.get(qid)
                if state is None:
                    continue
                self.counters.influence_checks += 1
                if state.region is not None and not state.region.contains(
                    record.attrs
                ):
                    continue
                score = scorer.score_of(state.query.function, index)
                if (score, record.rid) > state.gate:
                    self._touch(qid)
                    state.skyband.insert(score, record, self.counters)

        for record, cell in zip(expirations, self.grid.delete_many(expirations)):
            for qid in cell.influence:
                state = states.get(qid)
                if state is None:
                    continue
                self.counters.influence_checks += 1
                if record.rid in state.skyband:
                    self._touch(qid)  # before mutating, for the diff
                    state.skyband.remove_by_rid(record.rid)
                    if (
                        len(state.skyband) < state.query.k
                        and not state.needs_recompute
                    ):
                        state.needs_recompute = True
                        changed.append(state)

        refills: List[_SmaQueryState] = []
        for state in changed:
            state.needs_recompute = False
            if len(state.skyband) >= state.query.k:
                continue  # defensive: cannot refill mid-batch, but cheap
            refills.append(state)

        with self.tracer.span("skyband"):
            if self.groups is not None and len(refills) > 1:
                self._refill_grouped(refills)
            else:
                for state in refills:
                    self.counters.recomputations += 1
                    outcome = compute_and_install(
                        self.grid, state.query, self.counters
                    )
                    state.rebuild_from(outcome.entries, self.counters)

    def _refill_grouped(self, refills: List[_SmaQueryState]) -> None:
        """Skyband refills batched by similarity group (see TMA)."""
        states = {state.query.qid: state for state in refills}
        for group in self.groups.partition(
            [state.query for state in refills]
        ):
            self.counters.recomputations += len(group)
            if len(group) == 1:
                outcome = compute_and_install(
                    self.grid, group[0], self.counters
                )
                states[group[0].qid].rebuild_from(
                    outcome.entries, self.counters
                )
                continue
            outcomes = compute_and_install_group(
                self.grid, group, self.counters
            )
            for query, outcome in zip(group, outcomes):
                states[query.qid].rebuild_from(outcome.entries, self.counters)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def result_state_sizes(self) -> Dict[int, int]:
        """Skyband cardinality per query (Table 2's SMA column)."""
        sizes = {
            qid: len(state.skyband) for qid, state in self._states.items()
        }
        sizes.update(self._threshold_state_sizes())
        return sizes

    def influence_list_entries(self) -> int:
        """Total IL entries across cells (space accounting, Section 6)."""
        return sum(len(cell.influence) for cell in self.grid.cells())
