"""Common interface and change-report plumbing for monitoring algorithms.

An algorithm owns *all* of its data structures (grid or sorted lists,
per-query state). The engine owns the window and hands each cycle's
``P_ins`` / ``P_del`` batches to :meth:`MonitorAlgorithm.process_cycle`,
which returns one :class:`~repro.core.results.ResultChange` per query
whose state was touched — the paper's "report changes to the client".

Change detection works by lazy snapshots: the first time a cycle
mutates a query's result state, the previous result is stashed; at the
end of the cycle each touched query is diffed against its snapshot.
This keeps untouched queries free (no O(Q·k) per-cycle copying).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List

from repro.core.errors import QueryError
from repro.core.queries import TopKQuery
from repro.core.results import ResultChange, ResultEntry, diff_results
from repro.core.stats import OpCounters
from repro.core.tuples import StreamRecord


class MonitorAlgorithm(abc.ABC):
    """Base class for continuous top-k monitoring algorithms."""

    #: short identifier used by factories and reports ("tma", ...)
    name: str = "abstract"

    def __init__(self, dims: int) -> None:
        self.dims = dims
        self.counters = OpCounters()
        self._snapshots: Dict[int, List[ResultEntry]] = {}

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def register(self, query: TopKQuery) -> List[ResultEntry]:
        """Install a query (qid already assigned); return its initial result."""

    def register_many(
        self, queries: List[TopKQuery]
    ) -> Dict[int, List[ResultEntry]]:
        """Install a burst of queries; return initial results by qid.

        The default simply registers one by one. Grouped algorithms
        override this to serve similar members of the burst through a
        shared grid sweep (same results, less work) — the registration
        analogue of their grouped cycle recomputations.
        """
        return {query.qid: self.register(query) for query in queries}

    @abc.abstractmethod
    def unregister(self, qid: int) -> None:
        """Remove a query and every trace of it (influence lists etc.)."""

    @abc.abstractmethod
    def current_result(self, qid: int) -> List[ResultEntry]:
        """Current top-k of a query, best-first in canonical order."""

    @abc.abstractmethod
    def queries(self) -> Iterable[TopKQuery]:
        """The registered queries."""

    # ------------------------------------------------------------------
    # Stream maintenance
    # ------------------------------------------------------------------

    def process_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> Dict[int, ResultChange]:
        """Apply one processing cycle and report per-query changes.

        Arrivals are processed before expirations — the paper's TMA
        ordering (Section 4.3: handling ``P_ins`` first avoids useless
        recomputations when arrivals replace expiring results), applied
        uniformly so all algorithms see identical cycles.
        """
        self.counters.arrivals += len(arrivals)
        self.counters.expirations += len(expirations)
        self._snapshots.clear()
        self._apply_cycle(arrivals, expirations)
        changes: Dict[int, ResultChange] = {}
        for qid, before in self._snapshots.items():
            change = diff_results(qid, before, self.current_result(qid))
            if change.changed:
                changes[qid] = change
        self._snapshots.clear()
        return changes

    @abc.abstractmethod
    def _apply_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:
        """Algorithm-specific cycle maintenance."""

    # ------------------------------------------------------------------
    # Snapshot helpers for subclasses
    # ------------------------------------------------------------------

    def _touch(self, qid: int) -> None:
        """Stash the pre-cycle result of ``qid`` before its first mutation."""
        if qid not in self._snapshots:
            self._snapshots[qid] = self.current_result(qid)

    @staticmethod
    def _unknown_query(qid: int) -> QueryError:
        return QueryError(f"query {qid} is not registered with this algorithm")

    # ------------------------------------------------------------------
    # Introspection used by analysis / benchmarks
    # ------------------------------------------------------------------

    def result_state_sizes(self) -> Dict[int, int]:
        """Entries of per-query result state (view/skyband/top list).

        Used by the Table 2 benchmark; the default reports k per query.
        """
        return {query.qid: query.k for query in self.queries()}
