"""Common interface and change-report plumbing for monitoring algorithms.

An algorithm owns *all* of its data structures (grid or sorted lists,
per-query state). The engine owns the window and hands each cycle's
``P_ins`` / ``P_del`` batches to :meth:`MonitorAlgorithm.process_cycle`,
which returns one :class:`~repro.core.results.ResultChange` per query
whose state was touched — the paper's "report changes to the client".

Change detection works by lazy snapshots: the first time a cycle
mutates a query's result state, the previous result is stashed; at the
end of the cycle each touched query is diffed against its snapshot.
This keeps untouched queries free (no O(Q·k) per-cycle copying).

Beyond top-k queries, every algorithm also serves **threshold
queries** (paper Section 7: monitor all points with score above a
user-set threshold) through the same registration / cycle / change
machinery — the support lives here so the unified
:class:`~repro.core.engine.StreamMonitor` facade can mix query kinds
freely. Grid-based algorithms register threshold queries in the
influence lists of exactly the cells whose maxscore exceeds the
threshold (the paper's method); maintenance batch-scores each cycle's
arrivals per threshold query with the vector kernel, which is exact
for any algorithm (a record scoring above the threshold necessarily
lies inside the query's static influence region).

**In-flight mutation**: :meth:`MonitorAlgorithm.update_query` changes
a running query's ``k`` and/or preference function while *reusing* the
algorithm's window-derived state (grid, sorted lists) — the result is
identical to unregister + re-register with the same qid, never a
stream replay. Subclasses override it with cheaper in-place paths
(e.g. TMA trims its exact top list on a k decrease without touching
the grid).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional

from repro.core.batch import ArrivalScorer
from repro.core.errors import QueryError
from repro.core.queries import ThresholdQuery, TopKQuery
from repro.core.results import ResultChange, ResultEntry, diff_results
from repro.core.stats import OpCounters
from repro.core.tuples import StreamRecord
from repro.obs.trace import NULL_TRACER


class _ThresholdState:
    """Per-threshold-query state: spec, members, and (grid) cells."""

    __slots__ = ("query", "members", "cells")

    def __init__(self, query: ThresholdQuery) -> None:
        self.query = query
        #: rid -> ResultEntry of every valid point above the threshold.
        self.members: Dict[int, ResultEntry] = {}
        #: influence-cell coords (grid-based algorithms only).
        self.cells: List = []

    def result_entries(self) -> List[ResultEntry]:
        return sorted(
            self.members.values(),
            key=lambda entry: entry.key,
            reverse=True,
        )


class MonitorAlgorithm(abc.ABC):
    """Base class for continuous top-k monitoring algorithms."""

    #: short identifier used by factories and reports ("tma", ...)
    name: str = "abstract"

    def __init__(self, dims: int) -> None:
        self.dims = dims
        self.counters = OpCounters()
        #: observability hooks — NULL_TRACER / None until the engine
        #: (or a shard worker) calls :meth:`bind_observability`; phase
        #: spans stay unconditional no-ops when tracing is off.
        self.tracer = NULL_TRACER
        self.metrics = None
        self._snapshots: Dict[int, List[ResultEntry]] = {}
        self._threshold_states: Dict[int, _ThresholdState] = {}

    def bind_observability(self, registry, tracer) -> None:
        """Attach a metrics registry and cycle tracer.

        Called once after construction by whoever owns the cycle loop
        (engine, shard worker). ``registry`` may be ``None`` (no
        metrics) and ``tracer`` :data:`~repro.obs.trace.NULL_TRACER`
        (tracing off); algorithm code reads both through the
        ``metrics`` / ``tracer`` attributes and never branches on the
        engine's configuration directly.
        """
        self.metrics = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def register(self, query: TopKQuery) -> List[ResultEntry]:
        """Install a query (qid already assigned); return its initial result."""

    def register_many(
        self, queries: List[TopKQuery]
    ) -> Dict[int, List[ResultEntry]]:
        """Install a burst of queries; return initial results by qid.

        The default simply registers one by one. Grouped algorithms
        override this to serve similar members of the burst through a
        shared grid sweep (same results, less work) — the registration
        analogue of their grouped cycle recomputations.
        """
        return {query.qid: self.register(query) for query in queries}

    @abc.abstractmethod
    def unregister(self, qid: int) -> None:
        """Remove a query and every trace of it (influence lists etc.)."""

    @abc.abstractmethod
    def current_result(self, qid: int) -> List[ResultEntry]:
        """Current top-k of a query, best-first in canonical order."""

    @abc.abstractmethod
    def queries(self) -> Iterable[TopKQuery]:
        """The registered queries."""

    def update_query(
        self,
        qid: int,
        k: Optional[int] = None,
        function=None,
    ) -> List[ResultEntry]:
        """Mutate a running top-k query in place; return the new result.

        The default re-derives the result from the algorithm's current
        window state — exactly what unregister + register with the
        same qid would produce, minus a monitor-level round trip and
        without ever replaying the stream. Subclasses override with
        cheaper in-place paths where the maths allows (see TMA).
        """
        if qid in self._threshold_states:
            raise QueryError(
                f"threshold query {qid} cannot be updated in flight; "
                "cancel and re-register it instead"
            )
        query = self._find_query(qid)
        if k is None and function is None:
            return self.current_result(qid)
        if k is not None and k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        old_k, old_function = query.k, query.function
        self.unregister(qid)
        if k is not None:
            query.k = k
        if function is not None:
            query.function = function
        try:
            return self.register(query)
        except BaseException:
            # A failed mutation (e.g. a preference function that blows
            # up mid initial-computation) must not destroy the running
            # query: restore the previous spec and re-install it — the
            # old spec registered successfully before, so this
            # recovers the pre-update state.
            query.k, query.function = old_k, old_function
            self.register(query)
            raise

    def _find_query(self, qid: int):
        for query in self.queries():
            if query.qid == qid:
                return query
        raise self._unknown_query(qid)

    # ------------------------------------------------------------------
    # Stream maintenance
    # ------------------------------------------------------------------

    def process_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> Dict[int, ResultChange]:
        """Apply one processing cycle and report per-query changes.

        Arrivals are processed before expirations — the paper's TMA
        ordering (Section 4.3: handling ``P_ins`` first avoids useless
        recomputations when arrivals replace expiring results), applied
        uniformly so all algorithms see identical cycles.
        """
        self.counters.arrivals += len(arrivals)
        self.counters.expirations += len(expirations)
        self._snapshots.clear()
        self._apply_cycle(arrivals, expirations)
        if self._threshold_states:
            self._maintain_thresholds(arrivals, expirations)
        changes: Dict[int, ResultChange] = {}
        for qid, before in self._snapshots.items():
            cause, bound = self._change_annotations(qid)
            change = diff_results(
                qid, before, self.current_result(qid), cause=cause, bound=bound
            )
            if change.changed:
                changes[qid] = change
        self._snapshots.clear()
        return changes

    def _change_annotations(self, qid: int):
        """(cause, bound) annotation of this cycle's change for ``qid``.

        The exact tiers report plain cycle maintenance; the
        approximate tier overrides this to tag contracted queries
        ``("approx", certified_bound)``.
        """
        return "cycle", None

    @abc.abstractmethod
    def _apply_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:
        """Algorithm-specific cycle maintenance."""

    # ------------------------------------------------------------------
    # Threshold queries (Section 7) — shared by every algorithm
    # ------------------------------------------------------------------

    def _register_threshold(self, query: ThresholdQuery) -> List[ResultEntry]:
        """Install a threshold query; return its initial matches.

        Grid-based algorithms (anything exposing ``self.grid``) add the
        query to the influence lists of exactly the cells whose
        maxscore exceeds the threshold and seed the result from those
        cells' points; others scan the valid set once. The influence
        region of a threshold query is static, so registration-time
        lists need no lazy-cleanup machinery.
        """
        if query.dims != self.dims:
            raise QueryError(
                f"query has {query.dims} dims, monitor has {self.dims}"
            )
        state = _ThresholdState(query)
        grid = getattr(self, "grid", None)
        if grid is not None:
            from repro.grid.traversal import collect_cells_above_threshold

            for coords in collect_cells_above_threshold(
                grid, query.function, query.threshold, self.counters
            ):
                cell = grid.get_cell(coords)
                cell.influence.add(query.qid)
                self.counters.influence_list_updates += 1
                state.cells.append(coords)
                for record in cell.iter_points():
                    score = query.score(record.attrs)
                    self.counters.points_scored += 1
                    if score > query.threshold:
                        state.members[record.rid] = ResultEntry(score, record)
        else:
            for record in self._valid_records():
                score = query.score(record.attrs)
                self.counters.points_scored += 1
                if score > query.threshold:
                    state.members[record.rid] = ResultEntry(score, record)
        self._threshold_states[query.qid] = state
        return state.result_entries()

    def _unregister_threshold(self, qid: int) -> None:
        """Remove a threshold query and scrub its influence entries."""
        state = self._threshold_states.pop(qid, None)
        if state is None:
            raise self._unknown_query(qid)
        grid = getattr(self, "grid", None)
        if grid is not None:
            for coords in state.cells:
                cell = grid.peek_cell(coords)
                if cell is not None:
                    cell.influence.discard(qid)

    def _maintain_thresholds(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:
        """Apply one cycle to every threshold query's member set.

        Grid-based algorithms narrow arrivals through the influence
        lists (a threshold query lives in exactly the cells whose
        maxscore exceeds its threshold, so only arrivals landing in
        those cells are even scored — the paper's Section-7 win over
        the naive check-every-query strategy). Non-grid algorithms
        batch-score every arrival per query with the vector kernel;
        both paths are exact because a record scoring above the
        threshold necessarily lies inside the (static) influence
        region.
        """
        states = self._threshold_states
        grid = getattr(self, "grid", None)
        if arrivals and grid is not None:
            scorer = ArrivalScorer(arrivals)
            coords = grid.coords_of_many(
                [record.attrs for record in arrivals]
            )
            for index, record in enumerate(arrivals):
                cell = grid.peek_cell(coords[index])
                if cell is None or not cell.influence:
                    continue
                for qid in cell.influence:
                    state = states.get(qid)
                    if state is None:
                        continue  # a top-k query's entry
                    self.counters.influence_checks += 1
                    score = scorer.score_of(state.query.function, index)
                    if score > state.query.threshold:
                        self._touch(qid)
                        state.members[record.rid] = ResultEntry(
                            score, record
                        )
        elif arrivals:
            scorer = ArrivalScorer(arrivals)
            for state in states.values():
                query = state.query
                scores = scorer.scores(query.function)
                self.counters.influence_checks += len(arrivals)
                threshold = query.threshold
                members = state.members
                for record, score in zip(arrivals, scores):
                    if score > threshold:
                        self._touch(query.qid)
                        members[record.rid] = ResultEntry(score, record)
        if expirations:
            expired = {record.rid for record in expirations}
            for state in states.values():
                hit = state.members.keys() & expired
                if not hit:
                    continue
                self._touch(state.query.qid)
                for rid in hit:
                    del state.members[rid]

    def _valid_records(self) -> Iterable[StreamRecord]:
        """The currently valid records (non-grid algorithms override;
        used to seed threshold-query registration)."""
        raise NotImplementedError(
            f"{type(self).__name__} cannot enumerate valid records; "
            "threshold queries are unsupported here"
        )

    def _threshold_result(self, qid: int) -> List[ResultEntry]:
        return self._threshold_states[qid].result_entries()

    def _threshold_queries(self) -> List[ThresholdQuery]:
        return [state.query for state in self._threshold_states.values()]

    def _threshold_state_sizes(self) -> Dict[int, int]:
        return {
            qid: len(state.members)
            for qid, state in self._threshold_states.items()
        }

    # ------------------------------------------------------------------
    # Snapshot helpers for subclasses
    # ------------------------------------------------------------------

    def _touch(self, qid: int) -> None:
        """Stash the pre-cycle result of ``qid`` before its first mutation."""
        if qid not in self._snapshots:
            self._snapshots[qid] = self.current_result(qid)

    @staticmethod
    def _unknown_query(qid: int) -> QueryError:
        return QueryError(f"query {qid} is not registered with this algorithm")

    # ------------------------------------------------------------------
    # Introspection used by analysis / benchmarks
    # ------------------------------------------------------------------

    def result_state_sizes(self) -> Dict[int, int]:
        """Entries of per-query result state (view/skyband/top list).

        Used by the Table 2 benchmark; the default reports k per top-k
        query and the member count per threshold query.
        """
        sizes = {
            query.qid: query.k
            for query in self.queries()
            if isinstance(query, TopKQuery)
        }
        sizes.update(self._threshold_state_sizes())
        return sizes
