"""Shared from-scratch computation + influence-list bookkeeping.

TMA and SMA both delegate from-scratch result computation to the
traversal of Figure 6 (:func:`repro.grid.traversal.compute_top_k`) and
then perform the same two pieces of influence-list (IL) bookkeeping:

1. every *processed* cell receives an entry for the query (Figure 6,
   line 13);
2. cells that referenced the query under an older, larger influence
   region are cleaned lazily by flooding outward from the cells left
   in the traversal heap (Figure 9, lines 14–21).

Why the flood is complete and safe — the argument the paper leaves
implicit, spelled out because the tests assert it:

- The set of cells holding the query in their IL is always a
  *threshold set* ``{c : maxscore(c) >= s}`` for the threshold ``s`` in
  effect at the last from-scratch computation. Such sets are closed
  "upward" along the preference order.
- At termination the heap contains exactly the one-step-worse
  neighbours of processed cells that were not processed — every
  boundary cell of the new region, each with ``maxscore`` below the
  new threshold.
- Stepping from a boundary cell strictly down the preference order
  never re-enters the new region (maxscore is monotone along steps),
  so the flood cannot delete fresh IL entries.
- Any stale cell (old region minus new region) is reachable from some
  boundary cell through a monotone descending path that stays inside
  the old region, and every cell on that path still holds the query —
  so conditioning propagation on "query found here" (as the paper
  does) loses nothing and stops the flood at the old region's edge.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.queries import ConstrainedTopKQuery, TopKQuery
from repro.core.regions import Rectangle
from repro.core.scoring import PreferenceFunction
from repro.core.stats import OpCounters
from repro.grid.grid import Coords, Grid
from repro.grid.traversal import (
    TraversalOutcome,
    compute_top_k,
    compute_top_k_group,
    start_coords,
)


def query_region(query: TopKQuery) -> Optional[Rectangle]:
    """Constraint rectangle of a query, or None for ordinary top-k."""
    if isinstance(query, ConstrainedTopKQuery):
        return query.constraint
    return None


def compute_and_install(
    grid: Grid,
    query: TopKQuery,
    counters: Optional[OpCounters] = None,
) -> TraversalOutcome:
    """Run the top-k computation module and register influence entries.

    Adds the query to the IL of every processed cell (materialising
    cells as needed so later arrivals into currently-empty cells still
    find the query), then floods away stale IL entries starting from
    the cells the traversal left in its heap.
    """
    outcome = compute_top_k(
        grid,
        query.function,
        query.k,
        counters=counters,
        region=query_region(query),
    )
    for coords in outcome.processed:
        cell = grid.get_cell(coords)
        if query.qid not in cell.influence:
            cell.influence.add(query.qid)
            if counters is not None:
                counters.influence_list_updates += 1
    cleanup_influence(
        grid,
        query.qid,
        query.function,
        outcome.remaining,
        counters=counters,
    )
    return outcome


def compute_and_install_group(
    grid: Grid,
    queries: Sequence[TopKQuery],
    counters: Optional[OpCounters] = None,
) -> List[TraversalOutcome]:
    """Grouped :func:`compute_and_install`: one sweep, many queries.

    Runs :func:`repro.grid.traversal.compute_top_k_group` over the
    whole group, then performs per query exactly the influence-list
    bookkeeping the solo path performs — the grouped outcome's
    ``processed`` is the same cell set a solo traversal would install,
    and its ``remaining`` seeds the same cleanup flood (plus swept
    cells outside the query's region, which the flood's "delete only
    where found" rule skips over harmlessly).

    Callers must pass plain unconstrained linear queries (what
    :meth:`repro.core.queries.QueryGroupRegistry.partition` groups).
    Returns one outcome per query, in input order.
    """
    outcomes = compute_top_k_group(
        grid,
        [query.function for query in queries],
        [query.k for query in queries],
        counters=counters,
    )
    for query, outcome in zip(queries, outcomes):
        for coords in outcome.processed:
            cell = grid.get_cell(coords)
            if query.qid not in cell.influence:
                cell.influence.add(query.qid)
                if counters is not None:
                    counters.influence_list_updates += 1
        cleanup_influence(
            grid,
            query.qid,
            query.function,
            outcome.remaining,
            counters=counters,
        )
    return outcomes


def compute_and_install_burst(
    grid: Grid,
    registry,
    queries: Sequence[TopKQuery],
    counters: Optional[OpCounters] = None,
):
    """Initial computations for a registration burst, grouped.

    Adds every query to ``registry`` (a
    :class:`~repro.core.queries.QueryGroupRegistry`), partitions the
    burst into similarity groups, and serves each group of two or more
    through one shared sweep — ungroupable queries and singleton
    buckets take the solo path. ``counters.grouped_registrations``
    counts the queries served through a shared sweep. Yields
    ``(query, outcome)`` pairs; outcomes are identical to solo
    :func:`compute_and_install` calls in any order (the traversal
    never reads influence state, so burst order cannot matter).
    """
    for query in queries:
        registry.add(query)
    for group in registry.partition(list(queries)):
        if len(group) == 1:
            outcomes = [compute_and_install(grid, group[0], counters)]
        else:
            outcomes = compute_and_install_group(grid, group, counters)
            if counters is not None:
                counters.grouped_registrations += len(group)
        yield from zip(group, outcomes)


def cleanup_influence(
    grid: Grid,
    qid: int,
    function: PreferenceFunction,
    seeds: Iterable[Coords],
    counters: Optional[OpCounters] = None,
) -> int:
    """Flood-remove stale IL entries for ``qid`` (Figure 9, lines 14–21).

    Starts from ``seeds`` and steps down the preference order, deleting
    the query's entry wherever found and propagating only through
    cells that held it. Returns the number of entries removed.
    """
    removed = 0
    frontier: List[Coords] = list(seeds)
    seen = set(frontier)
    while frontier:
        coords = frontier.pop()
        cell = grid.peek_cell(coords)
        if cell is None or qid not in cell.influence:
            continue
        cell.influence.discard(qid)
        removed += 1
        if counters is not None:
            counters.influence_list_updates += 1
        for neighbour in grid.steps_toward_worse(coords, function):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return removed


def eager_trim_influence(
    grid: Grid,
    query: TopKQuery,
    threshold_score: float,
    counters: Optional[OpCounters] = None,
) -> int:
    """Eagerly shrink a query's influence lists to the current gate.

    The paper deliberately does *not* do this ("this 'lazy' approach
    does not affect the correctness") — stale entries are filtered by
    the gate comparison and cleaned only after the next from-scratch
    computation. This eager variant exists for the design-choice
    ablation: it walks the query's whole influence staircase from the
    preference-optimal corner and deletes entries on cells whose
    maxscore fell strictly below the new kth score, paying
    O(|influence region|) on every gate rise.

    Returns the number of entries removed.
    """
    function = query.function
    region = query_region(query)
    removed = 0
    frontier: List[Coords] = [start_coords(grid, function, region)]
    seen = set(frontier)
    while frontier:
        coords = frontier.pop()
        cell = grid.peek_cell(coords)
        if counters is not None:
            counters.influence_trim_visits += 1
        if cell is None or query.qid not in cell.influence:
            continue
        if region is None:
            bound = grid.maxscore(coords, function)
        else:
            clipped = grid.maxscore_in_region(coords, function, region)
            bound = clipped if clipped is not None else float("-inf")
        # Strict comparison: equal-maxscore cells may hold records that
        # outrank the kth under the canonical (score, rid) order.
        if bound < threshold_score:
            cell.influence.discard(query.qid)
            removed += 1
            if counters is not None:
                counters.influence_list_updates += 1
        for neighbour in grid.steps_toward_worse(coords, function):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return removed


def remove_query_everywhere(
    grid: Grid,
    query: TopKQuery,
    counters: Optional[OpCounters] = None,
) -> int:
    """Drop a terminated query from all influence lists.

    The paper initialises the cleanup list with "the corner cell with
    the maximum maxscore" — the flood then covers the whole (staircase)
    region the query ever influenced. For a constrained query the seed
    is the constraint region's optimal corner cell instead.
    """
    return cleanup_influence(
        grid,
        query.qid,
        query.function,
        [start_coords(grid, query.function, query_region(query))],
        counters=counters,
    )
