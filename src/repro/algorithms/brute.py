"""Brute-force re-evaluation — correctness oracle and naive baseline.

Keeps the valid records in a dict and recomputes every query's top-k
from scratch each cycle with a single ``heapq.nlargest``-style pass.
O(Q · N) per cycle — never competitive, but (i) it is the ground truth
the integration tests compare TMA/SMA/TSL against, and (ii) it bounds
from below how much the smarter algorithms must win by to matter.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List

from repro.algorithms.base import MonitorAlgorithm
from repro.algorithms.topk_computation import query_region
from repro.core.queries import TopKQuery
from repro.core.results import ResultEntry
from repro.core.tuples import StreamRecord


class BruteForceAlgorithm(MonitorAlgorithm):
    """Per-cycle full re-evaluation of every registered query."""

    name = "brute"

    def __init__(self, dims: int) -> None:
        super().__init__(dims)
        self._valid: Dict[int, StreamRecord] = {}
        self._queries: Dict[int, TopKQuery] = {}
        self._results: Dict[int, List[ResultEntry]] = {}

    def register(self, query: TopKQuery) -> List[ResultEntry]:
        if not isinstance(query, TopKQuery):
            return self._register_threshold(query)
        self._queries[query.qid] = query
        self._results[query.qid] = self._evaluate(query)
        return list(self._results[query.qid])

    def unregister(self, qid: int) -> None:
        if qid in self._threshold_states:
            self._unregister_threshold(qid)
            return
        if self._queries.pop(qid, None) is None:
            raise self._unknown_query(qid)
        self._results.pop(qid, None)

    def current_result(self, qid: int) -> List[ResultEntry]:
        if qid not in self._results:
            if qid in self._threshold_states:
                return self._threshold_result(qid)
            raise self._unknown_query(qid)
        return list(self._results[qid])

    def queries(self) -> Iterable[TopKQuery]:
        return list(self._queries.values()) + self._threshold_queries()

    def _valid_records(self) -> Iterable[StreamRecord]:
        return self._valid.values()

    def _apply_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:
        for record in arrivals:
            self._valid[record.rid] = record
        for record in expirations:
            self._valid.pop(record.rid, None)
        for qid, query in self._queries.items():
            self._touch(qid)
            self._results[qid] = self._evaluate(query)

    def _evaluate(self, query: TopKQuery) -> List[ResultEntry]:
        region = query_region(query)
        scored = []
        for record in self._valid.values():
            if region is not None and not region.contains(record.attrs):
                continue
            self.counters.points_scored += 1
            scored.append((query.score(record.attrs), record.rid, record))
        best = heapq.nlargest(query.k, scored, key=lambda item: item[:2])
        return [ResultEntry(score, record) for score, _, record in best]

    def valid_records(self) -> List[StreamRecord]:
        """Snapshot of the currently valid records (test helper)."""
        return list(self._valid.values())
