"""TMA — the Top-k Monitoring Algorithm (paper Section 4, Figure 9).

Maintenance policy: keep *exactly* the current top-k per query.

- **Arrivals first.** Each arrival lands in its grid cell; for every
  query in that cell's influence list whose gate it beats, it enters
  the top list and displaces the kth entry. Processing ``P_ins``
  before ``P_del`` means an arrival can save a query whose result
  member expires in the same cycle (the Figure 8(a) walk-through,
  replayed in tests).
- **Expirations.** An expiring record is dropped from its cell; if it
  was a result member of some query, that query is *marked affected*
  and, once the whole batch is applied, recomputed from scratch via
  the top-k computation module — this is the only from-scratch path,
  and its frequency is the paper's ``Pr_rec``.
- **Lazy influence lists.** When arrivals shrink an influence region
  the lists are *not* updated; stale entries are filtered by the gate
  comparison and cleaned up only after the next from-scratch
  computation (see :mod:`repro.algorithms.topk_computation`).

Top lists are plain ascending-sorted lists of ``(key, record)`` pairs:
k is small (≤ a few hundred), so a bisect + C-level memmove beats any
interpreted balanced tree; the analytical model keeps the paper's
O(log k) accounting.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.algorithms.base import MonitorAlgorithm
from repro.algorithms.topk_computation import (
    compute_and_install,
    compute_and_install_burst,
    compute_and_install_group,
    eager_trim_influence,
    query_region,
    remove_query_everywhere,
)
from repro.core.batch import ArrivalScorer
from repro.core.queries import QueryGroupRegistry, TopKQuery
from repro.core.results import ResultEntry
from repro.core.tuples import MIN_RANK_KEY, RankKey, StreamRecord
from repro.grid.grid import Grid


class _TmaQueryState:
    """Per-query state: spec, exact top-k, and membership index."""

    __slots__ = (
        "query",
        "region",
        "top",
        "member_ids",
        "affected",
        "eager_pending",
    )

    def __init__(self, query: TopKQuery) -> None:
        self.query = query
        self.region = query_region(query)
        #: ascending (key, record): element 0 is the kth (worst) result.
        self.top: List[Tuple[RankKey, StreamRecord]] = []
        self.member_ids: Set[int] = set()
        self.affected = False
        self.eager_pending = False

    def gate_key(self) -> RankKey:
        """Key an arrival must beat to enter the result."""
        if len(self.top) < self.query.k:
            return MIN_RANK_KEY
        return self.top[0][0]

    def set_result(self, entries: List[ResultEntry]) -> None:
        """Replace the result with a freshly computed best-first list."""
        self.top = [
            ((entry.score, entry.record.rid), entry.record)
            for entry in reversed(entries)
        ]
        self.member_ids = {record.rid for _, record in self.top}

    def admit(self, key: RankKey, record: StreamRecord) -> None:
        """Insert a better arrival, displacing the kth entry if full."""
        insort(self.top, (key, record))
        self.member_ids.add(record.rid)
        if len(self.top) > self.query.k:
            _, evicted = self.top.pop(0)
            self.member_ids.discard(evicted.rid)

    def result_entries(self) -> List[ResultEntry]:
        return [
            ResultEntry(key[0], record) for key, record in reversed(self.top)
        ]


class TopKMonitoringAlgorithm(MonitorAlgorithm):
    """Grid-based monitoring with exact top-k per query (Figure 9)."""

    name = "tma"

    def __init__(
        self,
        dims: int,
        cells_per_axis: int,
        eager_cleanup: bool = False,
        grouped: bool = False,
    ) -> None:
        """``eager_cleanup=True`` trims influence lists on every gate
        rise instead of lazily (ablation of the paper's Section 4.3
        design choice; results are identical, maintenance is not —
        see ``benchmarks/test_ablation_design_choices.py``).

        ``grouped=True`` batches each cycle's from-scratch
        recomputations by preference-vector similarity
        (:class:`~repro.core.queries.QueryGroupRegistry`): queries in
        one group share a single grid sweep that packs and scores each
        cell block once for the whole group. Results are bitwise
        identical to the per-query path; only maintenance cost
        changes."""
        super().__init__(dims)
        self.grid = Grid(dims, cells_per_axis)
        self.eager_cleanup = eager_cleanup
        self.groups = QueryGroupRegistry() if grouped else None
        self._states: Dict[int, _TmaQueryState] = {}

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    def register(self, query: TopKQuery) -> List[ResultEntry]:
        if not isinstance(query, TopKQuery):
            return self._register_threshold(query)
        if query.dims != self.dims:
            raise self._unknown_dimensionality(query)
        state = _TmaQueryState(query)
        outcome = compute_and_install(self.grid, query, self.counters)
        state.set_result(outcome.entries)
        self._states[query.qid] = state
        if self.groups is not None:
            self.groups.add(query)
        return state.result_entries()

    def register_many(
        self, queries: List[TopKQuery]
    ) -> Dict[int, List[ResultEntry]]:
        """Install a registration burst, sharing grid sweeps per group.

        With ``grouped=True``, similar members of the burst get their
        *initial* top-k through shared sweeps
        (:func:`~repro.algorithms.topk_computation.compute_and_install_burst`)
        instead of one solo traversal each — results and influence
        lists are identical either way.
        """
        topk = [query for query in queries if isinstance(query, TopKQuery)]
        if self.groups is None or len(topk) < 2:
            return super().register_many(queries)
        for query in topk:
            if query.dims != self.dims:
                raise self._unknown_dimensionality(query)
        results: Dict[int, List[ResultEntry]] = {}
        for query in queries:
            if not isinstance(query, TopKQuery):
                results[query.qid] = self._register_threshold(query)
        for query, outcome in compute_and_install_burst(
            self.grid, self.groups, topk, self.counters
        ):
            state = _TmaQueryState(query)
            state.set_result(outcome.entries)
            self._states[query.qid] = state
            results[query.qid] = state.result_entries()
        return results

    def unregister(self, qid: int) -> None:
        if qid in self._threshold_states:
            self._unregister_threshold(qid)
            return
        state = self._states.pop(qid, None)
        if state is None:
            raise self._unknown_query(qid)
        if self.groups is not None:
            self.groups.discard(qid)
        remove_query_everywhere(self.grid, state.query, self.counters)

    def current_result(self, qid: int) -> List[ResultEntry]:
        state = self._states.get(qid)
        if state is None:
            if qid in self._threshold_states:
                return self._threshold_result(qid)
            raise self._unknown_query(qid)
        return state.result_entries()

    def queries(self) -> Iterable[TopKQuery]:
        return [
            state.query for state in self._states.values()
        ] + self._threshold_queries()

    def update_query(
        self,
        qid: int,
        k: Optional[int] = None,
        function=None,
    ) -> List[ResultEntry]:
        """In-flight mutation; a pure k *decrease* is O(k) in place.

        TMA keeps the exact top-k, so shrinking k only trims the worst
        entries off the top list — no grid traversal at all. The
        influence lists keep their (now slightly too wide) entries and
        are cleaned by the usual lazy discipline; results are identical
        to a from-scratch re-registration. Any other mutation (k
        increase, new preference function) recomputes from the grid
        via the base path.
        """
        state = self._states.get(qid)
        if state is None:
            return super().update_query(qid, k=k, function=function)
        query = state.query
        if function is None and k is not None and 1 <= k <= query.k:
            if k != query.k:
                query.k = k
                excess = len(state.top) - k
                if excess > 0:
                    for _, record in state.top[:excess]:
                        state.member_ids.discard(record.rid)
                    state.top = state.top[excess:]
            return state.result_entries()
        return super().update_query(qid, k=k, function=function)

    # ------------------------------------------------------------------
    # Cycle maintenance (Figure 9)
    # ------------------------------------------------------------------

    def _apply_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:
        states = self._states
        affected: List[_TmaQueryState] = []
        gate_rose: List[_TmaQueryState] = []

        # One batched grid pass maps all arrivals to their cells, and
        # arrival scores come from the per-query batch kernel (computed
        # lazily on a query's first influence hit, cached for the rest
        # of the batch) instead of one interpreted score() per hit.
        scorer = ArrivalScorer(arrivals)
        cells = self.grid.insert_many(arrivals)
        for index, record in enumerate(arrivals):
            cell = cells[index]
            if not cell.influence:
                continue
            admitted = []
            for qid in cell.influence:
                state = states.get(qid)
                if state is None:
                    continue
                self.counters.influence_checks += 1
                if state.region is not None and not state.region.contains(
                    record.attrs
                ):
                    continue
                key: RankKey = (
                    scorer.score_of(state.query.function, index),
                    record.rid,
                )
                if key > state.gate_key():
                    self._touch(qid)
                    admitted.append((state, key))
                    self.counters.top_list_updates += 1
            # Influence lists are hash sets; admitting inside the scan
            # could trim the set being iterated under eager cleanup.
            for state, key in admitted:
                full_before = len(state.top) == state.query.k
                state.admit(key, record)
                if (
                    self.eager_cleanup
                    and full_before
                    and not state.eager_pending
                ):
                    state.eager_pending = True
                    gate_rose.append(state)

        for state in gate_rose:
            state.eager_pending = False
            eager_trim_influence(
                self.grid,
                state.query,
                state.gate_key()[0],
                self.counters,
            )

        for record, cell in zip(expirations, self.grid.delete_many(expirations)):
            for qid in cell.influence:
                state = states.get(qid)
                if state is None:
                    continue
                self.counters.influence_checks += 1
                if record.rid in state.member_ids and not state.affected:
                    state.affected = True
                    affected.append(state)

        with self.tracer.span("traversal"):
            if self.groups is not None and len(affected) > 1:
                self._recompute_grouped(affected)
            else:
                for state in affected:
                    state.affected = False
                    qid = state.query.qid
                    self._touch(qid)
                    self.counters.recomputations += 1
                    outcome = compute_and_install(
                        self.grid, state.query, self.counters
                    )
                    state.set_result(outcome.entries)

    def _recompute_grouped(self, affected: List[_TmaQueryState]) -> None:
        """From-scratch recomputation batched by similarity group.

        Groups of two or more share one grid sweep
        (:func:`~repro.algorithms.topk_computation.compute_and_install_group`);
        ungroupable queries and singleton buckets take the solo path
        unchanged. Either way each query's result and influence-list
        state end up identical to a qid-by-qid recomputation loop."""
        states = {state.query.qid: state for state in affected}
        for state in affected:
            state.affected = False
        for group in self.groups.partition(
            [state.query for state in affected]
        ):
            for query in group:
                self._touch(query.qid)
                self.counters.recomputations += 1
            if len(group) == 1:
                outcome = compute_and_install(
                    self.grid, group[0], self.counters
                )
                states[group[0].qid].set_result(outcome.entries)
                continue
            outcomes = compute_and_install_group(
                self.grid, group, self.counters
            )
            for query, outcome in zip(group, outcomes):
                states[query.qid].set_result(outcome.entries)

    def _unknown_dimensionality(self, query: TopKQuery):
        from repro.core.errors import DimensionalityError

        return DimensionalityError(
            f"query function has {query.dims} dims, algorithm has {self.dims}"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def result_state_sizes(self) -> Dict[int, int]:
        sizes = {qid: len(state.top) for qid, state in self._states.items()}
        sizes.update(self._threshold_state_sizes())
        return sizes

    def influence_list_entries(self) -> int:
        """Total IL entries across cells (space accounting, Section 6)."""
        return sum(len(cell.influence) for cell in self.grid.cells())
