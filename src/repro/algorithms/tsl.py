"""TSL — the Threshold Sorted List baseline (paper Section 3.2).

The benchmark competitor assembled from prior work, against which TMA
and SMA are compared throughout Section 8:

- **Initial computation: Fagin's Threshold Algorithm (TA).** One
  sorted list per dimension holds every valid record ordered by that
  attribute. TA performs round-robin *sorted accesses* across the d
  lists (walking each from its preference-best end), a *random access*
  per newly seen record to fetch its remaining attributes and score,
  and stops once the kmax-th best score reaches the threshold τ — the
  score of the vector of last values seen per list, an upper bound for
  every unseen record under any monotone f.
- **Maintenance: the materialized-view technique of Yi et al.** Each
  query keeps a view of k' entries, k ≤ k' ≤ kmax. An arrival beating
  the view's worst entry is inserted (evicting the worst when the view
  is at kmax); an expiring view member shrinks the view; when k'
  drops below k, TA refills the view to kmax entries. Larger kmax
  means rarer (expensive) refills but more per-arrival view traffic —
  the paper fine-tunes kmax per k (reproduced in
  ``benchmarks/test_tsl_kmax_tuning.py``).

Every arrival must be scored against *every* query (there are no
influence lists to narrow the scope) and every arrival/expiry updates
all d sorted lists — the two structural costs that make TSL an order
of magnitude slower than the grid methods in the paper's Figures 15–19.

Refills are batched at the end of a cycle (the paper refills inline);
batching only skips refilling views that same-cycle events would
immediately invalidate again, and end-of-cycle results are identical.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.algorithms.base import MonitorAlgorithm
from repro.core.batch import ArrivalScorer, as_matrix, to_list
from repro.core.errors import QueryError
from repro.core.queries import TopKQuery
from repro.core.results import ResultEntry
from repro.core.tuples import MIN_RANK_KEY, RankKey, StreamRecord
from repro.core import batch
from repro.structures.sorted_list import AttributeSortedList, SortedKeyList


#: sorted-access depths drained per TA batch round (see
#: :meth:`ThresholdSortedListAlgorithm._threshold_algorithm`).
_TA_CHUNK = 32


def default_kmax(k: int) -> int:
    """The paper's fine-tuned kmax per k (Section 8).

    Measured optima were (4, 10, 20, 30, 70, 120) for
    k = (1, 5, 10, 20, 50, 100); other values interpolate the same
    ~1.2·k + 10 trend.
    """
    tuned = {1: 4, 5: 10, 10: 20, 20: 30, 50: 70, 100: 120}
    if k in tuned:
        return tuned[k]
    return max(k + 3, int(round(1.2 * k + 10)))


class _TslQueryState:
    """Per-query materialized view: ascending (key, record) pairs."""

    __slots__ = (
        "query",
        "kmax",
        "view",
        "member_ids",
        "needs_refill",
        "updates_since_refill",
    )

    def __init__(self, query: TopKQuery, kmax: int) -> None:
        if kmax < query.k:
            raise QueryError(f"kmax={kmax} must be >= k={query.k}")
        self.query = query
        self.kmax = kmax
        self.view: List[Tuple[RankKey, StreamRecord]] = []
        self.member_ids: Set[int] = set()
        self.needs_refill = False
        #: view insertions since the last TA refill — the signal the
        #: adaptive-kmax policy of Yi et al. balances against refills.
        self.updates_since_refill = 0

    def worst_key(self) -> RankKey:
        return self.view[0][0] if self.view else MIN_RANK_KEY

    def set_view(self, entries: List[ResultEntry]) -> None:
        self.view = [
            ((entry.score, entry.record.rid), entry.record)
            for entry in reversed(entries)
        ]
        self.member_ids = {record.rid for _, record in self.view}

    def insert(self, key: RankKey, record: StreamRecord) -> None:
        insort(self.view, (key, record))
        self.member_ids.add(record.rid)
        if len(self.view) > self.kmax:
            _, evicted = self.view.pop(0)
            self.member_ids.discard(evicted.rid)

    def remove(self, record: StreamRecord) -> bool:
        if record.rid not in self.member_ids:
            return False
        self.member_ids.discard(record.rid)
        for index in range(len(self.view) - 1, -1, -1):
            if self.view[index][1].rid == record.rid:
                del self.view[index]
                return True
        raise AssertionError("view/member_ids out of sync")  # pragma: no cover

    def top_entries(self) -> List[ResultEntry]:
        best = self.view[-self.query.k :]
        return [ResultEntry(key[0], record) for key, record in reversed(best)]


class ThresholdSortedListAlgorithm(MonitorAlgorithm):
    """TA over d sorted lists + Yi et al. view maintenance (Figure 3)."""

    name = "tsl"

    def __init__(
        self,
        dims: int,
        kmax_for: Optional[Callable[[int], int]] = None,
        adaptive_kmax: bool = False,
        list_impl: str = "array",
    ) -> None:
        """``adaptive_kmax=True`` enables the dynamic kmax adjustment
        of Yi et al., which grows a view's kmax when TA refills come
        too soon after one another and shrinks it when the view soaks
        many updates between refills. The paper evaluates against
        fine-tuned *static* kmax because "this approach performs worse
        than TSL with fine-tuned kmax" — reproduced in
        ``benchmarks/test_tsl_kmax_tuning.py``.

        ``list_impl`` selects the sorted-list container: ``"array"``
        (bisect + C memmove) or ``"skiplist"`` (pointer-based, the
        structure a C implementation would use; all-O(log n) in
        theory). The trade-off is measured in
        ``benchmarks/test_ablation_sorted_structures.py``."""
        super().__init__(dims)
        self._kmax_for = kmax_for if kmax_for is not None else default_kmax
        self.adaptive_kmax = adaptive_kmax
        if list_impl == "array":
            if batch.np is not None:
                # Columnar keys + vectorized merges (see
                # AttributeSortedList for why dropping the rid
                # tiebreak keeps TA exact).
                self._sorted_lists = [
                    AttributeSortedList(key=self._float_attr_key(dim))
                    for dim in range(dims)
                ]
            else:
                self._sorted_lists = [
                    SortedKeyList(key=self._attr_key(dim))
                    for dim in range(dims)
                ]
        elif list_impl == "skiplist":
            from repro.structures.skiplist import IndexableSkipList

            self._sorted_lists = [
                IndexableSkipList(key=self._attr_key(dim))
                for dim in range(dims)
            ]
        else:
            raise ValueError(
                f"list_impl must be 'array' or 'skiplist', got {list_impl!r}"
            )
        self.list_impl = list_impl
        self._states: Dict[int, _TslQueryState] = {}

    @staticmethod
    def _attr_key(dim: int):
        def key(record: StreamRecord):
            # rid breaks attribute ties so removal is deterministic.
            return (record.attrs[dim], record.rid)

        return key

    @staticmethod
    def _float_attr_key(dim: int):
        def key(record: StreamRecord) -> float:
            # Bare float key for the columnar list; removal scans the
            # equal-key range for the record itself instead.
            return record.attrs[dim]

        return key

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    def register(self, query: TopKQuery) -> List[ResultEntry]:
        if not isinstance(query, TopKQuery):
            return self._register_threshold(query)
        state = _TslQueryState(query, self._kmax_for(query.k))
        state.set_view(self._threshold_algorithm(query, state.kmax))
        self._states[query.qid] = state
        return state.top_entries()

    def unregister(self, qid: int) -> None:
        if qid in self._threshold_states:
            self._unregister_threshold(qid)
            return
        if self._states.pop(qid, None) is None:
            raise self._unknown_query(qid)

    def current_result(self, qid: int) -> List[ResultEntry]:
        state = self._states.get(qid)
        if state is None:
            if qid in self._threshold_states:
                return self._threshold_result(qid)
            raise self._unknown_query(qid)
        return state.top_entries()

    def queries(self) -> Iterable[TopKQuery]:
        return [
            state.query for state in self._states.values()
        ] + self._threshold_queries()

    def update_query(
        self,
        qid: int,
        k: Optional[int] = None,
        function=None,
    ) -> List[ResultEntry]:
        """In-flight mutation: mutate the spec, re-derive kmax, and
        refill the view with one TA pass over the *current* sorted
        lists — exactly what registration would compute, without
        touching the per-dimension lists."""
        state = self._states.get(qid)
        if state is None:
            return super().update_query(qid, k=k, function=function)
        query = state.query
        if k is None and function is None:
            return state.top_entries()
        if k is not None and k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        old_k, old_function, old_kmax = query.k, query.function, state.kmax
        if k is not None:
            query.k = k
        if function is not None:
            query.function = function
        state.kmax = max(query.k, self._kmax_for(query.k))
        self.counters.view_refills += 1
        try:
            view = self._threshold_algorithm(query, state.kmax)
        except BaseException:
            # Old view untouched: restore the spec and keep running.
            query.k, query.function = old_k, old_function
            state.kmax = old_kmax
            raise
        state.set_view(view)
        state.updates_since_refill = 0
        return state.top_entries()

    # ------------------------------------------------------------------
    # The TA module
    # ------------------------------------------------------------------

    def _threshold_algorithm(
        self, query: TopKQuery, limit: int
    ) -> List[ResultEntry]:
        """Compute the top-``limit`` entries via round-robin TA.

        Walks each sorted list from its preference-best end. τ is the
        query's score of the last attribute values seen per list;
        the scan stops when the ``limit``-th best score exceeds τ (or
        every list is exhausted). The stop test is strict, so records
        tying τ are still scanned — keeping results exact under the
        canonical (score, rid) order.

        The walk is *chunked*: ``_TA_CHUNK`` depths of sorted accesses
        are drained per round and the newly seen records are scored
        with one batch-kernel call; τ is re-evaluated at chunk
        boundaries only. TA stays exact at any stop depth at or past
        the classic per-depth stop (candidates only improve with extra
        accesses, and the τ bound still holds), so the result is
        identical — the scan merely overshoots the textbook stopping
        point by at most one chunk of sorted/random accesses.
        """
        lists = self._sorted_lists
        function = query.function
        directions = function.directions
        total = len(lists[0])
        candidates: List[Tuple[RankKey, StreamRecord]] = []  # ascending
        seen: Set[int] = set()
        last_values: List[float] = [
            # Before any access, the bound per dimension is its best
            # possible value in the unit workspace.
            1.0 if directions[dim] > 0 else 0.0
            for dim in range(self.dims)
        ]
        depth = 0
        while depth < total:
            until = min(total, depth + _TA_CHUNK)
            fresh: List[StreamRecord] = []
            for dim in range(self.dims):
                attribute_list = lists[dim]
                if directions[dim] > 0:
                    positions = range(total - 1 - depth, total - 1 - until, -1)
                else:
                    positions = range(depth, until)
                for position in positions:
                    record = attribute_list[position]
                    self.counters.sorted_accesses += 1
                    last_values[dim] = record.attrs[dim]
                    if record.rid in seen:
                        continue
                    seen.add(record.rid)
                    self.counters.random_accesses += 1
                    fresh.append(record)
            if fresh:
                scores = to_list(
                    function.score_batch(
                        as_matrix([record.attrs for record in fresh])
                    )
                )
                for record, score in zip(fresh, scores):
                    key: RankKey = (score, record.rid)
                    if len(candidates) < limit:
                        insort(candidates, (key, record))
                    elif key > candidates[0][0]:
                        candidates.pop(0)
                        insort(candidates, (key, record))
            depth = until
            if len(candidates) >= limit:
                tau = query.score(last_values)
                if candidates[0][0][0] > tau:
                    break
        return [
            ResultEntry(key[0], record) for key, record in reversed(candidates)
        ]

    # ------------------------------------------------------------------
    # Cycle maintenance
    # ------------------------------------------------------------------

    def _apply_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:
        refill: List[_TslQueryState] = []

        # Bulk-load path: a batch comparable to the current list size
        # (window warm-up) is cheaper to merge-and-sort than to merge
        # slice-wise; steady-state batches take the one-rebuild merge
        # of add_many instead of one O(n) memmove per record.
        if len(arrivals) > 64 and len(arrivals) >= len(self._sorted_lists[0]):
            for sorted_list in self._sorted_lists:
                sorted_list.bulk_add(arrivals)
                self.counters.sorted_list_updates += len(arrivals)
        elif arrivals:
            for sorted_list in self._sorted_lists:
                sorted_list.add_many(arrivals)
                self.counters.sorted_list_updates += len(arrivals)

        # Every arrival is checked against every query (TSL has no
        # influence lists to narrow the scope), so the whole batch is
        # scored per query in one kernel call; a vector prefilter then
        # drops arrivals that cannot beat the view's worst key. The
        # gate only rises while inserting arrivals, so prefiltering
        # against the *initial* worst key is safe — survivors are
        # re-checked exactly against the live key, ties included.
        if arrivals and self._states:
            scorer = ArrivalScorer(arrivals)
            batch_size = len(arrivals)
            for state in self._states.values():
                self.counters.influence_checks += batch_size
                function = state.query.function
                if len(state.view) >= state.query.k:
                    survivors, values = scorer.take_survivors(
                        function, state.worst_key()[0]
                    )
                    if not survivors:
                        continue
                else:
                    survivors = range(batch_size)
                    values = scorer.scores(function)
                for index, value in zip(survivors, values):
                    record = arrivals[index]
                    key: RankKey = (value, record.rid)
                    if (
                        key > state.worst_key()
                        or len(state.view) < state.query.k
                    ):
                        self._touch(state.query.qid)
                        state.insert(key, record)
                        state.updates_since_refill += 1
                        self.counters.view_insertions += 1

        if expirations:
            for sorted_list in self._sorted_lists:
                sorted_list.remove_many(expirations)
                self.counters.sorted_list_updates += len(expirations)
            # One set intersection per view replaces the per-record
            # membership probe: views hold at most kmax entries, so the
            # intersection walks the small side in C.
            expiring = {record.rid: record for record in expirations}
            for state in self._states.values():
                hit_rids = state.member_ids & expiring.keys()
                if not hit_rids:
                    continue
                self._touch(state.query.qid)  # before mutating
                for rid in hit_rids:
                    state.remove(expiring[rid])
                if (
                    len(state.view) < state.query.k
                    and not state.needs_refill
                ):
                    state.needs_refill = True
                    refill.append(state)

        for state in refill:
            state.needs_refill = False
            self.counters.view_refills += 1
            if self.adaptive_kmax:
                self._adapt_kmax(state)
            state.set_view(
                self._threshold_algorithm(state.query, state.kmax)
            )
            state.updates_since_refill = 0

    def _adapt_kmax(self, state: _TslQueryState) -> None:
        """Yi et al.'s dynamic adjustment, applied at refill time.

        A refill after few view updates means the slack (kmax − k)
        drained too fast → grow it; a refill after many updates means
        the view paid heavy per-arrival maintenance for slack it
        barely needed → shrink toward k. Bounds keep kmax within
        [k+1, 8k] so a burst cannot run it away.
        """
        k = state.query.k
        used = state.updates_since_refill
        if used < 2 * state.kmax:
            # Refill came quickly: the slack drained before the view
            # absorbed much traffic — buy more slack.
            state.kmax = min(8 * k, int(state.kmax * 1.5) + 1)
        elif used > 10 * state.kmax:
            # The view survived a long time: it paid per-arrival
            # maintenance on slack it barely needed — shed some.
            state.kmax = max(k + 1, (state.kmax + k) // 2)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def result_state_sizes(self) -> Dict[int, int]:
        """View cardinality k' per query (Table 2's TSL column)."""
        sizes = {
            qid: len(state.view) for qid, state in self._states.items()
        }
        sizes.update(self._threshold_state_sizes())
        return sizes

    def _valid_records(self) -> Iterable[StreamRecord]:
        """Walk one sorted list (each holds every valid record once)."""
        attribute_list = self._sorted_lists[0]
        return (
            attribute_list[index] for index in range(len(attribute_list))
        )

    def sorted_list_entries(self) -> int:
        """Total entries across the d sorted lists (space accounting)."""
        return sum(len(sorted_list) for sorted_list in self._sorted_lists)
