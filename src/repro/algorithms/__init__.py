"""Monitoring algorithms: TMA, SMA, the TSL baseline, and a brute-force oracle.

All algorithms implement :class:`repro.algorithms.base.MonitorAlgorithm`
and report identical top-k sets (under the canonical rank order) —
they differ only in how much work maintenance costs, which is exactly
the comparison of the paper's Section 8.

Use :func:`make_algorithm` to construct one by name.
"""

import importlib
from typing import Optional

from repro.algorithms.base import MonitorAlgorithm
from repro.algorithms.brute import BruteForceAlgorithm
from repro.algorithms.sma import SkybandMonitoringAlgorithm
from repro.algorithms.tma import TopKMonitoringAlgorithm
from repro.algorithms.tsl import ThresholdSortedListAlgorithm

ALGORITHMS = {
    "tma": TopKMonitoringAlgorithm,
    "sma": SkybandMonitoringAlgorithm,
    "tsl": ThresholdSortedListAlgorithm,
    "brute": BruteForceAlgorithm,
    # Similarity-grouped recomputation variants: identical results,
    # shared grid sweeps per group (sugar for grouped=True, so bench
    # runs can compare grouped vs per-query side by side).
    "tma-grouped": TopKMonitoringAlgorithm,
    "sma-grouped": SkybandMonitoringAlgorithm,
    # TMA plus the sketch-backed approximate tier for queries carrying
    # an accuracy contract. The class subclasses TMA from this
    # package, so it is referenced lazily (module:attr string) and
    # resolved on first use to keep the import graph acyclic.
    "approx": "repro.approx.algorithm:ApproxTopKAlgorithm",
}

#: names whose algorithms index a grid (take ``cells_per_axis``).
GRID_ALGORITHMS = frozenset(
    name
    for name in ALGORITHMS
    if name.split("-")[0] in ("tma", "sma", "approx")
)


def make_algorithm(
    name: str,
    dims: int,
    cells_per_axis: Optional[int] = None,
    **kwargs,
) -> MonitorAlgorithm:
    """Construct a monitoring algorithm by name.

    Args:
        name: one of ``tma``, ``sma``, ``tsl``, ``brute``, or a
            grouped-recomputation variant ``tma-grouped`` /
            ``sma-grouped``.
        dims: data dimensionality.
        cells_per_axis: grid granularity for the grid-based methods
            (ignored by ``tsl``/``brute``); defaults to the paper's
            sweet spot of roughly 12^4 total cells via
            :func:`repro.bench.workloads.default_cells_per_axis` when
            omitted.
        **kwargs: algorithm-specific options (e.g. ``kmax_for`` for
            TSL, ``grouped`` for TMA/SMA).
    """
    key = name.lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        )
    cls = ALGORITHMS[key]
    if isinstance(cls, str):  # lazy registration (see ALGORITHMS)
        module_name, _, attr = cls.partition(":")
        cls = getattr(importlib.import_module(module_name), attr)
        ALGORITHMS[key] = cls
    if key.endswith("-grouped"):
        kwargs.setdefault("grouped", True)
    if key in GRID_ALGORITHMS:
        if cells_per_axis is None:
            from repro.bench.workloads import default_cells_per_axis

            cells_per_axis = default_cells_per_axis(dims)
        return cls(dims=dims, cells_per_axis=cells_per_axis, **kwargs)
    return cls(dims=dims, **kwargs)


__all__ = [
    "ALGORITHMS",
    "GRID_ALGORITHMS",
    "BruteForceAlgorithm",
    "MonitorAlgorithm",
    "SkybandMonitoringAlgorithm",
    "ThresholdSortedListAlgorithm",
    "TopKMonitoringAlgorithm",
    "make_algorithm",
]
