"""Synthetic stock-tick stream (the introduction's trading scenario).

Simulates tickers following geometric random walks with stochastic
trade volume. Each tick is exported with the raw fields plus a
normalised attribute vector ``(volume, |return|)`` in the unit
workspace, so a monitor can track e.g. the top-k *most actively traded
movers* with a single linear preference — the kind of long-running
market-surveillance query the paper's introduction motivates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.core.tuples import RecordFactory, StreamRecord

#: Normalisation caps for the unit workspace.
MAX_VOLUME = 1e6
MAX_ABS_RETURN = 0.10  # ±10% per tick saturates


@dataclass(frozen=True, slots=True)
class Tick:
    """One trade tick."""

    symbol: str
    price: float
    volume: int
    change: float  # fractional return since the previous tick


@dataclass(frozen=True, slots=True)
class TickRecord:
    tick: Tick
    record: StreamRecord


class StockStream:
    """Random-walk tick generator over a fixed symbol universe."""

    def __init__(
        self,
        symbols: int = 100,
        ticks_per_cycle: int = 200,
        seed: int = 7,
        volatility: float = 0.01,
    ) -> None:
        self._rng = random.Random(seed)
        self._factory = RecordFactory()
        self.ticks_per_cycle = ticks_per_cycle
        self.volatility = volatility
        self._symbols = [f"SYM{i:03d}" for i in range(symbols)]
        self._prices: Dict[str, float] = {
            symbol: self._rng.uniform(5.0, 500.0) for symbol in self._symbols
        }
        self._pending_shocks: Dict[str, float] = {}
        self._cycle = 0

    def shock(self, symbol: str, magnitude: float) -> None:
        """Queue a price shock (news event): the symbol's next tick
        jumps by ``magnitude`` on top of its random-walk move."""
        self._pending_shocks[symbol] = (
            self._pending_shocks.get(symbol, 0.0) + magnitude
        )

    def _one_tick(self) -> Tick:
        rng = self._rng
        symbol = rng.choice(self._symbols)
        old_price = self._prices[symbol]
        change = rng.gauss(0.0, self.volatility)
        change += self._pending_shocks.pop(symbol, 0.0)
        new_price = max(0.01, old_price * (1.0 + change))
        self._prices[symbol] = new_price
        volume = int(math.exp(rng.gauss(8.0, 1.5)))
        return Tick(
            symbol=symbol,
            price=new_price,
            volume=volume,
            change=(new_price - old_price) / old_price,
        )

    def to_record(self, tick: Tick, time: float) -> StreamRecord:
        volume_norm = min(
            0.999999, math.log(max(1.0, tick.volume)) / math.log(MAX_VOLUME)
        )
        move_norm = min(0.999999, abs(tick.change) / MAX_ABS_RETURN)
        return self._factory.make((volume_norm, move_norm), time)

    def next_batch(self) -> List[TickRecord]:
        self._cycle += 1
        time = float(self._cycle)
        return [
            TickRecord(tick, self.to_record(tick, time))
            for tick in (self._one_tick() for _ in range(self.ticks_per_cycle))
        ]

    def batches(self, cycles: int) -> Iterator[List[TickRecord]]:
        for _ in range(cycles):
            yield self.next_batch()
