"""Sliding-window stream driver — the paper's simulation loop.

Section 8's setup: a count-based window of N tuples; every timestamp r
new points arrive (and, once the window is full, r old ones expire).
:class:`StreamDriver` reproduces that: a warm-up fills the window, then
:meth:`StreamDriver.batches` yields one arrival batch per timestamp.

Records are minted by a shared :class:`~repro.core.tuples.RecordFactory`
so ids are globally unique and in arrival order. Batches are plain
lists, so the same materialised stream can be replayed against several
algorithms (the fairness requirement of every comparison benchmark).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.core.errors import StreamError
from repro.core.tuples import RecordFactory, StreamRecord
from repro.streams.generators import DataDistribution


class StreamDriver:
    """Generate per-cycle arrival batches from a data distribution.

    Args:
        distribution: the point sampler (IND/ANT/...).
        rate: arrivals per cycle (the paper's r).
        seed: RNG seed — two drivers with equal configuration produce
            identical streams.
        start_time: timestamp of the warm-up batch; cycles then tick
            by ``time_step``.
    """

    def __init__(
        self,
        distribution: DataDistribution,
        rate: int,
        seed: int = 0,
        start_time: float = 0.0,
        time_step: float = 1.0,
    ) -> None:
        if rate < 1:
            raise StreamError(f"rate must be >= 1, got {rate}")
        self.distribution = distribution
        self.rate = rate
        self.time_step = time_step
        self._rng = random.Random(seed)
        self._factory = RecordFactory()
        self._clock = start_time

    @property
    def clock(self) -> float:
        return self._clock

    def warmup(self, count: int) -> List[StreamRecord]:
        """Initial window fill: ``count`` records at the current time."""
        rows = self.distribution.sample_many(self._rng, count)
        return [self._factory.make(row, self._clock) for row in rows]

    def next_batch(self, count: Optional[int] = None) -> List[StreamRecord]:
        """Advance the clock one step and mint the next arrival batch."""
        self._clock += self.time_step
        rows = self.distribution.sample_many(
            self._rng, self.rate if count is None else count
        )
        return [self._factory.make(row, self._clock) for row in rows]

    def batches(self, cycles: int) -> Iterator[List[StreamRecord]]:
        """Yield ``cycles`` consecutive arrival batches."""
        for _ in range(cycles):
            yield self.next_batch()

    def materialize(self, cycles: int) -> List[List[StreamRecord]]:
        """Concretise ``cycles`` batches for replay across algorithms."""
        return [self.next_batch() for _ in range(cycles)]
